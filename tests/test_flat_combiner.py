"""Tests for the flat combiner and its helping pattern."""

import random

import pytest

from repro.core import World
from repro.core.prog import par
from repro.core.spec import Scenario
from repro.core.verify import check_triple, triple_issues
from repro.heap import ptr
from repro.semantics import explore, initial_config, run_deterministic, run_random
from repro.structures.flat_combiner import (
    DS_CELL,
    FREE,
    FlatCombiner,
    FlatCombinerConcurroid,
    flat_combine_spec,
    initial_state,
    seq_counter,
    seq_stack,
)

SLOT_A, SLOT_B = ptr(72), ptr(73)


@pytest.fixture()
def conc():
    return FlatCombinerConcurroid(seq_stack(), slots=(SLOT_A, SLOT_B), max_ops=4)


@pytest.fixture()
def fc(conc):
    return FlatCombiner(conc)


class TestSelfService:
    def test_push_self_combines(self, conc, fc):
        final = run_deterministic(
            initial_config(World((conc,)), initial_state(conc), fc.flat_combine(SLOT_A, "push", 1))
        )
        assert final.result is None  # push returns unit
        view = final.view_for(0)
        assert conc.ds_value(view) == (1,)
        assert len(conc.my_contrib(view)) == 1

    def test_pop_gets_pushed_value(self, conc, fc):
        from repro.core.prog import bind, seq

        prog = seq(
            fc.flat_combine(SLOT_A, "push", 7),
            fc.flat_combine(SLOT_A, "pop", None),
        )
        final = run_deterministic(initial_config(World((conc,)), initial_state(conc), prog))
        assert final.result == 7

    def test_slot_returned_free(self, conc, fc):
        final = run_deterministic(
            initial_config(World((conc,)), initial_state(conc), fc.flat_combine(SLOT_A, "push", 1))
        )
        assert final.view_for(0).joint_of(conc.label)[SLOT_A] == FREE


class TestHelping:
    def test_combiner_serves_peer(self, conc, fc):
        # Find a schedule where one thread's request is executed by the
        # other thread acting as combiner, and check the receipt is still
        # ascribed to the requester.
        rng = random.Random(4)
        helped_runs = 0
        for __ in range(60):
            prog = par(
                fc.flat_combine(SLOT_A, "push", 1),
                fc.flat_combine(SLOT_B, "pop", None),
            )
            final, violations = run_random(
                initial_config(World((conc,)), initial_state(conc), prog),
                rng,
                max_steps=600,
            )
            assert not violations
            assert final is not None
            slot_owner = {}
            for event in final.trace or ():
                if event.kind != "act":
                    continue
                if event.detail.endswith("try_acquire_slot") and event.result:
                    slot_owner[event.args[0]] = event.tid
                if event.detail.endswith(".help"):
                    owner = slot_owner.get(event.args[0])
                    if owner is not None and owner != event.tid:
                        helped_runs += 1
                        break
            # Effects ascribed to the parent after join regardless of helper
            # (1 entry when the pop missed — receipt-free — else 2):
            h = conc.my_contrib(final.view_for(0))
            pushes = [e for __, e in h.items() if len(e.after) > len(e.before)]
            assert len(pushes) == 1
            assert len(h) in (1, 2)
        assert helped_runs > 0, "no random schedule exercised helping"

    def test_flat_combine_spec_with_env_helpers(self, conc, fc):
        outcomes = check_triple(
            World((conc,)),
            flat_combine_spec(conc, "push", 1),
            [Scenario(initial_state(conc), fc.flat_combine(SLOT_A, "push", 1))],
            max_steps=40,
            env_budget=2,
        )
        assert not triple_issues(outcomes)

    def test_exhaustive_par_push_pop(self, conc, fc):
        prog = par(
            fc.flat_combine(SLOT_A, "push", 1),
            fc.flat_combine(SLOT_B, "pop", None),
        )
        result = explore(
            initial_config(World((conc,)), initial_state(conc), prog), max_steps=200
        )
        assert result.ok
        assert not result.truncated  # state-space converged (dedupe)
        pops = {terminal.result[1] for terminal in result.terminals}
        assert pops == {None, 1}


class TestHigherOrder:
    def test_counter_instance(self):
        conc = FlatCombinerConcurroid(seq_counter(), slots=(SLOT_A,), max_ops=3)
        fc = FlatCombiner(conc)
        from repro.core.prog import seq

        prog = seq(
            fc.flat_combine(SLOT_A, "add", 1),
            fc.flat_combine(SLOT_A, "add", 1),
        )
        final = run_deterministic(initial_config(World((conc,)), initial_state(conc), prog))
        assert final.result == 1  # fetch-and-add returns the old value
        assert conc.ds_value(final.view_for(0)) == 2

    def test_arbitrary_python_function_as_op(self):
        # Truly higher-order: any (state, arg) -> (result, state') works.
        from repro.core.prog import seq
        from repro.structures.flat_combiner import SeqStructure

        weird = SeqStructure(
            "weird",
            "",
            {"append": lambda s, a: (len(s), s + a)},
        )
        conc = FlatCombinerConcurroid(weird, slots=(SLOT_A,), max_ops=3, arg_domain=("x",))
        fc = FlatCombiner(conc)
        prog = seq(
            fc.flat_combine(SLOT_A, "append", "x"),
            fc.flat_combine(SLOT_A, "append", "x"),
        )
        final = run_deterministic(initial_config(World((conc,)), initial_state(conc), prog))
        assert final.result == 1
        assert conc.ds_value(final.view_for(0)) == "xx"


class TestFailureInjection:
    def test_collect_of_foreign_slot_is_unsafe(self, conc, fc):
        s = initial_state(conc)
        assert not fc.collect.safe(s, SLOT_A)  # not owned, not resp

    def test_help_without_lock_is_unsafe(self, conc, fc):
        s = initial_state(conc)
        assert not fc.help.safe(s, SLOT_A)

    def test_stolen_receipt_breaks_coherence(self, conc, fc):
        # A collect that claims a receipt at the WRONG timestamp forges
        # history and is caught by the coherence check.
        from repro.core.errors import CoherenceViolation, CrashError
        from repro.core.prog import act, seq
        from repro.core.state import SubjState
        from repro.semantics import do_action, run_deterministic
        from repro.structures.flat_combiner import CollectAction

        class ForgingCollect(CollectAction):
            def step(self, state, p):
                comp = state[self.fc.label]
                __, result, ts, receipt = comp.joint[p]
                m, s, h = comp.self_
                new = SubjState(
                    (m, s, h.extend(ts + 5, receipt)),  # wrong timestamp
                    comp.joint.update(p, ("idle",)),
                    comp.other,
                )
                return result, state.set(self.fc.label, new)

        prog = seq(
            fc.flat_combine(SLOT_A, "push", 1),  # leaves everything clean
        )
        # Manually drive: register, combine, then forge the collect.
        from repro.core.prog import bind

        forged = seq(
            act(fc.try_acquire_slot, SLOT_A),
            act(fc.register, SLOT_A, "push", 1),
            act(fc.try_combine_lock),
            act(fc.help, SLOT_A),
            act(fc.combine_unlock),
            act(ForgingCollect(conc), SLOT_A),
        )
        config = initial_config(World((conc,)), initial_state(conc), forged)
        with pytest.raises((CoherenceViolation, CrashError)):
            for __ in range(6):
                config = do_action(config, 0)

"""The serve subsystem: protocol edges, daemon lifecycle, equivalence.

Covers the guarantees docs/SERVING.md makes:

* framing edge cases — oversized requests are rejected before they are
  buffered, malformed JSON gets an ``error`` frame (never a daemon
  death), a client disconnecting mid-request leaves the daemon healthy,
  and two concurrent clients get isolated responses;
* stale-socket claim — a killed daemon's leftovers are cleaned up,
  a live daemon is refused (never ``EADDRINUSE``);
* the chaos hook — ``OP:conndrop@N`` drops the connection before the
  terminal frame and the retry is served;
* hot-reload — an edited case study reloads, a framework edit latches
  ``stale_framework`` and analysis ops are refused;
* the equivalence gate — a warm daemon's ``verify`` returns verdicts,
  violation kinds and witnesses identical to a one-shot sweep.  Tier-1
  runs it over a representative subset (the repo's test_incremental
  precedent); the CI serve job sets ``REPRO_SERVE_FULL_EQUIV=1`` to
  sweep every registry program including the failing demo rows.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    MAX_REQUEST_BYTES,
    ClientError,
    DaemonServer,
    ServeError,
    Session,
    call,
    claim_socket_path,
)
from repro.serve.protocol import ProtocolError, error_exit_code, parse_request
from repro.serve.watcher import Watcher

STRUCTURES = Path(__file__).resolve().parents[1] / "src" / "repro" / "structures"


@pytest.fixture()
def daemon(tmp_path):
    """An in-process daemon on a fresh socket + fresh cache dir."""
    session = Session(cache_dir=str(tmp_path / "cache"))
    server = DaemonServer(session, socket_path=tmp_path / "serve.sock")
    server.start()
    yield server
    server.stop()


def _raw_frames(socket_path, payload: bytes, *, count: int = 1, timeout=10.0):
    """Send raw bytes, read ``count`` frames (or until EOF)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(str(socket_path))
    try:
        sock.sendall(payload)
        buffer = b""
        frames = []
        while len(frames) < count:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer and len(frames) < count:
                line, _, buffer = buffer.partition(b"\n")
                if line.strip():
                    frames.append(json.loads(line))
        return frames
    finally:
        sock.close()


# -- protocol unit tests --------------------------------------------------------


class TestProtocol:
    def test_roundtrip(self):
        req = parse_request(b'{"v": 1, "op": "status", "id": "a", "params": {}}')
        assert (req.op, req.id, req.params) == ("status", "a", {})

    def test_missing_id_gets_fallback(self):
        assert parse_request(b'{"op": "status"}', fallback_id="auto-7").id == "auto-7"

    @pytest.mark.parametrize(
        ("line", "code"),
        [
            (b"garbage", "malformed"),
            (b"[1, 2]", "malformed"),
            (b'{"op": "status", "id": 7}', "malformed"),
            (b'{"op": "nope"}', "unknown-op"),
            (b'{"op": 12}', "unknown-op"),
            (b'{"op": "status", "v": 99}', "bad-version"),
            (b'{"op": "status", "params": []}', "bad-request"),
        ],
    )
    def test_rejections(self, line, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == code

    def test_oversized_rejected_before_parse(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(b"x" * (MAX_REQUEST_BYTES + 1))
        assert err.value.code == "oversized"

    def test_exit_contract(self):
        assert error_exit_code("malformed") == 2
        assert error_exit_code("unknown-op") == 2
        assert error_exit_code("bad-request") == 2
        assert error_exit_code("framework-changed") == 3
        assert error_exit_code("internal") == 3


# -- daemon basics --------------------------------------------------------------


class TestDaemon:
    def test_status_roundtrip(self, daemon):
        frame = call("status", socket_path=daemon.socket_path)
        assert frame["type"] == "result"
        assert frame["exit_code"] == 0
        payload = frame["payload"]
        assert payload["pid"] == os.getpid()
        assert payload["programs"] >= 11
        assert payload["stale_framework"] is False

    def test_malformed_json_gets_error_daemon_survives(self, daemon):
        frames = _raw_frames(daemon.socket_path, b"this is not json\n")
        assert frames[0]["type"] == "error"
        assert frames[0]["code"] == "malformed"
        assert frames[0]["exit_code"] == 2
        # the daemon is still alive and serving
        assert call("status", socket_path=daemon.socket_path)["exit_code"] == 0

    def test_oversized_request_rejected_never_buffered(self, daemon):
        blob = b"x" * (MAX_REQUEST_BYTES + 64)  # no newline: a stream bomb
        frames = _raw_frames(daemon.socket_path, blob)
        assert frames[0]["type"] == "error"
        assert frames[0]["code"] == "oversized"
        assert call("status", socket_path=daemon.socket_path)["exit_code"] == 0

    def test_unknown_op_is_usage_error(self, daemon):
        frames = _raw_frames(daemon.socket_path, b'{"op": "frobnicate"}\n')
        assert frames[0]["code"] == "unknown-op"
        assert frames[0]["exit_code"] == 2

    def test_unknown_program_is_usage_error(self, daemon):
        frame = call(
            "verify", {"programs": ["No such"]}, socket_path=daemon.socket_path
        )
        assert frame["type"] == "error"
        assert frame["code"] == "bad-request"
        assert frame["exit_code"] == 2

    def test_ack_precedes_result(self, daemon):
        events = []
        frame = call("status", socket_path=daemon.socket_path, on_event=events.append)
        assert events and events[0]["type"] == "ack"
        assert events[0]["id"] == frame["id"]

    def test_mid_request_disconnect_leaves_daemon_healthy(self, daemon):
        # Fire a verify and slam the connection shut without reading.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(str(daemon.socket_path))
        sock.sendall(
            b'{"op": "verify", "id": "doomed", '
            b'"params": {"programs": ["Pair snapshot"]}}\n'
        )
        sock.close()
        # The request still runs to completion; its verdict lands in the
        # cache, so a well-behaved client gets a warm hit right after.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            frame = call(
                "verify",
                {"programs": ["Pair snapshot"]},
                socket_path=daemon.socket_path,
            )
            assert frame["type"] == "result"
            if frame["payload"]["programs"][0]["cached"]:
                return
            time.sleep(0.2)
        pytest.fail("the disconnected request's verdict never reached the cache")

    def test_two_concurrent_clients_are_isolated(self, daemon):
        results: dict[str, dict] = {}
        errors: list[Exception] = []

        def client(name: str, op: str, params: dict) -> None:
            events: list[dict] = []
            try:
                frame = call(
                    op,
                    params,
                    socket_path=daemon.socket_path,
                    on_event=events.append,
                )
            except Exception as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)
                return
            ids = {e["id"] for e in events} | {frame["id"]}
            results[name] = {"frame": frame, "ids": ids}

        threads = [
            threading.Thread(
                target=client,
                args=("a", "verify", {"programs": ["Pair snapshot"]}),
            ),
            threading.Thread(target=client, args=("b", "status", {})),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert results["a"]["frame"]["op"] == "verify"
        assert results["b"]["frame"]["op"] == "status"
        # every frame a client saw carried its own request id
        assert len(results["a"]["ids"]) == 1
        assert len(results["b"]["ids"]) == 1
        assert results["a"]["ids"] != results["b"]["ids"]

    def test_shutdown_op_stops_and_unlinks(self, tmp_path):
        session = Session(cache_dir=str(tmp_path / "cache"))
        server = DaemonServer(session, socket_path=tmp_path / "serve.sock")
        server.start()
        assert call("shutdown", socket_path=server.socket_path)["exit_code"] == 0
        assert server.stopped.wait(timeout=10)
        time.sleep(0.1)
        assert not server.socket_path.exists()


# -- stale-socket claim ---------------------------------------------------------


class TestSocketClaim:
    def test_leftover_socket_with_dead_pid_is_reclaimed(self, tmp_path):
        path = tmp_path / "serve.sock"
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(str(path))  # bound but never listened/closed: dead
        stale.close()
        # a pid that certainly exited: our own child
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        (tmp_path / "serve.sock.pid").write_text(f"{pid}\n")
        claim_socket_path(path)
        assert not path.exists()
        assert not (tmp_path / "serve.sock.pid").exists()

    def test_leftover_socket_without_pidfile_is_reclaimed(self, tmp_path):
        path = tmp_path / "serve.sock"
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(str(path))
        stale.close()
        claim_socket_path(path)
        assert not path.exists()

    def test_live_daemon_is_refused_not_eaddrinuse(self, daemon, tmp_path):
        with pytest.raises(ServeError, match="already serving"):
            claim_socket_path(daemon.socket_path)
        # and a second DaemonServer on the same path refuses to start
        second = DaemonServer(
            Session(cache_dir=str(tmp_path / "cache2")),
            socket_path=daemon.socket_path,
        )
        with pytest.raises(ServeError):
            second.start()


# -- chaos: the conndrop transport fault ----------------------------------------


class TestConndrop:
    def test_conndrop_drops_then_retry_is_served(self, tmp_path):
        session = Session(cache_dir=str(tmp_path / "cache"))
        server = DaemonServer(
            session,
            socket_path=tmp_path / "serve.sock",
            faults="status:conndrop@1",
        )
        server.start()
        try:
            with pytest.raises(ClientError):
                call("status", socket_path=server.socket_path, timeout=10)
            frame = call("status", socket_path=server.socket_path, timeout=10)
            assert frame["exit_code"] == 0
            # both attempts were dispatched (the drop was post-dispatch)
            assert frame["payload"]["requests"]["status"] == 2
        finally:
            server.stop()

    def test_conndrop_spec_parses_in_fault_grammar(self):
        from repro.engine.faults import FaultPlan

        plan = FaultPlan.parse("verify:conndrop@2")
        assert plan.serve_fault("verify") is False  # attempt 1
        assert plan.serve_fault("verify") is True  # attempt 2
        assert plan.serve_fault("verify") is False  # attempt 3
        assert plan.serve_fault("status") is False  # other op untouched


# -- hot-reload + the framework soundness latch ---------------------------------


class TestReload:
    def test_structures_edit_hot_reloads_and_marks_stale(self, daemon):
        target = STRUCTURES / "locks" / "demo.py"
        original = target.read_text(encoding="utf-8")
        # baseline: imports + fingerprints resident
        call("status", socket_path=daemon.socket_path)
        daemon.session.refresh_fingerprints()
        try:
            target.write_text(original + "\n# serve-reload-probe\n", encoding="utf-8")
            frame = call("reload", socket_path=daemon.socket_path)
            assert frame["exit_code"] == 0
            assert "repro.structures.locks.demo" in frame["payload"]["reloaded"]
            stale = set(frame["payload"]["stale_programs"])
            assert {"Two-lock demo", "Unfair lock demo"} <= stale
            assert frame["payload"]["stale_framework"] is False
        finally:
            target.write_text(original, encoding="utf-8")
            call("reload", socket_path=daemon.socket_path)

    def test_framework_stale_latch_refuses_analysis_ops(self, daemon):
        daemon.session.tracker.stale_framework = True
        frame = call(
            "verify", {"programs": ["Pair snapshot"]}, socket_path=daemon.socket_path
        )
        assert frame["type"] == "error"
        assert frame["code"] == "framework-changed"
        assert frame["exit_code"] == 3
        # status and shutdown stay available
        assert call("status", socket_path=daemon.socket_path)["exit_code"] == 0


# -- the watch loop -------------------------------------------------------------


@pytest.mark.slow
class TestWatch:
    def test_edit_triggers_incremental_stale_cone_reverify(self, daemon, tmp_path):
        # warm the cache through the daemon
        frame = call(
            "verify",
            {"programs": ["Pair snapshot"]},
            socket_path=daemon.socket_path,
            timeout=300,
        )
        assert frame["exit_code"] == 0
        report = tmp_path / "watch.ndjson"
        watcher = Watcher(daemon, report_path=str(report), out=None)
        daemon.session.refresh_fingerprints()
        target = STRUCTURES / "pair_snapshot.py"
        original = target.read_text(encoding="utf-8")
        try:
            target.write_text(original + "\n# watch-probe\n", encoding="utf-8")
            code = watcher.handle_change([str(target)])
        finally:
            target.write_text(original, encoding="utf-8")
            call("reload", socket_path=daemon.socket_path)
        assert code == 0
        record = json.loads(report.read_text().strip().splitlines()[-1])
        assert record["stale"] == ["Pair snapshot"]
        assert record["exit_code"] == 0
        # the stale set is a strict subset of the registry: the cycle
        # re-verified one program, not the world
        from repro.structures.registry import registry_programs

        assert len(record["stale"]) < len(registry_programs())
        assert record["reverified"] <= record["total"]

    def test_untouched_fingerprints_mean_no_reverify(self, daemon, tmp_path):
        watcher = Watcher(daemon, out=None)
        daemon.session.refresh_fingerprints()
        # a watched-path change that moves no program fingerprint
        code = watcher.handle_change([str(tmp_path / "unrelated.py")])
        assert code == 0
        assert watcher.cycles == 1


# -- the equivalence gate -------------------------------------------------------


def _equiv_programs() -> list[str]:
    """Tier-1 gates a representative subset (the test_incremental
    precedent); CI's serve job sets REPRO_SERVE_FULL_EQUIV=1 to sweep
    every registry program including the failing demo rows."""
    if os.environ.get("REPRO_SERVE_FULL_EQUIV"):
        from repro.structures.registry import registry_programs

        return [info.name for info in registry_programs()]
    return ["CAS-lock", "Pair snapshot", "Unfair lock demo"]


def _comparable(program_dict: dict) -> dict:
    """The verdict-bearing slice of one program's outcome dict: verdicts,
    per-category counts, violation kinds and witnesses — everything the
    equivalence gate pins; wall times and cache provenance may differ."""
    return {
        "program": program_dict["program"],
        "ok": program_dict["ok"],
        "status": program_dict["status"],
        "obligations": program_dict["obligations"],
        "prepass_skips": program_dict["prepass_skips"],
        "failures": [
            {k: v for k, v in failure.items() if k != "seconds"}
            for failure in program_dict["failures"]
        ],
    }


@pytest.mark.slow
class TestEquivalence:
    def test_warm_daemon_verdicts_match_oneshot(self, daemon):
        from repro.engine import run_sweep

        names = _equiv_programs()
        oneshot = run_sweep(names=names, jobs=1, cache=False, journal=False)
        reference = {
            p["program"]: _comparable(p) for p in oneshot.to_dict()["programs"]
        }
        # prime the daemon (first pass), then gate the *warm* pass
        call(
            "verify",
            {"programs": names},
            socket_path=daemon.socket_path,
            timeout=600,
        )
        frame = call(
            "verify",
            {"programs": names},
            socket_path=daemon.socket_path,
            timeout=600,
        )
        assert frame["type"] == "result"
        warm = {
            p["program"]: _comparable(p) for p in frame["payload"]["programs"]
        }
        assert warm == reference
        assert frame["exit_code"] == oneshot.exit_code()

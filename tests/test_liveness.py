"""The dynamic liveness layer: lassos, fairness claims, witnesses.

The flagship pair: the paper's ticketed lock *mechanically confirms* its
FIFO fairness claim within bounds (monotone owner/next tickets leave no
schedule revisiting a configuration without the claimant progressing),
while the deliberately unfair demo spinlock is *refuted* — the explorer
finds a lasso in which the environment cycles the lock through
take/work/release while the claimant's try-acquire keeps failing, and
that lasso replays and delta-debugs exactly like a safety
counterexample.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import Diagnostic, select
from repro.analysis.liveness import (
    FAIRNESS_CLAIMS,
    check_fairness,
    fairness_issues,
    find_live_cycles,
)


def _unfair():
    return FAIRNESS_CLAIMS["Unfair lock demo"]


# -- who claims fairness ------------------------------------------------------------------


def test_fairness_claims_cover_the_expected_programs():
    """The CAS spinlock is *correctly* unfair: it must make no claim.
    The ticketed lock and the unfair demo are the two claimants."""
    assert set(FAIRNESS_CLAIMS) == {"Ticketed lock", "Unfair lock demo"}


# -- lasso detection ----------------------------------------------------------------------


def test_cas_lock_spin_has_no_lasso():
    """The registry CAS lock's spin is silent: its monotone client aux
    means no schedule ever revisits a configuration."""
    from repro.core.prog import par
    from repro.structures.locks.verify import (
        bump_client,
        lock_initial_state,
        lock_world,
        make_counter_cas_lock,
    )

    lock = make_counter_cas_lock()
    result = find_live_cycles(
        lock_world(lock),
        lock_initial_state(lock, 0, 0),
        par(bump_client(lock), bump_client(lock)),
        env_budget=2,
    )
    assert result.cycles == []


def test_unfair_lock_lasso_detected():
    claim = _unfair()
    world, init, prog = claim.build()
    result = find_live_cycles(
        world, init, prog, env_budget=claim.env_budget, max_steps=claim.max_steps
    )
    assert len(result.cycles) >= 1
    lasso = result.cycles[0]
    assert lasso.kind == "livelock"
    assert "without progressing" in lasso.message
    assert lasso.trace is not None


def test_detector_is_observational_on_the_unfair_model():
    """Same safety answer with the detector armed or not — only
    ``cycles`` differs."""
    claim = _unfair()
    world, init, prog = claim.build()
    from repro.semantics.explore import explore
    from repro.semantics.interp import initial_config

    def run(liveness):
        return explore(
            initial_config(world, init, prog, record_trace=True),
            max_steps=claim.max_steps,
            env_budget=claim.env_budget,
            liveness=liveness,
        )

    off, on = run(False), run(True)
    assert off.cycles == []
    assert on.cycles != []
    assert off.explored == on.explored
    assert len(off.terminals) == len(on.terminals)
    assert [str(v) for v in off.violations] == [str(v) for v in on.violations]


# -- fairness claims, checked -------------------------------------------------------------


def test_ticketed_fairness_confirmed():
    diags, witnesses = check_fairness("Ticketed lock")
    assert [d.code for d in diags] == ["FCSL059"]
    assert "confirmed" in diags[0].message
    assert witnesses == []


def test_unfair_fairness_refuted_with_witnesses():
    diags, witnesses = check_fairness("Unfair lock demo")
    assert [d.code for d in diags] == ["FCSL055", "FCSL056"]
    assert "refuted" in diags[1].message
    assert witnesses
    for w in witnesses:
        assert w.kind == "livelock"
        assert w.replayable
        assert w.meta.get("replay") == "confirmed"


def test_unfair_witness_replays_and_minimizes():
    from repro.obs.minimize import minimize_witness
    from repro.obs.replay import replay_schedule

    __, witnesses = check_fairness("Unfair lock demo")
    w = witnesses[0]
    outcome = replay_schedule(w)
    assert outcome.reproduced
    assert outcome.kind == "livelock"
    small = minimize_witness(w)
    assert small.minimized is True
    assert len(small.steps) <= len(w.steps)
    # The shrunken schedule still replays to the same lasso.
    assert replay_schedule(small).reproduced


def test_fairness_issues_feeds_the_verifier_and_the_capture_scope():
    from repro.obs.witness import capturing

    claim = _unfair()
    world, init, prog = claim.build()
    with capturing() as sink:
        issues = fairness_issues(
            "unfair: fifo-fairness",
            world,
            init,
            prog,
            env_budget=claim.env_budget,
            max_steps=claim.max_steps,
        )
    assert issues
    assert sink
    assert all(w.kind == "livelock" for w in sink)


def test_unfair_demo_verifier_fails_only_on_fairness():
    """The demo lock is a perfectly *safe* CAS lock — every safety
    obligation holds; exactly the planted fifo-fairness claim fails."""
    from repro.structures.locks.demo import verify_unfair_lock

    report = verify_unfair_lock()
    assert not report.ok
    failed = report.failures()
    assert [o.name for o in failed] == ["fifo-fairness"]
    assert failed[0].witnesses  # replayable through verify --witness-dir


def test_two_lock_demo_verifies_sequentially():
    """Each ladder alone is correct (the deadlock needs both orders in
    parallel, which fcsl-live flags statically instead)."""
    from repro.structures.locks.demo import verify_two_lock_demo

    assert verify_two_lock_demo().ok


# -- registry shape -----------------------------------------------------------------------


def test_demo_rows_extend_but_do_not_pollute_the_registry():
    from repro.structures.registry import (
        all_programs,
        demo_programs,
        program,
        registry_programs,
    )

    assert len(all_programs()) == 11
    assert [info.name for info in demo_programs()] == [
        "Two-lock demo",
        "Unfair lock demo",
    ]
    assert len(registry_programs()) == 13
    assert all(info.demo for info in demo_programs())
    assert not any(info.demo for info in all_programs())
    assert program("Two-lock demo").demo


def test_default_verify_sweep_excludes_demos():
    """`repro verify` with no names must stay green: the deliberately
    failing demo rows are reachable by explicit name only."""
    from repro.engine.engine import resolve_programs

    default = resolve_programs()
    assert len(default) == 11
    assert not any(info.demo for info in default)
    named = resolve_programs(["Unfair lock demo"])
    assert [info.name for info in named] == ["Unfair lock demo"]


# -- the FCSL05x selector works identically across tools ---------------------------------


@pytest.mark.parametrize(
    "selector",
    ["FCSL05", "FCSL05x", "FCSL050-059", "FCSL050-FCSL059"],
)
def test_liveness_band_selectors_are_equivalent(selector):
    diags = [
        Diagnostic("FCSL045", "race", subject="s", obj="o"),
        Diagnostic("FCSL050", "cycle", subject="s", obj="o"),
        Diagnostic("FCSL056", "unfair", subject="s", obj="o"),
        Diagnostic("FCSL059", "fair", subject="s", obj="o"),
    ]
    picked = select(diags, codes=[selector])
    assert [d.code for d in picked] == ["FCSL050", "FCSL056", "FCSL059"]


@pytest.mark.parametrize("cmd", ["lint", "race", "live"])
def test_select_flag_is_uniform_across_clis(cmd, monkeypatch, capsys):
    """`--select FCSL05x` means the same thing to every subcommand."""
    from repro.__main__ import main

    registry = {
        "lint": "lint_registry",
        "race": "race_registry",
        "live": "live_registry",
    }[cmd]
    monkeypatch.setattr(
        f"repro.analysis.{registry}",
        lambda names=None: [
            Diagnostic("FCSL045", "race", subject="s", obj="o"),
            Diagnostic("FCSL059", "fair", subject="s", obj="o"),
        ],
    )
    assert main([cmd, "--select", "FCSL05x"]) == 0
    out = capsys.readouterr().out
    assert "FCSL059" in out
    assert "FCSL045" not in out

"""Tests for the concurrent spanning-tree construction."""

import random

import pytest

from repro.core import World
from repro.core.entangle import Priv
from repro.core.errors import CrashError
from repro.core.spec import Scenario
from repro.core.verify import check_triple, triple_issues
from repro.graphs import GraphView, figure2_graph, graph_heap, is_tree, random_connected_graph
from repro.heap import NULL, ptr
from repro.semantics import do_action, explore, initial_config, run_deterministic, run_random
from repro.structures.spanning_tree import (
    PRIV_LABEL,
    SpanActions,
    SpanTreeConcurroid,
    closed_world_state,
    make_span,
    make_span_root,
    open_world_state,
    span_root_spec,
    span_spec,
)
from repro.structures.spanning_tree_verify import make_world, root_world, verify_spanning_tree


@pytest.fixture()
def conc():
    return SpanTreeConcurroid()


@pytest.fixture()
def actions(conc):
    return SpanActions(conc)


class TestActions:
    def test_trymark_success(self, conc, actions):
        s = open_world_state(conc, graph_heap({1: (0, 0)}))
        value, s2 = actions.trymark.step(s, ptr(1))
        assert value is True
        assert ptr(1) in s2.self_of(conc.label)
        assert conc.graph(s2).mark(ptr(1))

    def test_trymark_fails_on_marked(self, conc, actions):
        s = open_world_state(
            conc, graph_heap({1: (0, 0)}, marked=frozenset({1})), other_marked=frozenset({ptr(1)})
        )
        value, s2 = actions.trymark.step(s, ptr(1))
        assert value is False
        assert s2 == s

    def test_read_child_requires_self_mark(self, conc, actions):
        from repro.graphs import LEFT

        s = open_world_state(conc, graph_heap({1: (0, 0)}))
        assert not actions.read_child.safe(s, ptr(1), LEFT)

    def test_nullify_requires_self_mark(self, conc, actions):
        from repro.graphs import LEFT

        h = graph_heap({1: (2, 0), 2: (0, 0)}, marked=frozenset({1}))
        mine = open_world_state(conc, h, self_marked=frozenset({ptr(1)}))
        theirs = open_world_state(conc, h, other_marked=frozenset({ptr(1)}))
        assert actions.nullify.safe(mine, ptr(1), LEFT)
        assert not actions.nullify.safe(theirs, ptr(1), LEFT)

    def test_nullify_by_non_marker_crashes(self, conc, actions):
        from repro.core.prog import act
        from repro.graphs import LEFT

        h = graph_heap({1: (2, 0), 2: (0, 0)}, marked=frozenset({1}))
        init = open_world_state(conc, h, other_marked=frozenset({ptr(1)}))
        cfg = initial_config(make_world(conc), init, act(actions.nullify, ptr(1), LEFT))
        with pytest.raises(CrashError):
            do_action(cfg, 0)


class TestSpanClosedWorld:
    def test_figure2_graph_deterministic(self):
        prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(1))
        init = closed_world_state(figure2_graph())
        final = run_deterministic(initial_config(root_world(), init, prog))
        assert final.result is True
        spec = span_root_spec(ptr(1))
        assert spec.check_post(final.result, final.view_for(0), init)

    def test_single_node(self):
        prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(1))
        init = closed_world_state(graph_heap({1: (0, 0)}))
        final = run_deterministic(initial_config(root_world(), init, prog))
        assert final.result is True

    def test_self_loop_collapses_to_singleton(self):
        prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(1))
        init = closed_world_state(graph_heap({1: (1, 1)}))
        final = run_deterministic(initial_config(root_world(), init, prog))
        g = GraphView(final.view_for(0).self_of(PRIV_LABEL))
        assert g.edgl(ptr(1)) == NULL and g.edgr(ptr(1)) == NULL

    def test_all_interleavings_two_node_cycle(self):
        h = graph_heap({1: (2, 0), 2: (1, 0)})
        spec = span_root_spec(ptr(1))
        init = closed_world_state(h)
        prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(1))
        result = explore(initial_config(root_world(), init, prog), max_steps=80)
        assert result.ok
        assert result.terminals
        for terminal in result.terminals:
            assert spec.check_post(terminal.result, terminal.view_for(0), init)

    def test_random_graphs_random_schedules(self):
        rng = random.Random(5)
        for __ in range(10):
            h, root = random_connected_graph(7, rng)
            init = closed_world_state(h)
            spec = span_root_spec(ptr(root))
            prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(root))
            final, violations = run_random(
                initial_config(root_world(), init, prog), rng
            )
            assert not violations
            assert final is not None
            assert spec.check_post(final.result, final.view_for(0), init)

    def test_result_is_tree_rooted_at_x(self):
        prog = make_span_root(SpanActions(SpanTreeConcurroid()), ptr(1))
        init = closed_world_state(figure2_graph())
        final = run_deterministic(initial_config(root_world(), init, prog))
        g = GraphView(final.view_for(0).self_of(PRIV_LABEL))
        assert is_tree(g, ptr(1), g.nodes())


class TestSpanOpenWorld:
    def test_span_on_marked_root_returns_false(self, conc, actions):
        span = make_span(actions)
        h = graph_heap({1: (0, 0)}, marked=frozenset({1}))
        init = open_world_state(conc, h, other_marked=frozenset({ptr(1)}))
        spec = span_spec(conc, ptr(1))
        outcomes = check_triple(
            make_world(conc), spec, [Scenario(init, span(ptr(1)))], env_budget=1
        )
        assert not triple_issues(outcomes)

    def test_span_null(self, conc, actions):
        span = make_span(actions)
        init = open_world_state(conc, graph_heap({1: (0, 0)}))
        final = run_deterministic(initial_config(make_world(conc), init, span(NULL)))
        assert final.result is False

    def test_span_under_interference(self, conc, actions):
        # The environment may mark nodes at any moment; span_tp still holds.
        span = make_span(actions)
        h = graph_heap({1: (2, 0), 2: (0, 0)})
        init = open_world_state(conc, h)
        spec = span_spec(conc, ptr(1))
        outcomes = check_triple(
            make_world(conc), spec, [Scenario(init, span(ptr(1)))],
            max_steps=40, env_budget=2,
        )
        assert not triple_issues(outcomes)
        assert outcomes[0].terminals > 1  # interference produced variety


class TestSpanVerification:
    @pytest.mark.slow
    def test_full_verification(self):
        report = verify_spanning_tree(open_samples=60, root_extra_graphs=8)
        assert report.ok, report.pretty()

    def test_broken_span_detected(self, conc, actions):
        # Failure injection: a span that never prunes redundant edges
        # violates the maximality conjunct of span_tp.
        from repro.core.prog import act, bind, par as par_, ret, seq, ffix

        def gen(loop):
            def body(x):
                if x == NULL:
                    return ret(False)
                return bind(act(actions.trymark, x), lambda b: _branch(b, x))

            def _branch(b, x):
                from repro.graphs import LEFT, RIGHT

                if not b:
                    return ret(False)
                return bind(
                    act(actions.read_child, x, LEFT),
                    lambda xl: bind(
                        act(actions.read_child, x, RIGHT),
                        lambda xr: seq(par_(loop(xl), loop(xr)), ret(True)),
                    ),
                )

            return body

        broken_span = ffix(gen)
        # Graph 1 -> (2, 2): the duplicate edge to 2 must be pruned; the
        # broken span keeps both, so {1,2} is not a tree.
        h = graph_heap({1: (2, 2), 2: (0, 0)})
        init = open_world_state(conc, h)
        spec = span_spec(conc, ptr(1))
        outcomes = check_triple(
            make_world(conc), spec, [Scenario(init, broken_span(ptr(1)))]
        )
        assert triple_issues(outcomes), "broken span must fail span_tp"


class TestTwoInstances:
    def test_two_span_instances_in_parallel(self):
        # §3.3: "say we want to run two span procedures in parallel on
        # disjoint heaps.  Such a program could be specified by a Cartesian
        # product of SpanTree sp1 and SpanTree sp2" — labels distinguish
        # the instances.
        from repro.core.prog import par as par_

        conc1 = SpanTreeConcurroid(label="sp1")
        conc2 = SpanTreeConcurroid(label="sp2")
        a1, a2 = SpanActions(conc1), SpanActions(conc2)
        h1 = graph_heap({1: (2, 0), 2: (1, 0)})
        h2 = graph_heap({1: (1, 2), 2: (0, 0)})
        world = World((Priv(PRIV_LABEL), conc1, conc2))
        from repro.core.state import SubjState, state_of
        from repro.heap import EMPTY

        init = state_of(
            sp1=conc1.initial(h1),
            sp2=conc2.initial(h2),
            pv=SubjState(EMPTY, EMPTY, EMPTY),
        )
        prog = par_(make_span(a1)(ptr(1)), make_span(a2)(ptr(1)))
        result = explore(initial_config(world, init, prog), max_steps=80)
        assert result.ok
        assert result.terminals
        spec1, spec2 = span_spec(conc1, ptr(1)), span_spec(conc2, ptr(1))
        for terminal in result.terminals:
            view = terminal.view_for(0)
            assert terminal.result == (True, True)
            assert spec1.check_post(True, view, init)
            assert spec2.check_post(True, view, init)

    def test_instances_do_not_interfere(self):
        # Marking in sp1 never shows up in sp2's components.
        conc1 = SpanTreeConcurroid(label="sp1")
        conc2 = SpanTreeConcurroid(label="sp2")
        a1 = SpanActions(conc1)
        h = graph_heap({1: (0, 0)})
        from repro.core.state import SubjState, state_of
        from repro.heap import EMPTY

        init = state_of(
            sp1=conc1.initial(h),
            sp2=conc2.initial(h),
            pv=SubjState(EMPTY, EMPTY, EMPTY),
        )
        world = World((Priv(PRIV_LABEL), conc1, conc2))
        final = run_deterministic(
            initial_config(world, init, make_span(a1)(ptr(1)))
        )
        view = final.view_for(0)
        assert view.self_of("sp1") == frozenset((ptr(1),))
        assert view.self_of("sp2") == frozenset()
        assert not GraphView(view.joint_of("sp2")).marked_nodes()

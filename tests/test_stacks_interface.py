"""Tests for the abstract stack interface — the exercise §6 left open.

One generic client, two engines: every test in this module is
parametrized over both stack implementations and must pass unchanged.
"""

import random

import pytest

from repro.core.spec import Scenario
from repro.core.verify import check_triple, triple_issues
from repro.semantics import explore, initial_config, run_deterministic, run_random
from repro.structures.stacks import (
    AbstractStack,
    FCAsStack,
    TreiberAsStack,
    generic_consumer,
    generic_prod_cons,
    generic_prod_cons_spec,
    generic_producer,
    verify_stack_interface,
)


@pytest.fixture(params=["treiber", "fc"])
def stack(request) -> AbstractStack:
    if request.param == "treiber":
        return TreiberAsStack(max_ops=5, pool=(101, 102))
    return FCAsStack(max_ops=5)


class TestInterfaceContract:
    def test_push_then_pop_roundtrip(self, stack):
        from repro.core.prog import bind, seq

        ctx = stack.contexts()[0]
        prog = seq(stack.push(ctx, 42), stack.pop(ctx))
        final = run_deterministic(
            initial_config(stack.world(), stack.initial_state(), prog)
        )
        assert final.result == 42

    def test_pop_empty_is_none_and_receipt_free(self, stack):
        ctx = stack.contexts()[0]
        final = run_deterministic(
            initial_config(stack.world(), stack.initial_state(), stack.pop(ctx))
        )
        assert final.result is None
        assert stack.contrib_of(final.view_for(0)).is_empty

    def test_push_spec(self, stack):
        ctx = stack.contexts()[0]
        outcomes = check_triple(
            stack.world(),
            stack.push_spec(1),
            [Scenario(stack.initial_state(), stack.push(ctx, 1))],
            max_steps=60,
            env_budget=1,
        )
        assert not triple_issues(outcomes)

    def test_pop_spec(self, stack):
        ctx = stack.contexts()[0]
        outcomes = check_triple(
            stack.world(),
            stack.pop_spec(),
            [Scenario(stack.initial_state(), stack.pop(ctx))],
            max_steps=60,
            env_budget=1,
        )
        assert not triple_issues(outcomes)


class TestGenericClient:
    def test_prod_cons_single_item_exhaustive(self, stack):
        spec = generic_prod_cons_spec(stack, (1,))
        init = stack.initial_state()
        result = explore(
            initial_config(stack.world(), init, generic_prod_cons(stack, (1,))),
            max_steps=200,
            max_configs=400_000,
        )
        assert result.ok
        assert result.terminals
        for terminal in result.terminals:
            assert spec.check_post(terminal.result, terminal.view_for(0), init)

    def test_prod_cons_two_items_random(self, stack):
        rng = random.Random(17)
        spec = generic_prod_cons_spec(stack, (0, 1))
        init = stack.initial_state()
        for __ in range(5):
            final, violations = run_random(
                initial_config(stack.world(), init, generic_prod_cons(stack, (0, 1))),
                rng,
                max_steps=3000,
            )
            assert not violations and final is not None
            assert spec.check_post(final.result, final.view_for(0), init)

    def test_verification_entry_point(self, stack):
        report = verify_stack_interface(stack)
        assert report.ok, report.pretty()
        # Pure interface-level reasoning: no new protocol obligations.
        counts = report.counts_by_category()
        assert counts["Conc"] == counts["Acts"] == counts["Stab"] == 0


class TestUnification:
    def test_same_client_same_spec_both_engines(self):
        # The exact point of the exercise: ONE client + ONE spec text,
        # two engines.
        results = {}
        for name, impl in (
            ("treiber", TreiberAsStack(max_ops=5, pool=(101,))),
            ("fc", FCAsStack(max_ops=5)),
        ):
            ctx_p, ctx_c = impl.contexts()[:2]
            from repro.core.prog import par

            prog = par(
                generic_producer(impl, ctx_p, (7,)),
                generic_consumer(impl, ctx_c, 1),
            )
            final = run_deterministic(
                initial_config(impl.world(), impl.initial_state(), prog)
            )
            results[name] = final.result[1]
        assert results["treiber"] == results["fc"] == (7,)

"""The exploration-scaling soundness gate: every reduction ≡ serial.

PR 7 stacks three scaling mechanisms on the exhaustive explorer —
frontier-sharded parallelism, thread-identity symmetry reduction and
memo compaction — and each must preserve what the serial search proves.
For every registry program *including the demo rows*
(:data:`repro.analysis.scenarios.EXPLORE_SCENARIOS`), this gate runs a
matrix of flag combinations against the plain serial exploration and
asserts, per combination:

* **verdict equality** — violation-freeness must match;
* **violation-kind equality** — a reduced run may neither invent nor
  lose a kind of failure (a lost shard surfaces as kind-"infra", which
  this catches);
* **exact terminal containment** — a reduced run never reaches a
  terminal (result + final shared state) the serial run cannot;
* **terminal-set equality** — exact for non-symmetry combinations
  (parallel dedupe is merely weaker than serial dedupe, so it may
  re-explore but never skip); modulo permutation of sibling-thread
  result pairs for symmetry combinations, whose memo quotients mirror
  configurations.  The one scenario whose identical siblings feed
  order-sensitive join logic (``sym_exact=False``, the spanning tree:
  the winning child decides which edge slot the parent writes) keeps a
  strict-subset representative set — the standard symmetry quotient —
  and is asserted as such so a regression to full loss stays visible.

Counters (``explored``, ``deduped``) are deliberately *not* compared
for parallel combinations: cross-shard dedupe is weaker than serial
dedupe, so counts inflate deterministically without affecting coverage.
"""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import EXPLORE_SCENARIOS, run_scenario

#: The combination matrix: every scaling flag exercised alone and all of
#: them stacked (with POR and the liveness observer, which must stay
#: observational under the new memo layouts too).
COMBOS = (
    ("par2", dict(por=False, parallel=2)),
    ("sym", dict(por=False, symmetry=True)),
    ("sym+por", dict(por=True, symmetry=True)),
    ("all", dict(por=True, symmetry=True, parallel=2, liveness=True)),
)

_IDS = [
    f"{s.key}-{name}" for s in EXPLORE_SCENARIOS for name, __ in COMBOS
]
_CASES = [(s, name, kwargs) for s in EXPLORE_SCENARIOS for name, kwargs in COMBOS]


def test_every_registry_program_has_a_scenario():
    """Adding a case study or demo row must force a gate scenario for it."""
    from repro.structures.registry import all_programs, demo_programs

    covered = {s.program for s in EXPLORE_SCENARIOS}
    rows = list(all_programs()) + list(demo_programs())
    missing = [info.name for info in rows if info.name not in covered]
    assert not missing, f"registry programs without an explore gate scenario: {missing}"


@pytest.mark.parametrize(("scenario", "name", "kwargs"), _CASES, ids=_IDS)
def test_reduction_preserves_verdict_and_terminals(scenario, name, kwargs):
    base = run_scenario(scenario, por=False)
    combo = run_scenario(scenario, **kwargs)

    # Verdict: violation-freeness and the *kinds* of failure must match.
    assert (not base.violations) == (not combo.violations)
    assert {v.kind for v in base.violations} == {v.kind for v in combo.violations}

    # Exact containment: a reduced run never invents a terminal.
    base_sigs = base.terminal_signatures()
    combo_sigs = combo.terminal_signatures()
    assert combo_sigs <= base_sigs, (
        f"{scenario.key}/{name} reached terminals the serial search did not: "
        f"{sorted(combo_sigs - base_sigs)}"
    )

    symmetric = kwargs.get("symmetry", False)
    if not symmetric:
        # No quotient in play: the terminal sets must be identical.
        assert combo_sigs == base_sigs
        assert bool(base.truncated) == bool(combo.truncated)
    elif scenario.sym_exact:
        # Symmetry preserves the terminal set modulo permutation of
        # sibling result pairs.
        assert (
            combo.symmetric_terminal_signatures()
            == base.symmetric_terminal_signatures()
        )
    else:
        # Order-sensitive join logic: the quotient keeps at least one
        # representative per orbit, never the empty set.
        assert combo_sigs, f"{scenario.key}/{name} lost every terminal"

    # The parallel merge accounts for every worker-side terminal.
    if kwargs.get("parallel", 1) > 1 and combo.shards:
        assert combo.terminal_total >= len(combo_sigs)


def test_symmetry_reduces_the_symmetric_client():
    """``rp || rp`` is literally symmetric: the canonical memo must merge
    mirror configurations (else the reduction is dead weight)."""
    scenario = next(
        s for s in EXPLORE_SCENARIOS if s.key == "Pair snapshot/rp||rp"
    )
    base = run_scenario(scenario, por=False)
    reduced = run_scenario(scenario, por=False, symmetry=True)
    assert reduced.explored < base.explored
    assert reduced.symmetry_active


def test_parallel_exploration_is_deterministic():
    """Two parallel runs of the same scenario agree on everything the
    gate compares — shard scheduling must not leak into the verdict."""
    scenario = next(
        s for s in EXPLORE_SCENARIOS if s.key == "Pair snapshot/rp||(rp||wx)"
    )
    first = run_scenario(scenario, por=False, parallel=2)
    second = run_scenario(scenario, por=False, parallel=2)
    assert first.terminal_signatures() == second.terminal_signatures()
    assert {v.kind for v in first.violations} == {v.kind for v in second.violations}
    assert first.terminal_total == second.terminal_total

"""Program-level erasure: auxiliary state never leaks into behaviour."""

import pytest

from repro.core import World
from repro.core.prog import act, par, seq
from repro.heap import pts, ptr
from repro.pcm.histories import hist
from repro.semantics.erasure import check_program_erasure, real_heap_of, run_schedule
from repro.structures.cg_increment import (
    incr,
    initial_state as incr_initial,
    make_increment_lock,
    make_world,
)
from repro.structures.treiber import TreiberStructure

from .helpers import BumpAction, CounterConcurroid, counter_state


class TestRealHeap:
    def test_counter_world(self):
        conc = CounterConcurroid()
        world = World((conc,))
        s = counter_state(conc, 1, 2)
        assert real_heap_of(world, s) == pts(ptr(7), 3)

    def test_treiber_world_counts_private_and_pool(self):
        ts = TreiberStructure(pool=(101,))
        world = World((ts.concurroid,))
        init = ts.initial_state(my_heap=pts(ptr(5), 0))
        heap = real_heap_of(world, init)
        assert ptr(5) in heap  # private
        assert ptr(101) in heap  # pool
        assert ptr(50) in heap  # TOP


class TestDifferentialErasure:
    def test_counter_aux_split_invisible(self):
        # 3 total contributions, split (3,0) vs (0,3) vs (1,2): same heap,
        # and the program's behaviour must be identical.
        conc = CounterConcurroid(cap=10)
        world = World((conc,))
        inits = [counter_state(conc, a, 3 - a) for a in (3, 0, 1)]
        prog = lambda: par(act(BumpAction(conc)), act(BumpAction(conc)))
        assert check_program_erasure(world, inits, prog) == []

    def test_increment_lock_aux_split_invisible(self):
        lock = make_increment_lock()
        world = make_world(lock)
        inits = [incr_initial(lock, a, 4 - a) for a in (4, 2, 0)]
        assert check_program_erasure(world, inits, lambda: incr(lock)) == []

    def test_treiber_history_attribution_invisible(self):
        # The same concrete stack, with the single push entry attributed to
        # self vs to the environment: pops behave identically.
        ts = TreiberStructure(max_ops=4, pool=(101,))
        world = World((ts.concurroid,))
        inits = [
            ts.initial_state(stack_nodes=[(60, 1)], self_hist=hist((1, (), (1,)))),
            ts.initial_state(stack_nodes=[(60, 1)], other_hist=hist((1, (), (1,)))),
        ]
        assert check_program_erasure(world, inits, ts.pop) == []

    def test_differing_real_heaps_rejected(self):
        conc = CounterConcurroid()
        world = World((conc,))
        inits = [counter_state(conc, 1, 0), counter_state(conc, 2, 0)]
        issues = check_program_erasure(world, inits, lambda: act(BumpAction(conc)))
        assert issues and "erase to the same real heap" in issues[0]

    def test_aux_peeking_action_caught(self):
        # An action whose RESULT depends on the subjective split breaks
        # program-level erasure — the differential check sees it.
        conc = CounterConcurroid(cap=10)

        class Peek(BumpAction):
            def step(self, state, *args):
                __, s2 = super().step(state, *args)
                return state.self_of("ct"), s2  # leaks the aux split!

        world = World((conc,))
        inits = [counter_state(conc, a, 3 - a) for a in (3, 0)]
        issues = check_program_erasure(world, inits, lambda: act(Peek(conc)))
        assert issues and "result diverges" in issues[0]


class TestRunSchedule:
    def test_deterministic_and_seeded_agree_on_sequential(self):
        conc = CounterConcurroid(cap=5)
        world = World((conc,))
        prog = seq(act(BumpAction(conc)), act(BumpAction(conc)))
        r1, h1 = run_schedule(world, counter_state(conc), prog)
        r2, h2 = run_schedule(world, counter_state(conc), prog, seed=3)
        assert (r1, h1) == (r2, h2)

    def test_unsafe_action_faults(self):
        from repro.core.errors import CrashError

        conc = CounterConcurroid(cap=0)
        world = World((conc,))
        with pytest.raises(CrashError):
            run_schedule(world, counter_state(conc), act(BumpAction(conc)))

"""The observability subsystem end-to-end: tracer, witnesses, replay,
minimization, engine/cache round-trips, Chrome trace export.

Covers the ISSUE 5 acceptance surface: a seeded failing spec produces a
structured counterexample witness whose minimized schedule is strictly
shorter than the original and replays deterministically to the same
violation; witnesses survive the engine's worker IPC and the persistent
obligation cache; a traced sweep emits valid Chrome-trace JSON carrying
the explorer's frontier/prune/POR counters and the cache's hit/miss
events; and the traceback/issue-truncation satellites behave.
"""

from __future__ import annotations

import json

import pytest

from repro.core.prog import act, par
from repro.core.spec import Scenario, Spec
from repro.core.verify import (
    WITNESS_CAP,
    ReportBuilder,
    check_triple,
    triple_issues,
)
from repro.core.world import World
from repro.core.errors import SpecViolation
from repro.obs import tracer
from repro.obs.export import (
    chrome_trace,
    counter_totals,
    hotspots,
    render_profile,
    write_chrome_trace,
)
from repro.obs.minimize import ddmin, minimize_witness
from repro.obs.render import render_witness
from repro.obs.replay import replay_schedule
from repro.obs.witness import Witness, WitnessStep
from repro.structures.registry import ProgramInfo

from .helpers import CELL, BumpAction, CounterConcurroid, counter_state


# -- the seeded failing spec ---------------------------------------------------
#
# par(bump, bump) under env interference: the post claims the cell ends
# at exactly 2, but up to two environment bumps may also land, so some
# schedules end at 3 or 4 — a schedule-dependent postcondition violation,
# exactly what a witness must capture and replay.


def _failing_outcomes(env_budget: int = 2):
    conc = CounterConcurroid(cap=10)
    world = World((conc,))
    spec = Spec(
        "bad-exact-total",
        pre=lambda s: True,
        post=lambda r, s2, s1: s2.joint_of(conc.label)[CELL] == 2,
    )
    prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
    scenarios = [Scenario(counter_state(conc), prog, label="seeded")]
    return check_triple(
        world, spec, scenarios, max_steps=40, env_budget=env_budget
    )


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_off_by_default(self):
        assert tracer.current() is None
        # free functions are no-ops, not errors, when tracing is off
        tracer.instant("x")
        tracer.counter("y", 1.0)
        with tracer.span("z"):
            pass

    def test_session_collects_records(self):
        with tracer.tracing() as tr:
            assert tracer.current() is tr
            with tracer.span("work", "cat", answer=42):
                pass
            tracer.instant("tick", hits=1)
            tracer.counter("depth", 3.0)
        assert tracer.current() is None
        phases = [r[0] for r in tr.records]
        assert phases == ["X", "i", "C"]
        span = tr.records[0]
        assert span[1] == "work" and span[2] == "cat"
        assert span[7] == {"answer": 42}
        assert span[4] >= 0.0  # duration

    def test_sessions_nest_and_restore(self):
        with tracer.tracing() as outer:
            with tracer.tracing() as inner:
                tracer.instant("inner-only")
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert [r[1] for r in outer.records] == []
        assert [r[1] for r in inner.records] == ["inner-only"]

    def test_env_mirror(self, monkeypatch):
        monkeypatch.delenv(tracer.ENV_TRACE, raising=False)
        assert not tracer.env_enabled()
        with tracer.tracing():
            assert tracer.env_enabled()
        assert not tracer.env_enabled()

    def test_local_session_needed(self, monkeypatch):
        monkeypatch.delenv(tracer.ENV_TRACE, raising=False)
        assert not tracer.local_session_needed()  # no run active
        with tracer.tracing() as tr:
            # same-process tracer: record directly, no local session
            assert not tracer.local_session_needed()
            # a fork-started worker inherits the context var but has a
            # different pid — it must open its own session
            monkeypatch.setattr(tr, "pid", tr.pid + 1)
            assert tracer.local_session_needed()
        monkeypatch.setenv(tracer.ENV_TRACE, "1")
        # spawn-started worker: env flag set, no in-context tracer
        assert tracer.local_session_needed()

    def test_ingest_filters_malformed_records(self):
        tr = tracer.Tracer()
        good = ("i", "n", "c", 0.0, 0.0, 1, 1, {})
        assert tr.ingest([good, ("short",), "junk", None, list(good)]) == 2
        assert len(tr.records) == 2
        assert all(isinstance(r, tuple) for r in tr.records)


# -- witness structure ---------------------------------------------------------


class TestWitness:
    def _witness(self):
        steps = [
            WitnessStep("act", 1, "ct.bump", ("1",), "True", "ct: [1 | 2 | 1]"),
            WitnessStep("env", -1, "ct.bump(None)", (), None, None),
        ]
        return Witness(
            scenario="seeded",
            kind="postcondition",
            message="cell ended at 3",
            steps=steps,
            meta={"max_steps": 40},
        )

    def test_dict_round_trip(self):
        w = self._witness()
        image = w.to_dict()
        json.dumps(image)  # JSON-safe by construction
        back = Witness.from_dict(json.loads(json.dumps(image)))
        assert back == w
        assert back.to_dict() == image

    def test_live_handles_never_serialized(self):
        w = self._witness()
        w.world = object()
        w.prog = object()
        assert "world" not in w.to_dict()
        assert "prog" not in w.to_dict()

    def test_replayable_requires_handles(self):
        w = self._witness()
        assert not w.replayable
        w.world, w.init, w.prog = object(), object(), object()
        assert w.replayable
        w.meta["unreplayable"] = True
        assert not w.replayable


# -- end-to-end: seeded failure -> witness -> replay -> minimize ---------------


class TestSeededCounterexample:
    def test_failing_triple_attaches_witnesses(self):
        outcomes = _failing_outcomes()
        assert triple_issues(outcomes)
        images = outcomes[0].witnesses
        assert images, "a schedule-dependent violation must yield a witness"
        assert len(images) <= WITNESS_CAP
        for image in images:
            json.dumps(image)  # plain dicts: free IPC / cache transport
            w = Witness.from_dict(image)
            assert w.kind == "postcondition"
            assert w.scenario == "seeded"
            assert any(s.kind in ("act", "env") for s in w.steps)

    def test_live_witness_replays_to_same_violation(self):
        from repro.obs import witness as obs_witness

        with obs_witness.capturing() as sink:
            _failing_outcomes()
        assert sink
        live = [w for w in sink if w.replayable]
        assert live, "captured witnesses must carry live replay handles"
        for w in live:
            outcome = replay_schedule(w)
            assert outcome.reproduced
            assert outcome.kind == w.kind

    def test_minimized_schedule_is_strictly_shorter_and_confirmed(self):
        from repro.obs import witness as obs_witness

        with obs_witness.capturing() as sink:
            _failing_outcomes()
        w = next(w for w in sink if w.replayable)
        small = minimize_witness(w, budget=300)
        assert small.minimized
        assert small.meta["replay"] == "confirmed"
        # the minimizer's oracle is replay alone; the shrunken forced
        # prefix must be strictly shorter than the captured schedule
        assert small.meta["forced_steps"] < small.meta["original_steps"]
        # and deterministic: replaying the minimized witness reproduces
        # the same violation kind again
        assert replay_schedule(small).reproduced

    def test_minimize_is_deterministic(self):
        from repro.obs import witness as obs_witness

        with obs_witness.capturing() as sink:
            _failing_outcomes()
        w = next(w for w in sink if w.replayable)
        a = minimize_witness(w, budget=300)
        b = minimize_witness(w, budget=300)
        assert a.to_dict() == b.to_dict()

    def test_render_witness_is_an_annotated_table(self):
        from repro.obs import witness as obs_witness

        with obs_witness.capturing() as sink:
            _failing_outcomes()
        text = render_witness(sink[0])
        assert "counterexample witness [postcondition]" in text
        assert "[" in text and "|" in text  # subjective [self | joint | other]

    def test_clean_outcome_has_no_witnesses(self):
        # without interference both bumps always land: the post holds on
        # every schedule, so there is nothing to witness
        outcomes = _failing_outcomes(env_budget=0)
        assert not triple_issues(outcomes)
        assert not outcomes[0].witnesses


class TestDdmin:
    def test_shrinks_to_relevant_subset(self):
        calls = []

        def test_fn(items):
            calls.append(tuple(items))
            return {3, 7} <= set(items)

        result = ddmin(list(range(10)), test_fn, budget=200)
        assert sorted(result) == [3, 7]

    def test_respects_budget(self):
        count = [0]

        def test_fn(items):
            count[0] += 1
            return True

        ddmin(list(range(32)), test_fn, budget=5)
        assert count[0] <= 5

    def test_single_failing_item(self):
        assert ddmin([1, 2, 3], lambda items: 2 in items, budget=100) == [2]


# -- engine IPC and cache round-trips ------------------------------------------
#
# Module-level verifiers: pool workers unpickle ProgramInfo rows by
# reference, so everything they close over must be importable.


def _witnessing_verifier(**kwargs):
    builder = ReportBuilder(kwargs.get("label", "witnessy"))
    builder.obligation(
        "seeded-failure", "Main", lambda: triple_issues(_failing_outcomes())
    )
    return builder.build()


def _clean_verifier(**kwargs):
    builder = ReportBuilder(kwargs.get("label", "clean"))
    builder.obligation("trivial", "Libs", lambda: [])
    return builder.build()


def _mk(name: str, verifier) -> ProgramInfo:
    return ProgramInfo(
        name=name,
        concurroids={},
        modules=(),
        verifier=verifier,
        verifier_kwargs={"label": name},
    )


WITNESSY = _mk("Witnessy", _witnessing_verifier)
CLEAN = _mk("Clean", _clean_verifier)


def _sweep_witnesses(result, name="Witnessy"):
    report = result.reports()[name]
    return [w for o in report.failures() for w in o.witnesses]


class TestEngineRoundTrips:
    def test_witnesses_survive_worker_ipc(self):
        from repro.engine import sweep

        result = sweep((WITNESSY, CLEAN), jobs=2, cache=False, prepass=False)
        assert result.exit_code() == 1
        assert not result.degraded
        images = _sweep_witnesses(result)
        assert images
        w = Witness.from_dict(images[0])
        assert w.kind == "postcondition" and w.steps

    def test_witnesses_survive_the_cache(self, tmp_path):
        from repro.engine import sweep

        cold = sweep(
            (WITNESSY,), jobs=1, cache=True, cache_dir=tmp_path, prepass=False
        )
        warm = sweep(
            (WITNESSY,), jobs=1, cache=True, cache_dir=tmp_path, prepass=False
        )
        assert cold.hits == 0 and warm.hits == 1
        assert _sweep_witnesses(warm) == _sweep_witnesses(cold)
        assert _sweep_witnesses(warm)

    def test_traced_parallel_sweep_ships_worker_records(self):
        from repro.engine import sweep

        with tracer.tracing() as tr:
            result = sweep(
                (WITNESSY, CLEAN), jobs=2, cache=False, prepass=False
            )
        assert result.exit_code() == 1
        names = {r[1] for r in tr.records}
        # parent-side events (cache=False: no cache events, by design)
        assert "sweep" in names
        # worker-side events shipped home through the result payload
        assert any(n.startswith("verify:") for n in names)
        assert "explore" in names
        explore_args = next(
            r[7] for r in tr.records if r[1] == "explore"
        )
        for key in (
            "explored",
            "deduped",
            "frontier_peak",
            "env_budget",
            "por_pruned",
            "violations",
        ):
            assert key in explore_args
        if not result.degraded:
            # at least one record originated in another process
            import os

            assert any(r[5] != os.getpid() for r in tr.records)

    def test_cache_misses_and_hits_are_traced(self, tmp_path):
        from repro.engine import sweep

        with tracer.tracing() as cold_tr:
            sweep((CLEAN,), jobs=1, cache=True, cache_dir=tmp_path, prepass=False)
        cold_names = {r[1] for r in cold_tr.records}
        assert "cache:miss" in cold_names and "cache:store" in cold_names
        with tracer.tracing() as warm_tr:
            warm = sweep(
                (CLEAN,), jobs=1, cache=True, cache_dir=tmp_path, prepass=False
            )
        assert warm.hits == 1
        assert "cache:hit" in {r[1] for r in warm_tr.records}


# -- export --------------------------------------------------------------------


class TestExport:
    def _records(self):
        with tracer.tracing() as tr:
            with tracer.span("outer", "cat", n=1):
                tracer.instant("hit", count=2)
            tracer.counter("depth", 5.0)
        return tr.records

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self._records())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        by_phase = {e["ph"]: e for e in events}
        assert by_phase["X"]["name"] == "outer"
        assert "dur" in by_phase["X"]
        assert by_phase["i"]["s"] == "t"
        assert by_phase["M"]["name"] == "process_name"
        json.dumps(doc)

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(self._records(), tmp_path / "out.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_hotspots_and_counters(self):
        records = self._records()
        rows = hotspots(records)
        assert rows[0]["name"] == "outer" and rows[0]["calls"] == 1
        totals = counter_totals(records)
        assert totals["hit.count"] == 2
        assert totals["depth.depth"] == 5.0

    def test_render_profile(self):
        text = render_profile(self._records())
        assert "hotspots" in text and "outer" in text
        assert "counters" in text
        assert "(no spans recorded)" in render_profile([])


# -- satellites: traceback capture and issue truncation ------------------------


class TestFailureReporting:
    def test_obligation_exception_records_traceback(self):
        def boom():
            raise ValueError("synthetic obligation bug")

        builder = ReportBuilder("tb")
        result = builder.obligation("explodes", "Main", boom)
        assert not result.ok
        assert "synthetic obligation bug" in result.issues[0]
        assert result.traceback is not None
        assert "ValueError" in result.traceback
        assert "boom" in result.traceback  # the raising frame survives
        # and it round-trips through the IPC/cache dict form
        back = type(result).from_dict(result.to_dict())
        assert back.traceback == result.traceback

    def test_raise_on_failure_marks_truncated_issues(self):
        builder = ReportBuilder("many")
        builder.obligation(
            "five-issues", "Main", lambda: [f"issue {i}" for i in range(5)]
        )
        with pytest.raises(SpecViolation) as exc:
            builder.build().raise_on_failure()
        assert "(+2 more)" in str(exc.value)

    def test_raise_on_failure_no_marker_at_three(self):
        builder = ReportBuilder("three")
        builder.obligation(
            "three-issues", "Main", lambda: [f"issue {i}" for i in range(3)]
        )
        with pytest.raises(SpecViolation) as exc:
            builder.build().raise_on_failure()
        assert "more)" not in str(exc.value)

"""Unit tests for the obligation/report plumbing."""

import pytest

from repro.core.errors import SpecViolation
from repro.core.verify import CATEGORIES, ObligationResult, ReportBuilder


class TestReportBuilder:
    def test_successful_obligation(self):
        builder = ReportBuilder("demo")
        result = builder.obligation("ok", "Libs", lambda: [])
        assert result.ok
        assert builder.build().ok

    def test_failing_obligation_collects_issues(self):
        builder = ReportBuilder("demo")
        builder.obligation("bad", "Main", lambda: ["issue one", "issue two"])
        report = builder.build()
        assert not report.ok
        assert report.failures()[0].issues == ["issue one", "issue two"]

    def test_exception_becomes_failure(self):
        builder = ReportBuilder("demo")
        builder.obligation("boom", "Acts", lambda: 1 / 0)
        report = builder.build()
        assert not report.ok
        assert "ZeroDivisionError" in report.failures()[0].issues[0]

    def test_unknown_category_rejected(self):
        builder = ReportBuilder("demo")
        with pytest.raises(ValueError):
            builder.obligation("x", "Wrong", lambda: [])

    def test_counts_and_seconds_by_category(self):
        builder = ReportBuilder("demo")
        builder.obligation("a", "Libs", lambda: [])
        builder.obligation("b", "Libs", lambda: [])
        builder.obligation("c", "Main", lambda: [])
        report = builder.build()
        counts = report.counts_by_category()
        assert counts["Libs"] == 2
        assert counts["Main"] == 1
        assert counts["Conc"] == 0
        assert set(report.seconds_by_category()) == set(CATEGORIES)

    def test_raise_on_failure(self):
        builder = ReportBuilder("demo")
        builder.obligation("bad", "Main", lambda: ["nope"])
        with pytest.raises(SpecViolation):
            builder.build().raise_on_failure()

    def test_pretty_contains_status(self):
        builder = ReportBuilder("demo")
        builder.obligation("a", "Libs", lambda: [])
        text = builder.build().pretty()
        assert "demo" in text and "[Libs] a: ok" in text

    def test_obligation_str(self):
        ok = ObligationResult("a", "Libs", True, [], 0.5)
        bad = ObligationResult("b", "Main", False, ["x"], 0.1)
        assert "ok" in str(ok)
        assert "FAILED" in str(bad)

    def test_issues_stringified(self):
        class Thing:
            def __str__(self):
                return "thing-as-string"

        builder = ReportBuilder("demo")
        builder.obligation("t", "Stab", lambda: [Thing()])
        assert builder.build().failures()[0].issues == ["thing-as-string"]

"""Tests for the coarse-grained clients: CG increment and CG allocator."""

import pytest

from repro.core import World
from repro.core.prog import par, seq
from repro.heap import EMPTY, pts, ptr
from repro.semantics import explore, initial_config, run_deterministic
from repro.structures.allocator import (
    ALLOC_LABEL,
    PRIV_LABEL,
    AllocatorStructure,
    alloc_spec,
    dealloc_spec,
    verify_cg_allocator,
)
from repro.structures.cg_increment import (
    CELL,
    incr,
    incr_spec,
    incr_twice_parallel,
    initial_state,
    make_increment_lock,
    make_increment_ticketed_lock,
    make_world,
    verify_cg_increment,
)


class TestCGIncrement:
    def test_single_increment(self):
        lock = make_increment_lock()
        cfg = initial_config(make_world(lock), initial_state(lock, 0, 0), incr(lock))
        final = run_deterministic(cfg)
        view = final.view_for(0)
        assert lock.client_self(view) == 1
        assert view.joint_of("lk")[CELL] == 1

    def test_parallel_increments_all_interleavings(self):
        lock = make_increment_lock()
        spec = incr_spec(lock, 2)
        init = initial_state(lock, 0, 0)
        cfg = initial_config(make_world(lock), init, incr_twice_parallel(lock))
        result = explore(cfg, max_steps=40)
        assert result.ok
        for terminal in result.terminals:
            assert spec.check_post(terminal.result, terminal.view_for(0), init)

    def test_spec_insensitive_to_environment_contribution(self):
        lock = make_increment_lock()
        for other in (0, 3):
            init = initial_state(lock, 1, other)
            cfg = initial_config(make_world(lock), init, incr(lock))
            final = run_deterministic(cfg)
            assert lock.client_self(final.view_for(0)) == 2

    def test_verification_over_cas_lock(self):
        report = verify_cg_increment()
        assert report.ok, report.pretty()

    @pytest.mark.slow
    def test_verification_over_ticketed_lock(self):
        # The abstract-interface payoff: same client, different lock.
        report = verify_cg_increment(make_increment_ticketed_lock)
        assert report.ok, report.pretty()

    def test_client_row_has_dash_entries(self):
        report = verify_cg_increment()
        counts = report.counts_by_category()
        assert counts["Conc"] == 0
        assert counts["Acts"] == 0
        assert counts["Stab"] == 0
        assert counts["Main"] > 0


class TestAllocator:
    def test_alloc_transfers_a_pool_cell(self):
        alloc = AllocatorStructure()
        init = alloc.initial_state(pool=(101, 102))
        cfg = initial_config(World((alloc.concurroid,)), init, alloc.alloc())
        final = run_deterministic(cfg)
        p = final.result
        assert p == ptr(101)
        view = final.view_for(0)
        assert p in view.self_of(PRIV_LABEL)
        assert p not in view.joint_of(ALLOC_LABEL)

    def test_real_heap_preserved_by_transfer(self):
        alloc = AllocatorStructure()
        init = alloc.initial_state(pool=(101,))
        cfg = initial_config(World((alloc.concurroid,)), init, alloc.alloc())
        before = alloc.concurroid.real_heap(cfg.global_view())
        final = run_deterministic(cfg)
        after = alloc.concurroid.real_heap(final.global_view())
        assert before.dom() == after.dom()

    def test_alloc_dealloc_roundtrip(self):
        alloc = AllocatorStructure()
        init = alloc.initial_state(pool=(101,), my_heap=pts(ptr(103), 1))
        prog = seq(alloc.dealloc(ptr(103)))
        final = run_deterministic(initial_config(World((alloc.concurroid,)), init, prog))
        view = final.view_for(0)
        assert ptr(103) not in view.self_of(PRIV_LABEL)
        assert view.joint_of(ALLOC_LABEL)[ptr(103)] == 0  # scrubbed, pooled

    def test_parallel_allocs_get_distinct_cells(self):
        alloc = AllocatorStructure()
        init = alloc.initial_state(pool=(101, 102))
        prog = par(alloc.alloc(), alloc.alloc())
        result = explore(
            initial_config(World((alloc.concurroid,)), init, prog), max_steps=60
        )
        assert result.ok
        for terminal in result.terminals:
            p1, p2 = terminal.result
            assert p1 != p2

    def test_alloc_spec_shape(self):
        alloc = AllocatorStructure()
        spec = alloc_spec(alloc)
        init = alloc.initial_state(pool=(101,))
        final = run_deterministic(
            initial_config(World((alloc.concurroid,)), init, alloc.alloc())
        )
        assert spec.check_post(final.result, final.view_for(0), init)

    def test_alloc_spins_on_empty_pool(self):
        alloc = AllocatorStructure()
        init = alloc.initial_state(pool=())
        result = explore(
            initial_config(World((alloc.concurroid,)), init, alloc.alloc()),
            max_steps=30,
        )
        assert not result.terminals  # never succeeds; livelock, not crash
        assert result.ok

    def test_works_over_ticketed_lock(self):
        from repro.structures.allocator import ALLOC_LOCK_PTR, pool_invariant
        from repro.structures.locks.ticketed import make_ticketed_lock
        from repro.pcm.base import UnitPCM

        lock = make_ticketed_lock(
            ALLOC_LABEL, ptr(98), ptr(99), UnitPCM(), pool_invariant, max_queue=3, max_tickets=4
        )
        alloc = AllocatorStructure(lock)
        init = alloc.initial_state(pool=(101,))
        final = run_deterministic(
            initial_config(World((alloc.concurroid,)), init, alloc.alloc())
        )
        assert final.result == ptr(101)

    def test_verification(self):
        report = verify_cg_allocator()
        assert report.ok, report.pretty()

"""Chaos suite: the supervised engine under deterministic fault injection.

Covers the ISSUE 3 acceptance surface: for every injected fault class
(worker crash, hang past timeout, worker exception, torn cache write)
the sweep returns an outcome for *all* requested programs, non-injected
verdicts are identical to a clean run, recovery via retries is
transparent, exhausted retries quarantine instead of raising, pool
creation failure degrades to serial, KeyboardInterrupt yields a partial
result, and the CLI maps it all to exit codes 0/1/2/3.

Every pool-based test uses second-scale timeouts and fast synthetic
registry rows, so the suite is bounded even if supervision were broken.
"""

from __future__ import annotations

import json

import pytest

from repro.core.verify import ReportBuilder
from repro.engine import (
    EXIT_INFRA,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    ObligationCache,
    ProgramOutcome,
    SweepResult,
    sweep,
)
from repro.engine.faults import ENV_FAULTS, active_plan, plan_installed
from repro.engine.supervisor import Supervisor
from repro.structures.registry import ProgramInfo

#: Supervision knobs shared by the fast chaos sweeps.
FAST = dict(cache=False, prepass=False, backoff=0.05)


# -- synthetic case studies (module-level: workers unpickle by reference) ------


def _ok_verifier(**kwargs):
    builder = ReportBuilder(kwargs.get("label", "ok"))
    builder.obligation("trivial", "Libs", lambda: [])
    builder.obligation("main", "Main", lambda: [])
    return builder.build()


def _failing_verifier(**kwargs):
    builder = ReportBuilder("failing")
    builder.obligation("bad", "Main", lambda: ["postcondition violated"])
    return builder.build()


def _buggy_verifier(**kwargs):
    raise ValueError("verifier bug: unhandled model state")


def _ki_verifier(**kwargs):
    raise KeyboardInterrupt()


def _mk(name: str, verifier=_ok_verifier) -> ProgramInfo:
    return ProgramInfo(
        name=name,
        concurroids={},
        modules=(),
        verifier=verifier,
        verifier_kwargs={"label": name},
    )


ALPHA, BETA, GAMMA = _mk("Alpha"), _mk("Beta"), _mk("Gamma")
TRIO = (ALPHA, BETA, GAMMA)


def _verdicts(result, names=None):
    """Everything that must match a clean run, per program."""
    return {
        o.name: (
            o.status,
            {
                ob.name: (ob.ok, tuple(ob.issues))
                for ob in (o.report.obligations if o.report else [])
            },
        )
        for o in result.outcomes
        if names is None or o.name in names
    }


# -- fault plan parsing --------------------------------------------------------


class TestFaultSpecs:
    def test_parse_render_round_trip(self):
        text = "CAS-lock:crash@1;Ticketed lock:hang@*;Fake:torn@2;X:raise@3"
        plan = FaultPlan.parse(text)
        assert plan.render() == text
        assert FaultPlan.parse(plan.render()).specs == plan.specs

    def test_default_attempt_is_one(self):
        spec = FaultSpec.parse("Beta:crash")
        assert spec.attempt == 1
        assert spec.matches("Beta", "verify", 1)
        assert not spec.matches("Beta", "verify", 2)

    def test_star_matches_every_attempt(self):
        spec = FaultSpec.parse("Beta:hang@*")
        assert all(spec.matches("Beta", "verify", n) for n in (1, 2, 7))

    def test_torn_is_a_cache_site_fault(self):
        spec = FaultSpec.parse("Beta:torn")
        assert spec.site == "cache"
        assert spec.matches("Beta", "cache", 1)
        assert not spec.matches("Beta", "verify", 1)

    def test_durability_kinds_have_their_own_sites(self):
        assert FaultSpec.parse("X:corrupt").site == "cache"
        assert FaultSpec.parse("X:diskfull").site == "disk"
        assert FaultSpec.parse("X:sigkill").site == "journal"

    def test_durability_kinds_round_trip(self):
        text = "X:corrupt@1;Y:diskfull@*;Z:sigkill@2"
        assert FaultPlan.parse(text).render() == text

    def test_store_fault_counts_attempts_per_program(self):
        plan = FaultPlan.parse("X:torn@2;Y:corrupt@1")
        assert plan.store_fault("X") is None  # attempt 1: not yet
        assert plan.store_fault("Y") == "corrupt"  # independent counter
        assert plan.store_fault("X") == "torn"  # attempt 2 fires
        assert plan.store_fault("X") is None

    def test_disk_fault_counts_attempts_per_write_path(self):
        import errno

        plan = FaultPlan.parse("X:diskfull@1")
        with pytest.raises(OSError) as excinfo:
            plan.disk_fault("X", "journal")
        assert excinfo.value.errno == errno.ENOSPC
        # The cache write path has its own attempt counter, so the
        # same @1 spec fires there too — whichever path comes first.
        with pytest.raises(OSError):
            plan.disk_fault("X", "cache")
        plan.disk_fault("X", "journal")  # attempt 2: no fault

    @pytest.mark.parametrize(
        "bad", ["", "no-colon", "X:frobnicate", "X:crash@zero", "X:crash@0", ":crash"]
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse(bad)

    def test_plan_crosses_the_environment(self, monkeypatch):
        import os

        monkeypatch.delenv(ENV_FAULTS, raising=False)
        plan = FaultPlan.parse("Beta:crash@1")
        with plan_installed(plan):
            assert os.environ[ENV_FAULTS] == "Beta:crash@1"
            assert active_plan() is plan
        assert ENV_FAULTS not in os.environ
        assert active_plan() is None


# -- the chaos sweeps ----------------------------------------------------------


class TestChaosSweeps:
    def clean(self):
        return sweep(TRIO, jobs=1, **FAST)

    @pytest.mark.parametrize(
        "fault,timeout",
        [("Beta:crash@1", 30), ("Beta:hang@1", 2), ("Beta:raise@1", 30)],
        ids=["crash", "hang", "raise"],
    )
    def test_fault_recovers_transparently(self, fault, timeout):
        result = sweep(TRIO, jobs=2, timeout=timeout, retries=2, faults=fault, **FAST)
        assert [o.name for o in result.outcomes] == ["Alpha", "Beta", "Gamma"]
        assert result.ok and result.exit_code() == 0
        beta = result.outcome("Beta")
        assert beta.status == "ok" and beta.retries > 0
        assert _verdicts(result) == _verdicts(self.clean())
        payload = result.to_dict()
        by_name = {p["program"]: p for p in payload["programs"]}
        assert by_name["Beta"]["retries"] == beta.retries
        assert by_name["Beta"]["status"] == "ok"

    @pytest.mark.parametrize(
        "fault,timeout,status,exc_type",
        [
            ("Beta:crash@*", 30, "crashed", "WorkerCrash"),
            ("Beta:hang@*", 1, "timeout", None),
            ("Beta:raise@*", 30, "error", "InjectedFault"),
        ],
        ids=["crash", "hang", "raise"],
    )
    def test_retries_exhausted_quarantines(self, fault, timeout, status, exc_type):
        result = sweep(TRIO, jobs=2, timeout=timeout, retries=1, faults=fault, **FAST)
        # The sweep completes and reports every requested program.
        assert [o.name for o in result.outcomes] == ["Alpha", "Beta", "Gamma"]
        beta = result.outcome("Beta")
        assert beta.status == status
        assert beta.report is None and beta.quarantined
        if exc_type is not None:
            assert beta.error["type"] == exc_type
        # Non-injected programs: verdicts identical to a clean run.
        others = {"Alpha", "Gamma"}
        assert _verdicts(result, others) == _verdicts(self.clean(), others)
        assert not result.ok
        assert result.exit_code() == EXIT_INFRA

    def test_hang_timeout_is_enforced_not_waited_out(self):
        import time

        started = time.monotonic()
        result = sweep(
            TRIO, jobs=2, timeout=1, retries=0, faults="Beta:hang@*", **FAST
        )
        # Far below the 600s injected hang: the supervisor killed it.
        assert time.monotonic() - started < 30
        assert result.outcome("Beta").status == "timeout"

    def test_worker_exception_reported_identically_serial_and_parallel(self):
        buggy = (_mk("Alpha"), _mk("Buggy", _buggy_verifier), _mk("Gamma"))
        serial = sweep(buggy, jobs=1, **FAST)
        parallel = sweep(buggy, jobs=2, timeout=30, retries=1, **FAST)
        for result in (serial, parallel):
            outcome = result.outcome("Buggy")
            assert outcome.status == "error"
            assert outcome.error["type"] == "ValueError"
            assert "verifier bug" in outcome.error["message"]
            assert "Traceback" in outcome.error["traceback"]
            assert result.exit_code() == EXIT_INFRA
        # In-worker captured errors are deterministic verifier bugs: no retry.
        assert parallel.outcome("Buggy").retries == 0
        assert _verdicts(serial) == _verdicts(parallel)

    def test_verification_failure_is_not_an_infra_error(self):
        failing = (_mk("Alpha"), _mk("Failing", _failing_verifier))
        result = sweep(failing, jobs=2, timeout=30, **FAST)
        outcome = result.outcome("Failing")
        assert outcome.status == "failed"
        assert outcome.report is not None and not outcome.quarantined
        assert not result.ok
        assert result.exit_code() == 1


class TestTornCacheWrites:
    def test_torn_write_never_yields_a_verdict(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = sweep(TRIO, jobs=1, cache_dir=cache_dir, prepass=False,
                      faults="Beta:torn@1")
        assert first.ok
        path = ObligationCache(cache_dir).path_for("Beta")
        with pytest.raises(Exception):
            json.loads(path.read_text())
        # Corruption costs a recomputation, not a verdict...
        second = sweep(TRIO, jobs=1, cache_dir=cache_dir, prepass=False)
        assert not second.outcome("Beta").cached
        assert second.outcome("Alpha").cached
        assert _verdicts(second) == _verdicts(first)
        # ...and the healed entry replays on the next run.
        third = sweep(TRIO, jobs=1, cache_dir=cache_dir, prepass=False)
        assert third.outcome("Beta").cached

    def test_corrupted_then_retried_entry_is_never_stale(self, tmp_path, monkeypatch):
        """An edit + a torn write of the new verdict must never resurrect
        the pre-edit verdict on later runs."""
        import textwrap

        module = tmp_path / "chaos_stale_probe.py"
        module.write_text(textwrap.dedent('"""Probe."""\nVALUE = 1\n'))
        monkeypatch.syspath_prepend(str(tmp_path))
        info = ProgramInfo(
            name="Stale probe",
            concurroids={},
            modules=("chaos_stale_probe",),
            verifier=_ok_verifier,
        )
        cache_dir = tmp_path / "cache"
        sweep([info], jobs=1, cache_dir=cache_dir, prepass=False)
        stale_entry = json.loads(
            ObligationCache(cache_dir).path_for("Stale probe").read_text()
        )
        module.write_text(module.read_text().replace("VALUE = 1", "VALUE = 2"))
        torn = sweep([info], jobs=1, cache_dir=cache_dir, prepass=False,
                     faults="Stale probe:torn@1")
        assert not torn.outcome("Stale probe").cached
        after = sweep([info], jobs=1, cache_dir=cache_dir, prepass=False)
        outcome = after.outcome("Stale probe")
        # Recomputed under the *new* fingerprint — not replayed from the
        # pre-edit entry, whose fingerprint no longer matches.
        assert not outcome.cached
        assert outcome.fingerprint != stale_entry["fingerprint"]


class TestDegradedPool:
    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch):
        import multiprocessing

        def no_pool(*args, **kwargs):
            raise OSError("semaphore exhaustion")

        monkeypatch.setattr(multiprocessing, "Pool", no_pool)
        result = sweep(TRIO, jobs=2, timeout=30, **FAST)
        assert [o.name for o in result.outcomes] == ["Alpha", "Beta", "Gamma"]
        assert all(o.status == "ok" for o in result.outcomes)
        assert result.degraded
        assert result.exit_code() == EXIT_INFRA
        assert any("pool creation failed" in w for w in result.warnings)


class TestKeyboardInterrupt:
    def test_serial_interrupt_returns_partial_result(self):
        programs = (_mk("Alpha"), _mk("Interrupting", _ki_verifier), _mk("Gamma"))
        result = sweep(programs, jobs=1, **FAST)
        assert result.interrupted
        assert result.outcome("Alpha").status == "ok"
        assert result.outcome("Interrupting").status == "interrupted"
        assert result.outcome("Gamma").status == "interrupted"
        assert result.exit_code() == EXIT_INFRA

    def test_pool_interrupt_keeps_completed_verdicts(self, monkeypatch):
        def interrupt_after_alpha(self, active, waiting, results):
            if "Alpha" in results:
                raise KeyboardInterrupt()

        monkeypatch.setattr(Supervisor, "_check_deadlines", interrupt_after_alpha)
        result = sweep(
            TRIO, jobs=2, retries=0, faults="Beta:hang@*;Gamma:hang@*", **FAST
        )
        assert result.interrupted
        assert result.outcome("Alpha").status == "ok"
        assert result.outcome("Beta").status == "interrupted"
        assert result.outcome("Gamma").status == "interrupted"
        assert result.exit_code() == EXIT_INFRA


class TestCLI:
    def test_bad_inject_spec_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["verify", "--inject", "nonsense", "--no-cache"]) == 2
        assert "fault" in capsys.readouterr().err

    def test_infra_fault_exits_3_not_traceback(self, monkeypatch, capsys):
        import repro.engine as engine_pkg
        from repro.__main__ import main

        crafted = SweepResult(
            outcomes=[
                ProgramOutcome("Alpha", _ok_verifier(), "f", False, 0.1),
                ProgramOutcome(
                    "Beta", None, "f", False, 0.1, status="crashed", retries=2,
                    error={"type": "WorkerCrash", "message": "gone", "traceback": ""},
                ),
            ],
            jobs=2,
        )
        monkeypatch.setattr(engine_pkg, "run_sweep", lambda **kw: crafted)
        code = main(["verify", "--no-cache", "--format", "json"])
        assert code == EXIT_INFRA
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == EXIT_INFRA
        by_name = {p["program"]: p for p in payload["programs"]}
        assert by_name["Beta"]["status"] == "crashed"
        assert by_name["Beta"]["retries"] == 2
        assert by_name["Beta"]["error"]["type"] == "WorkerCrash"

    def test_render_marks_quarantined_programs(self):
        crafted = SweepResult(
            outcomes=[
                ProgramOutcome(
                    "Beta", None, "f", False, 0.1, status="timeout", retries=1
                ),
            ],
            jobs=2,
        )
        text = crafted.render()
        assert "timeout" in text
        assert "TIMEOUT Beta" in text

    @pytest.mark.slow
    def test_cli_inject_smoke_recovers(self, capsys, tmp_path):
        """End-to-end: a real registry program crashed once and retried."""
        from repro.__main__ import main

        # Two programs keep the sweep on the pool path: with a single
        # pending program jobs degenerate to 1 (serial, in-process) and
        # an injected crash would take the test process down with it.
        code = main(
            [
                "verify",
                "--program", "CG increment",
                "--program", "CAS-lock",
                "--jobs", "2",
                "--retries", "2",
                "--timeout", "300",
                "--inject", "CG increment:crash@1",
                "--format", "json",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {p["program"]: p for p in payload["programs"]}
        assert by_name["CG increment"]["status"] == "ok"
        assert by_name["CG increment"]["retries"] >= 1
        assert by_name["CAS-lock"]["status"] == "ok"

"""Golden lock-order graphs and the cycle-rule mutation hook.

The graphs below are *golden*: they pin exactly which acquire/release
events the static classifier derives for the lock-bearing case studies
and which held-while-acquiring edges connect them.  The paper's locks
are single-lock structures — one node, no edges, trivially acyclic —
while the two-lock demo exists to keep the FCSL050 positive case
in-tree: opposite-order ladders produce the la->lb / lb->la cycle.

The mutation tests drive :meth:`LockOrderGraph.with_edge` (the analogue
of ``Footprint.widened``): adding a synthetic back-edge to a clean graph
must make the cycle rule fire, which proves FCSL050 is detected by the
cycle structure itself, not memorized per program.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Severity
from repro.analysis.lockorder import (
    build_lock_order,
    cycle_diagnostics,
    lockorder_target,
)
from repro.analysis.targets import target_for


def _codes(diags):
    return sorted({d.code for d in diags})


def _errors(diags):
    return [d for d in diags if d.severity >= Severity.ERROR]


# -- golden graphs -----------------------------------------------------------------------


def test_cas_lock_golden_graph():
    graph, diags = build_lock_order(target_for("CAS-lock"))
    assert graph.nodes == ("lk",)
    assert graph.acquires == {"lk": ("lk.try_acquire",)}
    assert graph.releases == {"lk": ("lk.release",)}
    assert graph.edges == ()
    assert graph.cycles() == []
    assert graph.complete
    assert not diags


def test_ticketed_lock_golden_graph():
    graph, diags = build_lock_order(target_for("Ticketed lock"))
    assert graph.nodes == ("lk",)
    assert graph.acquires == {"lk": ("lk.draw",)}
    assert graph.releases == {"lk": ("lk.release",)}
    assert graph.edges == ()
    assert graph.cycles() == []
    assert not diags


def test_two_lock_demo_golden_graph():
    graph, diags = build_lock_order(target_for("Two-lock demo"))
    assert graph.nodes == ("la", "lb")
    assert graph.acquires == {
        "la": ("la.try_acquire",),
        "lb": ("lb.try_acquire",),
    }
    assert graph.releases == {
        "la": ("la.release",),
        "lb": ("lb.release",),
    }
    # The opposite-order ladders produce both hold-while-acquiring
    # directions: the planted deadlock.
    assert graph.edge_pairs() == frozenset({("la", "lb"), ("lb", "la")})
    assert graph.cycles() == [("la", "lb")]
    # Collection on the ladders is honest about being partial (FCSL057
    # info), but nothing error-level comes from the path rules here —
    # the cycle itself is cycle_diagnostics' job.
    assert not _errors(diags)


def test_two_lock_demo_cycle_diagnostic():
    graph, diags = lockorder_target(target_for("Two-lock demo"))
    errors = _errors(diags)
    assert _codes(errors) == ["FCSL050"]
    (cycle,) = errors
    assert "la->lb" in cycle.message
    assert "lb->la" in cycle.message


def test_paper_lock_targets_have_no_liveness_errors():
    for name in ("CAS-lock", "Ticketed lock"):
        __, diags = lockorder_target(target_for(name))
        assert not _errors(diags), (name, diags)


# -- the mutation hook: FCSL050 comes from the cycle structure ---------------------------


def test_mutated_back_edge_fires_cycle_rule():
    graph, __ = build_lock_order(target_for("CAS-lock"))
    assert cycle_diagnostics(graph) == []
    mutated = graph.with_edge("lk", "aux").with_edge("aux", "lk")
    assert mutated.cycles() == [("aux", "lk")]
    diags = cycle_diagnostics(mutated)
    assert _codes(diags) == ["FCSL050"]
    assert "<mutation>" in diags[0].message


def test_mutated_self_loop_fires_cycle_rule():
    graph, __ = build_lock_order(target_for("Ticketed lock"))
    mutated = graph.with_edge("lk", "lk")
    assert mutated.cycles() == [("lk",)]
    assert _codes(cycle_diagnostics(mutated)) == ["FCSL050"]


def test_breaking_one_demo_edge_breaks_the_cycle():
    """The demo cycle needs *both* directions: a graph rebuilt without
    either edge is acyclic and FCSL050-silent."""
    from repro.analysis.lockorder import LockOrderGraph

    graph, __ = build_lock_order(target_for("Two-lock demo"))
    for dropped in graph.edges:
        kept = tuple(e for e in graph.edges if e is not dropped)
        acyclic = LockOrderGraph(
            target=graph.target,
            acquires=dict(graph.acquires),
            releases=dict(graph.releases),
            edges=kept,
            complete=graph.complete,
        )
        assert acyclic.cycles() == []
        assert cycle_diagnostics(acyclic) == []


# -- serialization ------------------------------------------------------------------------


def test_graph_to_dict_round_trips_the_shape():
    graph, __ = build_lock_order(target_for("Two-lock demo"))
    image = graph.to_dict()
    assert image["nodes"] == ["la", "lb"]
    assert {(e["src"], e["dst"]) for e in image["edges"]} == {
        ("la", "lb"),
        ("lb", "la"),
    }
    assert image["cycles"] == [["la", "lb"]]

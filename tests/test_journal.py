"""Unit tests for the durability layer: the sweep journal, the work
queue decomposition/merge, and the resource watchdog ladder.

The journal is exercised at the record level (CRC framing, torn-tail
tolerance, latest-wins image folding) without running sweeps; sweeps
over the journal live in tests/test_durability.py.  The watchdog is
driven synchronously through ``sample_once`` with monkeypatched
usage probes — no threads, no real memory pressure.
"""

from __future__ import annotations

import pytest

from repro.core.verify import CATEGORIES, ReportBuilder, VerificationReport
from repro.engine import (
    JOURNAL_SCHEMA_VERSION,
    SweepJournal,
    UnitRecord,
    WorkUnit,
    decompose,
    journal_path,
    load_image,
    merge_program,
    read_journal,
    unit_mode,
    units_for,
)
from repro.engine.journal import _decode, _encode
from repro.engine.watchdog import (
    LEVEL_NAMES,
    ResourceWatchdog,
    dir_bytes,
)
from repro.structures.registry import ProgramInfo


def _noop_verifier(**kwargs):
    return None


def _mk(name: str) -> ProgramInfo:
    return ProgramInfo(
        name=name, concurroids={}, modules=(), verifier=_noop_verifier
    )


def _report(program: str, ok: bool = True) -> VerificationReport:
    builder = ReportBuilder(program)
    builder.obligation("one", "Libs", lambda: [] if ok else ["broken"])
    return builder.build()


# -- record framing ------------------------------------------------------------


class TestRecordFraming:
    def test_encode_decode_round_trip(self):
        record = {"event": "unit:done", "unit": "Alpha", "n": 3}
        assert _decode(_encode(record)) == record

    def test_corrupt_crc_is_dropped(self):
        line = _encode({"event": "x"})
        bad = ("0" * 8) + line[8:]
        assert _decode(bad) is None

    def test_torn_line_is_dropped(self):
        line = _encode({"event": "x", "payload": "y" * 100})
        assert _decode(line[: len(line) // 2]) is None

    def test_read_journal_survives_torn_tail(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        good = _encode({"schema": JOURNAL_SCHEMA_VERSION, "event": "a"})
        torn = _encode({"schema": JOURNAL_SCHEMA_VERSION, "event": "b"})
        path.write_text(good + torn[: len(torn) - 7])
        records = read_journal(path)
        assert [r["event"] for r in records] == ["a"]

    def test_wrong_schema_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            _encode({"schema": JOURNAL_SCHEMA_VERSION + 1, "event": "a"})
        )
        assert read_journal(path) == []

    def test_missing_file_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []
        image = load_image(tmp_path / "absent.jsonl")
        assert not image.exists and not image.completed


# -- the append side + image folding -------------------------------------------


class TestJournalLifecycle:
    def _begin(self, sj, *, resume=False):
        sj.begin(
            {"Alpha": "f-a", "Beta": "f-b"},
            ["Alpha", "Beta"],
            mode="program",
            resume=resume,
        )

    def test_done_units_are_replayable(self, tmp_path):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        sj.unit_leased("Alpha", "Alpha", attempt=1, lease_seconds=5.0)
        sj.unit_done(
            "Alpha", "Alpha", None, "report",
            payload={"report": _report("Alpha").to_dict()},
        )
        image = load_image(sj.path)
        assert image.exists and not image.completed
        assert image.fingerprints == {"Alpha": "f-a", "Beta": "f-b"}
        rec = image.replayable("Alpha", "Alpha", "f-a")
        assert rec is not None and rec["event"] == "unit:done"
        # Beta never completed: pending on resume.
        assert image.replayable("Beta", "Beta", "f-b") is None

    def test_fingerprint_mismatch_blocks_replay(self, tmp_path):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        sj.unit_done(
            "Alpha", "Alpha", None, "report",
            payload={"report": _report("Alpha").to_dict()},
        )
        image = load_image(sj.path)
        assert image.replayable("Alpha", "Alpha", "different") is None

    def test_infra_failure_forgets_earlier_verdict(self, tmp_path):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        sj.unit_done(
            "Alpha", "Alpha", None, "report",
            payload={"report": _report("Alpha").to_dict()},
        )
        sj.unit_done("Alpha", "Alpha", None, "crashed", error={"type": "X"})
        image = load_image(sj.path)
        assert image.replayable("Alpha", "Alpha", "f-a") is None

    def test_fresh_start_truncates_previous_sweep(self, tmp_path):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        sj.unit_done(
            "Alpha", "Alpha", None, "report",
            payload={"report": _report("Alpha").to_dict()},
        )
        sj.close()
        sj2 = SweepJournal(sj.path)
        self._begin(sj2)  # not a resume: truncates
        image = load_image(sj.path)
        assert image.done == {}

    def test_resume_keeps_previous_records(self, tmp_path):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        sj.unit_done(
            "Alpha", "Alpha", None, "report",
            payload={"report": _report("Alpha").to_dict()},
        )
        sj.close()
        sj2 = SweepJournal(sj.path)
        self._begin(sj2, resume=True)
        image = load_image(sj.path)
        assert image.replayable("Alpha", "Alpha", "f-a") is not None

    def test_finish_marks_completed(self, tmp_path):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        sj.finish(0)
        assert load_image(sj.path).completed

    def test_interrupted_finish_is_not_completed(self, tmp_path):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        sj.finish(3, interrupted=True)
        assert not load_image(sj.path).completed

    def test_write_failure_breaks_not_raises(self, tmp_path, monkeypatch):
        sj = SweepJournal(tmp_path / "j.jsonl")
        self._begin(sj)
        import os as _os

        def boom(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(_os, "fsync", boom)
        sj.unit_leased("Alpha", "Alpha", attempt=1, lease_seconds=None)
        assert sj.broken is not None
        # Subsequent appends are silent no-ops.
        sj.unit_done("Alpha", "Alpha", None, "report", payload={"report": {}})
        sj.finish(0)


# -- the work queue ------------------------------------------------------------


class TestWorkQueue:
    def test_program_mode_is_identity(self):
        infos = [_mk("Alpha"), _mk("Beta")]
        units = decompose(infos)
        assert [u.name for u in units] == ["Alpha", "Beta"]
        assert all(u.group is None for u in units)
        assert unit_mode(False) == "program"

    def test_group_mode_fans_out_per_category(self):
        units = decompose([_mk("Alpha")], split=True)
        assert [u.name for u in units] == [
            f"Alpha::{c}" for c in CATEGORIES
        ]
        assert [u.group for u in units] == list(CATEGORIES)
        assert all(u.program == "Alpha" for u in units)
        assert unit_mode(True) == "group"

    def test_merge_concatenates_partial_reports(self):
        info = _mk("Alpha")
        units = units_for(info, split=True)
        records = [
            UnitRecord(
                u, "report",
                payload={"report": _report("Alpha").to_dict()},
                seconds=0.5,
                retries=1,
            )
            for u in units[:2]
        ]
        merge = merge_program(info, records)
        assert merge.status == "ok"
        assert len(merge.report.obligations) == 2
        assert merge.retries == 2
        assert merge.seconds == pytest.approx(1.0)
        assert merge.units == 2

    def test_any_infra_unit_quarantines_the_program(self):
        info = _mk("Alpha")
        units = units_for(info, split=True)
        records = [
            UnitRecord(
                units[0], "report",
                payload={"report": _report("Alpha").to_dict()},
            ),
            UnitRecord(units[1], "timeout", error={"type": "Timeout"}),
            UnitRecord(units[2], "crashed", error={"type": "WorkerCrash"}),
        ]
        merge = merge_program(info, records)
        assert merge.report is None
        assert merge.status == "crashed"  # worst wins
        assert merge.error == {"type": "WorkerCrash"}

    def test_failed_verdict_is_not_infra(self):
        info = _mk("Alpha")
        (unit,) = units_for(info)
        merge = merge_program(
            info,
            [
                UnitRecord(
                    unit, "report",
                    payload={"report": _report("Alpha", ok=False).to_dict()},
                )
            ],
        )
        assert merge.status == "failed"
        assert merge.report is not None and not merge.report.ok

    def test_replayed_units_are_counted(self):
        info = _mk("Alpha")
        (unit,) = units_for(info)
        merge = merge_program(
            info,
            [
                UnitRecord(
                    unit, "report",
                    payload={"report": _report("Alpha").to_dict()},
                    replayed=True,
                )
            ],
        )
        assert merge.replayed_units == 1


# -- the resource watchdog -----------------------------------------------------


class TestWatchdog:
    def _dog(self, monkeypatch, frac, **kwargs):
        """A watchdog whose RSS probe reports ``frac`` of a 100-byte
        budget (mutable through the returned setter)."""
        state = {"rss": int(frac * 100)}
        monkeypatch.setattr(
            "repro.engine.watchdog.tree_rss_bytes", lambda: state["rss"]
        )
        dog = ResourceWatchdog(max_rss_bytes=100, **kwargs)

        def set_frac(f):
            state["rss"] = int(f * 100)

        return dog, set_frac

    def test_nominal_below_shed(self, monkeypatch):
        dog, __ = self._dog(monkeypatch, 0.5)
        assert dog.sample_once() == 0
        assert dog.throttle(8)() == 8
        assert dog.stop_reason() is None
        assert not dog.degraded

    def test_shed_halves_the_window(self, monkeypatch):
        dog, __ = self._dog(monkeypatch, 0.75)
        assert dog.sample_once() == 1
        assert dog.throttle(8)() == 4
        assert dog.throttle(1)() == 1  # never below one
        assert not dog.degraded

    def test_shrink_marks_degraded(self, monkeypatch):
        dog, __ = self._dog(monkeypatch, 0.90)
        assert dog.sample_once() == 2
        assert dog.degraded
        assert dog.stop_reason() is None

    def test_stop_at_budget(self, monkeypatch):
        dog, __ = self._dog(monkeypatch, 1.2)
        assert dog.sample_once() == 3
        reason = dog.stop_reason()
        assert reason is not None and "budget" in reason

    def test_ladder_is_a_ratchet(self, monkeypatch):
        dog, set_frac = self._dog(monkeypatch, 0.90)
        assert dog.sample_once() == 2
        set_frac(0.1)  # pressure released...
        assert dog.sample_once() == 2  # ...but the ladder never descends
        assert dog.degraded

    def test_every_rung_fires_once(self, monkeypatch):
        fired = []
        dog, set_frac = self._dog(
            monkeypatch, 0.0, on_level=lambda lvl, why: fired.append(lvl)
        )
        dog.sample_once()
        set_frac(1.5)  # jump straight past every threshold
        dog.sample_once()
        dog.sample_once()  # staying high re-fires nothing
        assert fired == [1, 2, 3]
        assert set(LEVEL_NAMES) == {0, 1, 2, 3}

    def test_disk_budget_walks_the_cache_dir(self, tmp_path):
        (tmp_path / "entry.json").write_bytes(b"x" * 600)
        sub = tmp_path / "journal"
        sub.mkdir()
        (sub / "sweep.jsonl").write_bytes(b"y" * 600)
        assert dir_bytes(tmp_path) == 1200
        dog = ResourceWatchdog(max_disk_bytes=1000, disk_root=tmp_path)
        assert dog.sample_once() == 3
        assert "disk" in dog.stop_reason()

    def test_thread_lifecycle_is_safe_without_budgets(self):
        dog = ResourceWatchdog()
        assert dog.start() is dog  # no budget: no thread
        dog.stop()

    def test_journal_path_lives_under_cache_root(self, tmp_path):
        assert journal_path(tmp_path) == tmp_path / "journal" / "sweep.jsonl"

    def test_workunit_pickles(self):
        import pickle

        unit = WorkUnit(_mk("Alpha"), "Main")
        clone = pickle.loads(pickle.dumps(unit))
        assert clone.name == "Alpha::Main" and clone.group == "Main"

"""Durable-sweep chaos suite: crash recovery via the sweep journal,
cache self-healing, disk-full degradation and the watchdog checkpoint.

The headline test runs a sweep in a *subprocess*, SIGKILLs it mid-flight
at a deterministic point (the injected ``sigkill`` fault fires right
after the first ``unit:done`` journal append), resumes, and asserts the
resumed verdicts — including the failing program's issues — are
identical to an uninterrupted run, with at least one unit replayed from
the journal rather than re-executed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.verify import ReportBuilder
from repro.engine import (
    EXIT_INFRA,
    ObligationCache,
    ResourceWatchdog,
    load_image,
    program_fingerprint,
    sweep,
)
from repro.structures.registry import ProgramInfo

DRIVER = Path(__file__).resolve().parent / "_durability_driver.py"

FAST = dict(cache=False, prepass=False, backoff=0.05)


def _run_driver(cache_dir, *extra):
    proc = subprocess.run(
        [sys.executable, str(DRIVER), str(cache_dir), *extra],
        capture_output=True,
        text=True,
        timeout=120,
    )
    return proc


def _ok_verifier(**kwargs):
    builder = ReportBuilder(kwargs.get("label", "ok"))
    builder.obligation("trivial", "Libs", lambda: [])
    builder.obligation("main", "Main", lambda: [])
    return builder.build()


ENV_KI = "REPRO_TEST_INTERRUPT"


def _env_gated_ki_verifier(**kwargs):
    if os.environ.get(ENV_KI):
        raise KeyboardInterrupt()
    return _ok_verifier(**kwargs)


def _mk(name: str, verifier=_ok_verifier) -> ProgramInfo:
    return ProgramInfo(
        name=name,
        concurroids={},
        modules=(),
        verifier=verifier,
        verifier_kwargs={"label": name},
    )


# -- kill -9 mid-sweep, then --resume ------------------------------------------


class TestHardCrashResume:
    def test_sigkill_then_resume_matches_uninterrupted_run(self, tmp_path):
        crashed = _run_driver(
            tmp_path / "cache", "--faults", "Alpha:sigkill@1"
        )
        # The injected fault hard-kills the sweep process itself.
        assert crashed.returncode == -signal.SIGKILL
        # The journal survived the crash and records Alpha's verdict but
        # no terminal sweep record.
        image = load_image(tmp_path / "cache" / "journal" / "sweep.jsonl")
        assert image.exists and not image.completed
        assert "Alpha" in image.done

        resumed = _run_driver(tmp_path / "cache", "--resume")
        reference = _run_driver(tmp_path / "reference")
        out = json.loads(resumed.stdout)
        ref = json.loads(reference.stdout)
        # Verdicts (including the failing program's issue text) and the
        # exit code are provably identical to an uninterrupted run.
        assert out["verdicts"] == ref["verdicts"]
        assert out["exit_code"] == ref["exit_code"] == resumed.returncode
        # ...and at least one unit truly came from the journal.
        assert out["replayed_units"] >= 1
        assert ref["replayed_units"] == 0

    def test_sigkill_resume_with_split_obligations(self, tmp_path):
        crashed = _run_driver(
            tmp_path / "cache",
            "--split",
            "--faults", "Alpha:sigkill@2",
        )
        assert crashed.returncode == -signal.SIGKILL
        resumed = _run_driver(tmp_path / "cache", "--split", "--resume")
        reference = _run_driver(tmp_path / "reference", "--split")
        out = json.loads(resumed.stdout)
        ref = json.loads(reference.stdout)
        assert out["verdicts"] == ref["verdicts"]
        assert out["exit_code"] == ref["exit_code"]
        # Two group units were journaled before the kill on attempt 2.
        assert out["replayed_units"] >= 2

    def test_resume_without_journal_warns_and_runs_fully(self, tmp_path):
        proc = _run_driver(tmp_path / "cache", "--resume")
        out = json.loads(proc.stdout)
        assert out["replayed_units"] == 0
        assert any("resume" in w for w in out["warnings"])
        assert proc.returncode == out["exit_code"]

    def test_edited_program_reruns_fresh_on_resume(self, tmp_path, monkeypatch):
        programs = (_mk("Alpha"), _mk("Beta"))
        sweep(programs, jobs=1, cache_dir=tmp_path, **FAST)
        # Same journal, but Beta's fingerprint changed (edited kwargs):
        # resume must replay Alpha alone and re-execute Beta.
        edited = (
            programs[0],
            ProgramInfo(
                name="Beta",
                concurroids={},
                modules=(),
                verifier=_ok_verifier,
                verifier_kwargs={"label": "Beta", "budget": 2},
            ),
        )
        result = sweep(
            edited, jobs=1, cache_dir=tmp_path, resume=True, **FAST
        )
        assert result.outcome("Alpha").replayed_units == 1
        assert result.outcome("Beta").replayed_units == 0
        assert result.ok


# -- KeyboardInterrupt leaves a resumable journal ------------------------------


class TestInterruptResume:
    def test_ctrl_c_partial_sweep_is_resumable(self, tmp_path, monkeypatch):
        programs = (
            _mk("Alpha"),
            _mk("Interrupting", _env_gated_ki_verifier),
            _mk("Gamma"),
        )
        monkeypatch.setenv(ENV_KI, "1")
        first = sweep(programs, jobs=1, cache_dir=tmp_path, **FAST)
        assert first.interrupted
        assert first.exit_code() == EXIT_INFRA
        assert first.outcome("Alpha").status == "ok"
        # The partial result was journaled before returning: Alpha's
        # verdict is on disk, the terminal record says interrupted.
        image = load_image(Path(first.journal_path))
        assert "Alpha" in image.done
        assert not image.completed

        monkeypatch.delenv(ENV_KI)
        second = sweep(
            programs, jobs=1, cache_dir=tmp_path, resume=True, **FAST
        )
        assert second.ok and second.exit_code() == 0
        assert second.outcome("Alpha").replayed_units == 1
        assert second.outcome("Interrupting").replayed_units == 0
        assert second.replayed == 1


# -- cache self-healing --------------------------------------------------------


class TestCacheSelfHealing:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        info = _mk("Fake")
        # Populate, with the stored entry byte-flipped post-write.
        sweep(
            [info], jobs=1, cache=True, cache_dir=tmp_path,
            prepass=False, faults="Fake:corrupt@1", journal=False,
        )
        store = ObligationCache(tmp_path)
        fingerprint = program_fingerprint(info)
        # The flipped entry must never load as a verdict...
        report, warning = store.load_verified("Fake", fingerprint)
        assert report is None
        assert warning is not None and "checksum" in warning
        # ...and was quarantined out of the way, not left in place.
        assert not store.path_for("Fake").exists()
        assert list(store.corrupt_dir.iterdir())

        # A follow-up sweep recomputes with a warning — never a crash,
        # never a stale verdict.
        result = sweep(
            [info], jobs=1, cache=True, cache_dir=tmp_path,
            prepass=False, journal=False,
        )
        outcome = result.outcome("Fake")
        assert outcome.status == "ok" and not outcome.cached
        # The recomputed entry is intact again (self-healed).
        assert store.load("Fake", fingerprint) is not None

    def test_quarantine_is_observable_in_sweep_warnings(self, tmp_path):
        info = _mk("Fake")
        sweep(
            [info], jobs=1, cache=True, cache_dir=tmp_path,
            prepass=False, faults="Fake:corrupt@1", journal=False,
        )
        result = sweep(
            [info], jobs=1, cache=True, cache_dir=tmp_path,
            prepass=False, journal=False,
        )
        assert any("corrupt" in w for w in result.warnings)
        assert result.exit_code() == 0

    def test_hand_mangled_entry_is_also_healed(self, tmp_path):
        # Not just the injected flavor: truncate the file by hand.
        info = _mk("Fake")
        sweep(
            [info], jobs=1, cache=True, cache_dir=tmp_path,
            prepass=False, journal=False,
        )
        store = ObligationCache(tmp_path)
        path = store.path_for("Fake")
        path.write_text(path.read_text()[: 40])
        result = sweep(
            [info], jobs=1, cache=True, cache_dir=tmp_path,
            prepass=False, journal=False,
        )
        assert result.outcome("Fake").status == "ok"
        assert not result.outcome("Fake").cached
        assert any("corrupt" in w for w in result.warnings)


# -- disk-full degradation -----------------------------------------------------


class TestDiskFull:
    def test_journal_diskfull_degrades_with_warning(self, tmp_path):
        result = sweep(
            [_mk("Fake")], jobs=1, cache_dir=tmp_path,
            faults="Fake:diskfull@*", **FAST,
        )
        assert result.outcome("Fake").status == "ok"
        assert result.exit_code() == 0
        assert any("journal disabled" in w for w in result.warnings)

    def test_cache_diskfull_degrades_with_warning(self, tmp_path):
        result = sweep(
            [_mk("Fake")], jobs=1, cache=True, cache_dir=tmp_path,
            prepass=False, faults="Fake:diskfull@*", journal=False,
        )
        assert result.outcome("Fake").status == "ok"
        assert result.exit_code() == 0
        assert any("cache store failed" in w for w in result.warnings)
        # Nothing half-written: the slot is a clean miss, not corruption.
        assert ObligationCache(tmp_path).load(
            "Fake", program_fingerprint(_mk("Fake"))
        ) is None


# -- watchdog checkpoint end-to-end --------------------------------------------


class TestWatchdogCheckpoint:
    @pytest.fixture()
    def synchronous_watchdog(self, monkeypatch):
        """Sample immediately at start() instead of on a timer, so fast
        sweeps still observe the breach deterministically."""

        def start_and_sample(self):
            self.sample_once()
            return self

        monkeypatch.setattr(ResourceWatchdog, "start", start_and_sample)

    def test_disk_budget_checkpoint_exits_3_and_resumes(
        self, tmp_path, synchronous_watchdog
    ):
        # Blow the disk budget before the sweep starts: rung 3 at the
        # first sample, every unit checkpointed as interrupted.
        big = tmp_path / "preexisting.bin"
        big.write_bytes(b"x" * (2 * 2**20))
        programs = (_mk("Alpha"), _mk("Beta"))
        first = sweep(
            programs, jobs=1, cache_dir=tmp_path, max_disk_mb=1, **FAST
        )
        assert first.interrupted
        assert first.exit_code() == EXIT_INFRA
        assert all(o.status == "interrupted" for o in first.outcomes)
        assert any("watchdog" in w for w in first.warnings)

        # Resume without the budget: the sweep completes.
        big.unlink()
        second = sweep(
            programs, jobs=1, cache_dir=tmp_path, resume=True, **FAST
        )
        assert second.ok and second.exit_code() == 0

    def test_shed_rung_does_not_degrade_the_sweep(
        self, tmp_path, monkeypatch, synchronous_watchdog
    ):
        monkeypatch.setattr(
            "repro.engine.watchdog.tree_rss_bytes", lambda: 75
        )
        result = sweep(
            [_mk("Alpha")], jobs=1, cache_dir=tmp_path,
            max_rss_mb=100 / 2**20, **FAST,
        )
        assert result.ok and result.exit_code() == 0
        assert not result.degraded
        assert any("shed" in w for w in result.warnings)

    def test_shrink_rung_marks_degraded(
        self, tmp_path, monkeypatch, synchronous_watchdog
    ):
        from repro.core.verify import explore_cap_scale

        seen = {}

        def spy_verifier(**kwargs):
            seen["scale"] = explore_cap_scale()
            return _ok_verifier(**kwargs)

        monkeypatch.setattr(
            "repro.engine.watchdog.tree_rss_bytes", lambda: 90
        )
        result = sweep(
            [_mk("Alpha", spy_verifier)], jobs=1, cache_dir=tmp_path,
            max_rss_mb=100 / 2**20, **FAST,
        )
        assert result.degraded
        assert result.exit_code() == EXIT_INFRA
        # The cap shrink was in force while the verifier ran...
        assert seen["scale"] == 0.5
        # ...and was restored after the sweep.
        assert explore_cap_scale() == 1.0

"""The liveness observationality gate: detector on ≡ detector off.

The bounded livelock detector may only *observe* — for every
representative Main scenario of every registry program, exploring with
``liveness=True`` must produce the same verdict, the same terminal set,
and the same configuration count as the plain search.  Lassos land in
``ExplorationResult.cycles`` and nowhere else; ``repro verify
--liveness`` therefore can never change which obligations pass
(tests here drive the check_triple path through a real verifier too).
"""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import (
    POR_SCENARIOS,
    run_scenario,
    terminal_signature,
)


@pytest.mark.parametrize(
    "scenario", POR_SCENARIOS, ids=[s.key for s in POR_SCENARIOS]
)
def test_liveness_preserves_verdict_and_terminals(scenario):
    base = run_scenario(scenario, por=False)
    live = run_scenario(scenario, por=False, liveness=True)

    # Same verdict, same truncation, same search: the detector hooks the
    # dedupe site *before* pruning and never redirects the frontier.
    assert [str(v) for v in base.violations] == [str(v) for v in live.violations]
    assert bool(base.truncated) == bool(live.truncated)
    assert base.explored == live.explored
    assert base.deduped == live.deduped
    assert terminal_signature(base) == terminal_signature(live)

    # And the flag is what arms it.
    assert base.cycles == []


def test_liveness_composes_with_por():
    """Both flags together still preserve the POR-reduced search."""
    scenario = POR_SCENARIOS[0]  # CAS-lock bump||bump
    reduced = run_scenario(scenario, por=True)
    both = run_scenario(scenario, por=True, liveness=True)
    assert reduced.explored == both.explored
    assert terminal_signature(reduced) == terminal_signature(both)


def test_verifier_verdict_unchanged_under_liveness_default():
    """The check_triple path: a full real verification run with the
    process liveness default installed is obligation-for-obligation
    identical to the plain run."""
    from repro.core.verify import set_liveness_default
    from repro.structures.locks.verify import verify_cas_lock

    base = verify_cas_lock()
    set_liveness_default(True)
    try:
        live = verify_cas_lock()
    finally:
        set_liveness_default(None)
    assert live.ok == base.ok
    assert [
        (o.name, o.category, o.ok, tuple(o.issues)) for o in live.obligations
    ] == [
        (o.name, o.category, o.ok, tuple(o.issues)) for o in base.obligations
    ]


def test_sweep_liveness_flag_is_restored():
    """run_sweep(liveness=True) must not leak the default into the
    caller's process (mirrors the POR installation contract)."""
    from repro.core.verify import liveness_default
    from repro.engine import run_sweep

    assert not liveness_default()
    result = run_sweep(["CAS-lock"], jobs=1, cache=False, liveness=True)
    assert result.ok
    assert not liveness_default()

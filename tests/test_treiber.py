"""Tests for the Treiber stack."""

import random

import pytest

from repro.core import World
from repro.core.prog import par, seq
from repro.core.spec import Scenario
from repro.core.verify import check_triple, triple_issues
from repro.heap import NULL, ptr
from repro.pcm.histories import hist
from repro.semantics import explore, initial_config, run_deterministic, run_random
from repro.structures.treiber import (
    TB_LABEL,
    TOP,
    TreiberStructure,
    pop_spec,
    push_spec,
    stack_of,
)
from repro.structures.treiber_verify import verify_treiber_stack


@pytest.fixture()
def structure():
    return TreiberStructure(max_ops=6, pool=(101, 102, 103))


@pytest.fixture()
def world(structure):
    return World((structure.concurroid,))


class TestSequentialBehaviour:
    def test_push_pop_lifo(self, structure, world):
        prog = seq(structure.push(1), structure.push(2), structure.pop())
        final = run_deterministic(initial_config(world, structure.initial_state(), prog))
        assert final.result == 2

    def test_pop_empty_returns_none(self, structure, world):
        final = run_deterministic(
            initial_config(world, structure.initial_state(), structure.pop())
        )
        assert final.result is None

    def test_stack_state_tracks_heap(self, structure, world):
        prog = seq(structure.push(1), structure.push(0))
        final = run_deterministic(initial_config(world, structure.initial_state(), prog))
        assert stack_of(final.view_for(0)) == (0, 1)

    def test_history_records_operations(self, structure, world):
        prog = seq(structure.push(1), structure.pop())
        final = run_deterministic(initial_config(world, structure.initial_state(), prog))
        h = final.view_for(0).self_of(TB_LABEL)
        assert len(h) == 2
        assert h[1].after == (1,)
        assert h[2].after == ()

    def test_popped_nodes_stay_in_region(self, structure, world):
        # "Nodes are never freed" — the garbage-retention discipline.
        prog = seq(structure.push(1), structure.pop())
        final = run_deterministic(initial_config(world, structure.initial_state(), prog))
        joint = final.view_for(0).joint_of(TB_LABEL)
        assert ptr(101) in joint  # the pushed-then-popped node
        assert joint[TOP] == NULL


class TestConcurrentBehaviour:
    def test_initial_state_with_nodes(self, structure):
        init = structure.initial_state(
            stack_nodes=[(60, 5)], other_hist=hist((1, (), (5,)))
        )
        assert structure.concurroid.coherent(
            initial_config(World((structure.concurroid,)), init, seq()).global_view()
        )

    def test_par_pushes_both_land(self, structure, world):
        prog = par(structure.push(0), structure.push(1))
        result = explore(
            initial_config(world, structure.initial_state(), prog), max_steps=80
        )
        assert result.ok
        for terminal in result.terminals:
            assert sorted(stack_of(terminal.view_for(0))) == [0, 1]

    def test_par_push_pop_specs(self, structure, world):
        init = structure.initial_state()
        prog = par(structure.push(1), structure.pop())
        result = explore(initial_config(world, init, prog), max_steps=80)
        assert result.ok
        outcomes = {terminal.result[1] for terminal in result.terminals}
        assert outcomes == {None, 1}  # pop either misses or gets the push

    def test_random_stress(self, structure, world):
        rng = random.Random(1)
        prog = par(
            seq(structure.push(0), structure.push(1)),
            par(structure.pop(), structure.pop()),
        )
        for __ in range(10):
            final, violations = run_random(
                initial_config(world, structure.initial_state(), prog), rng, max_steps=2000
            )
            assert not violations
            assert final is not None

    def test_push_triple_under_interference(self, structure, world):
        outcomes = check_triple(
            world,
            push_spec(structure.treiber, 1),
            [Scenario(structure.initial_state(), structure.push(1))],
            max_steps=40,
            env_budget=1,
        )
        assert not triple_issues(outcomes)

    def test_pop_triple_under_interference(self, structure, world):
        outcomes = check_triple(
            world,
            pop_spec(structure.treiber),
            [Scenario(structure.initial_state(), structure.pop())],
            max_steps=40,
            env_budget=1,
        )
        assert not triple_issues(outcomes)


class TestFailureInjection:
    def test_aba_style_pop_is_caught(self, structure, world):
        # A pop that CASes in a *wrong* successor corrupts the chain: the
        # action's safety (n must be t's recorded next) rejects it.
        from repro.core.errors import CrashError
        from repro.core.prog import act, bind
        from repro.semantics import do_action

        init = structure.initial_state(
            stack_nodes=[(60, 1), (61, 2)],
            other_hist=hist((1, (), (2,)), (2, (2,), (1, 2))),
        )
        bad_pop = bind(
            act(structure.read_top),
            lambda t: act(structure.cas_pop, t, NULL),  # skips node 61!
        )
        config = initial_config(world, init, bad_pop)
        config = do_action(config, 0)  # read_top
        with pytest.raises(CrashError):
            do_action(config, 0)  # the corrupt CAS

    def test_lost_history_entry_is_caught(self, structure, world):
        # Bypassing the history update breaks coherence instantly.
        from repro.core.errors import CoherenceViolation
        from repro.core.prog import act
        from repro.core.state import SubjState
        from repro.semantics import do_action
        from repro.structures.treiber import CasPopAction

        class ForgetfulPop(CasPopAction):
            def step(self, state, t, n):
                joint = state.joint_of(TB_LABEL)
                if joint[TOP] != t:
                    return False, state
                return True, state.update(
                    TB_LABEL, lambda c: c.with_joint(c.joint.update(TOP, n))
                )

        init = structure.initial_state(
            stack_nodes=[(60, 1)], other_hist=hist((1, (), (1,)))
        )
        bad = ForgetfulPop(structure)
        config = initial_config(world, init, act(bad, ptr(60), NULL))
        with pytest.raises(CoherenceViolation):
            do_action(config, 0)


class TestVerification:
    @pytest.mark.slow
    def test_full_verification(self):
        report = verify_treiber_stack()
        assert report.ok, report.pretty()


class TestEnvironmentPushes:
    def test_env_can_push_prepared_nodes(self):
        # Seed the environment's private heap with a ready node (value 1,
        # next = null): interference now includes pushes, not only pops.
        from repro.heap import NULL, pts
        from repro.semantics import env_successors

        ts = TreiberStructure(max_ops=4, pool=(101,))
        init = ts.initial_state(env_heap=pts(ptr(61), (1, NULL)))
        config = initial_config(
            World((ts.concurroid,)), init, seq(ts.pop())
        )
        pushed = [
            succ
            for succ in env_successors(config)
            if succ.joints[TB_LABEL][TOP] == ptr(61)
        ]
        assert pushed, "environment should be able to push its prepared node"

    def test_pop_spec_with_pushing_environment(self):
        from repro.heap import NULL, pts

        ts = TreiberStructure(max_ops=4, pool=(101,))
        init = ts.initial_state(env_heap=pts(ptr(61), (1, NULL)))
        outcomes = check_triple(
            World((ts.concurroid,)),
            pop_spec(ts.treiber),
            [Scenario(init, ts.pop(), label="pop vs env push")],
            max_steps=40,
            env_budget=2,
        )
        assert not triple_issues(outcomes)
        # Both branches were really exercised: some schedule popped the
        # environment's node, some saw only emptiness.
        assert outcomes[0].terminals > 1

"""Randomized interpreter soundness: hypothesis-generated program trees.

For arbitrary compositions of `seq`/`par`/`bump`/`read` over the counter
protocol, the interpreter must satisfy the *subjective accounting
theorem*: at every terminal configuration, the root thread's ``self``
contribution equals its initial contribution plus the number of bump
actions in the program — regardless of the fork structure or the
schedule.  Exploration with and without memoization must agree on the
terminal outcomes, and coherence must hold throughout (the explorer
checks it at every step).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import World
from repro.core.prog import Prog, act, bind, par, ret, seq
from repro.semantics import explore, initial_config

from .helpers import BumpAction, CELL, CounterConcurroid, ReadCounterAction, counter_state


class ProgSpec:
    """A generated program shape: we track its bump count alongside."""

    def __init__(self, build, bumps: int, size: int):
        self.build = build  # (bump_action, read_action) -> Prog
        self.bumps = bumps
        self.size = size


def leaf_bump() -> ProgSpec:
    return ProgSpec(lambda b, r: act(b), 1, 1)


def leaf_read() -> ProgSpec:
    return ProgSpec(lambda b, r: act(r), 0, 1)


def leaf_ret() -> ProgSpec:
    return ProgSpec(lambda b, r: ret(0), 0, 1)


def node_seq(left: ProgSpec, right: ProgSpec) -> ProgSpec:
    return ProgSpec(
        lambda b, r: seq(left.build(b, r), right.build(b, r)),
        left.bumps + right.bumps,
        left.size + right.size,
    )


def node_par(left: ProgSpec, right: ProgSpec) -> ProgSpec:
    return ProgSpec(
        lambda b, r: par(left.build(b, r), right.build(b, r)),
        left.bumps + right.bumps,
        left.size + right.size,
    )


prog_specs = st.recursive(
    st.sampled_from([leaf_bump(), leaf_read(), leaf_ret()]),
    lambda children: st.builds(node_seq, children, children)
    | st.builds(node_par, children, children),
    max_leaves=5,
)


@settings(max_examples=40, deadline=None)
@given(prog_specs, st.integers(0, 2), st.integers(0, 2))
def test_subjective_accounting(spec: ProgSpec, self0: int, other0: int):
    conc = CounterConcurroid(cap=self0 + other0 + spec.bumps + 1)
    world = World((conc,))
    bump, read = BumpAction(conc), ReadCounterAction(conc)
    init = counter_state(conc, self0, other0)
    result = explore(
        initial_config(world, init, spec.build(bump, read)),
        max_steps=4 * spec.size + 4,
        max_configs=200_000,
    )
    assert result.ok, [str(v) for v in result.violations][:2]
    assert result.terminals, "loop-free program must terminate"
    for terminal in result.terminals:
        view = terminal.view_for(0)
        # The accounting theorem: my contribution grew by exactly my bumps.
        assert view.self_of("ct") == self0 + spec.bumps
        # The environment's share is untouched (no env budget given).
        assert view.other_of("ct") == other0
        # And the physical cell agrees with the PCM total.
        assert view.joint_of("ct")[CELL] == self0 + other0 + spec.bumps


@settings(max_examples=15, deadline=None)
@given(prog_specs)
def test_dedupe_agreement(spec: ProgSpec):
    conc = CounterConcurroid(cap=spec.bumps + 1)
    world = World((conc,))
    bump, read = BumpAction(conc), ReadCounterAction(conc)
    outcomes = {}
    for dedupe in (True, False):
        result = explore(
            initial_config(world, counter_state(conc), spec.build(bump, read)),
            max_steps=4 * spec.size + 4,
            max_configs=200_000,
            dedupe=dedupe,
        )
        assert result.ok
        outcomes[dedupe] = {t.shared_signature() for t in result.terminals}
    assert outcomes[True] == outcomes[False]

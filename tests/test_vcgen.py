"""Tests for the VC machinery: annotations and the consequence rule."""

import pytest

from repro.core import Scenario, Spec, World
from repro.core.prog import bind, seq
from repro.core.vcgen import (
    annotate,
    annotations_of,
    check_weakening,
    check_weakening_on_runs,
    collect_behaviours,
)
from repro.core.verify import check_triple, triple_issues
from repro.heap import ptr
from repro.semantics import explore, initial_config

from .helpers import BumpAction, CounterConcurroid, counter_state


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=6)


@pytest.fixture()
def world(conc):
    return World((conc,))


class TestAnnotations:
    def test_holding_annotation_passes(self, world, conc):
        from repro.core.prog import act

        prog = seq(
            annotate(lambda s: s.self_of("ct") == 0, "nothing yet"),
            act(BumpAction(conc)),
            annotate(lambda s: s.self_of("ct") == 1, "one bump recorded"),
        )
        result = explore(initial_config(world, counter_state(conc), prog), env_budget=2)
        assert result.ok

    def test_unstable_annotation_caught_by_interference(self, world, conc):
        # "The counter equals 0" is NOT stable: some schedule interleaves
        # an environment bump before the probe and faults it.
        from repro.core.prog import act

        prog = seq(
            annotate(lambda s: s.joint_of("ct")[ptr(7)] == 0, "cell still 0"),
            act(BumpAction(conc)),
        )
        result = explore(initial_config(world, counter_state(conc), prog), env_budget=1)
        assert any("assert[cell still 0]" in str(v) for v in result.violations)

    def test_subjective_annotation_survives_interference(self, world, conc):
        # ...whereas "MY contribution is 0" is stable: same schedules, no fault.
        from repro.core.prog import act

        prog = seq(
            annotate(lambda s: s.self_of("ct") == 0, "my contribution 0"),
            act(BumpAction(conc)),
        )
        result = explore(initial_config(world, counter_state(conc), prog), env_budget=2)
        assert result.ok

    def test_annotations_of_lists_prefix_probes(self, conc):
        from repro.core.prog import par

        prog = par(annotate(lambda s: True, "a"), annotate(lambda s: True, "b"))
        names = annotations_of(prog)
        assert set(names) == {"assert[a]", "assert[b]"}

    def test_lock_held_annotation_in_cg_increment(self):
        # The canonical Floyd annotation: between acquire and release the
        # thread holds the lock — under every interleaving.
        from repro.core.prog import act
        from repro.structures.cg_increment import (
            CELL,
            initial_state,
            make_increment_lock,
            make_world,
        )

        lock = make_increment_lock()
        prog = seq(
            lock.acquire(),
            annotate(lambda s: lock.holds(s), "holding"),
            bind(lock.read(CELL), lambda x: lock.write(CELL, x + 1)),
            annotate(lambda s: lock.holds(s), "still holding"),
            lock.release(lambda a: a + 1),
            annotate(lambda s: lock.quiescent(s), "released"),
        )
        result = explore(
            initial_config(make_world(lock), initial_state(lock, 0, 0), prog),
            env_budget=1,
            max_steps=40,
        )
        assert result.ok, [str(v) for v in result.violations][:2]


class TestWeakening:
    def _stronger(self, conc):
        return Spec(
            "exact",
            pre=lambda s: True,
            post=lambda r, s2, s1: s2.self_of("ct") == s1.self_of("ct") + 1,
        )

    def _weaker(self, conc):
        return Spec(
            "grew",
            pre=lambda s: True,
            post=lambda r, s2, s1: s2.self_of("ct") >= s1.self_of("ct"),
        )

    def test_valid_weakening(self, world, conc):
        from repro.core.prog import act

        issues = check_weakening_on_runs(
            world,
            self._stronger(conc),
            self._weaker(conc),
            [Scenario(counter_state(conc), act(BumpAction(conc)))],
        )
        assert issues == []

    def test_invalid_weakening_caught(self, world, conc):
        from repro.core.prog import act

        bogus = Spec(
            "bogus",
            pre=lambda s: True,
            post=lambda r, s2, s1: s2.self_of("ct") == 99,
        )
        issues = check_weakening_on_runs(
            world,
            self._stronger(conc),
            bogus,
            [Scenario(counter_state(conc), act(BumpAction(conc)))],
        )
        assert issues

    def test_pre_strengthening_caught(self, conc):
        strong = Spec("s", pre=lambda s: False, post=lambda r, s2, s1: True)
        weak = Spec("w", pre=lambda s: True, post=lambda r, s2, s1: True)
        issues = check_weakening(strong, weak, [counter_state(conc)])
        assert issues

    def test_span_root_weakening(self):
        # §3.5's emitted obligation: under the closed world, span_tp's
        # guarantees entail span_root_tp's.
        from repro.graphs import graph_heap
        from repro.structures.spanning_tree import (
            SpanActions,
            SpanTreeConcurroid,
            closed_world_state,
            make_span_root,
            span_root_spec,
        )
        from repro.structures.spanning_tree_verify import root_world

        root = ptr(1)
        h = graph_heap({1: (2, 2), 2: (1, 0)})
        spec = span_root_spec(root)
        scenario = Scenario(
            closed_world_state(h),
            make_span_root(SpanActions(SpanTreeConcurroid()), root),
        )
        behaviours = collect_behaviours(root_world(), [scenario])
        assert behaviours
        for s1, r, s2 in behaviours:
            assert spec.check_post(r, s2, s1)

    def test_collect_behaviours_raises_on_violation(self, conc):
        from repro.core.prog import act

        tiny = CounterConcurroid(cap=0)
        with pytest.raises(AssertionError):
            collect_behaviours(
                World((tiny,)),
                [Scenario(counter_state(tiny), act(BumpAction(tiny)))],
            )

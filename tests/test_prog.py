"""Unit tests for the program DSL combinators."""

import pytest

from repro.core import World
from repro.core.prog import (
    ActCall,
    Bind,
    Call,
    Par,
    Ret,
    act,
    bind,
    cond,
    ffix,
    flatten_progs,
    par,
    prog_of_value,
    ret,
    seq,
)
from repro.semantics import initial_config, run_deterministic

from .helpers import BumpAction, CounterConcurroid, ReadCounterAction, counter_state


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=20)


@pytest.fixture()
def world(conc):
    return World((conc,))


def run(world, conc, prog):
    return run_deterministic(initial_config(world, counter_state(conc), prog))


class TestConstructors:
    def test_ret_default_none(self):
        assert Ret().value is None

    def test_bind_requires_program(self):
        with pytest.raises(TypeError):
            Bind("not a program", lambda v: ret(v))  # type: ignore[arg-type]

    def test_call_expansion_must_yield_program(self):
        c = Call(lambda: 42, (), label="bad")
        with pytest.raises(TypeError):
            c.expand()

    def test_reprs(self):
        assert "Ret" in repr(ret(1))
        assert "Par" in repr(par(ret(1), ret(2)))
        assert "Call" in repr(Call(lambda: ret(1), (), label="x"))


class TestCombinators:
    def test_seq_empty(self, world, conc):
        assert run(world, conc, seq()).result is None

    def test_seq_single(self, world, conc):
        assert run(world, conc, seq(ret(7))).result == 7

    def test_seq_discards_intermediates(self, world, conc):
        assert run(world, conc, seq(ret(1), ret(2))).result == 2

    def test_cond(self, world, conc):
        assert run(world, conc, cond(True, ret("t"), ret("f"))).result == "t"
        assert run(world, conc, cond(False, ret("t"), ret("f"))).result == "f"

    def test_prog_of_value(self, world, conc):
        prog = prog_of_value(lambda a, b: a * b, 6, 7)
        assert run(world, conc, prog).result == 42

    def test_flatten_progs_empty(self, world, conc):
        assert run(world, conc, flatten_progs([])).result == ()

    def test_flatten_progs_single(self, world, conc):
        assert run(world, conc, flatten_progs([ret(1)])).result == (1,)

    def test_flatten_progs_many(self, world, conc):
        prog = flatten_progs([ret(1), ret(2), ret(3)])
        assert run(world, conc, prog).result == (1, 2, 3)

    def test_flatten_progs_runs_concurrently(self, world, conc):
        from repro.heap import ptr

        prog = flatten_progs([act(BumpAction(conc)) for __ in range(4)])
        final = run(world, conc, prog)
        assert final.joints[conc.label][ptr(7)] == 4


class TestFfix:
    def test_parameterized_recursion(self, world, conc):
        loop = ffix(
            lambda rec: lambda n, acc: ret(acc) if n == 0 else rec(n - 1, acc + n)
        )
        assert run(world, conc, loop(4, 0)).result == 10

    def test_mutual_recursion_via_closures(self, world, conc):
        def even_gen(rec):
            def even(n):
                return ret(True) if n == 0 else Call(lambda m: odd(m), (n - 1,))

            def odd(n):
                return ret(False) if n == 0 else even(n - 1)

            return even

        even = ffix(even_gen)
        assert run(world, conc, even(6)).result is True
        assert run(world, conc, even(5)).result is False

    def test_recursion_with_actions(self, world, conc):
        loop = ffix(
            lambda rec: lambda n: ret(None)
            if n == 0
            else bind(act(BumpAction(conc)), lambda __: rec(n - 1))
        )
        final = run(world, conc, loop(5))
        view = final.view_for(0)
        assert view.self_of(conc.label) == 5

"""Unit tests for the union-map heap substrate."""

import pytest

from repro.heap import EMPTY, NULL, UNDEF, Heap, empty, fresh_ptr, heap_of, join_all, pts, ptr, ptrs


class TestPointers:
    def test_null_is_falsy(self):
        assert not NULL
        assert NULL.is_null

    def test_non_null_is_truthy(self):
        assert ptr(3)
        assert not ptr(3).is_null

    def test_ptr_zero_is_null(self):
        assert ptr(0) == NULL

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            ptr(-1)

    def test_ptrs_builds_many(self):
        assert ptrs(1, 2) == (ptr(1), ptr(2))

    def test_ordering(self):
        assert ptr(1) < ptr(2)

    def test_fresh_ptr_smallest_unused(self):
        assert fresh_ptr([ptr(1), ptr(3)]) == ptr(2)

    def test_fresh_ptr_never_null(self):
        assert fresh_ptr([]) == ptr(1)

    def test_repr(self):
        assert repr(NULL) == "null"
        assert repr(ptr(7)) == "p7"


class TestHeapConstruction:
    def test_empty_heap_valid(self):
        assert empty().is_valid
        assert empty().is_empty

    def test_pts_singleton(self):
        h = pts(ptr(1), 42)
        assert h[ptr(1)] == 42
        assert h.dom() == {ptr(1)}

    def test_pts_at_null_rejected(self):
        with pytest.raises(ValueError):
            pts(NULL, 0)

    def test_heap_of(self):
        h = heap_of({ptr(1): "a", ptr(2): "b"})
        assert len(h) == 2

    def test_null_in_domain_rejected(self):
        with pytest.raises(ValueError):
            heap_of({NULL: 1})

    def test_non_ptr_domain_rejected(self):
        with pytest.raises(TypeError):
            heap_of({1: 1})  # type: ignore[dict-item]


class TestHeapJoin:
    def test_disjoint_join(self):
        h = pts(ptr(1), "a").join(pts(ptr(2), "b"))
        assert h.is_valid
        assert h.dom() == {ptr(1), ptr(2)}

    def test_overlapping_join_undefined(self):
        h = pts(ptr(1), "a").join(pts(ptr(1), "b"))
        assert not h.is_valid

    def test_undef_absorbs(self):
        assert not UNDEF.join(pts(ptr(1), 0)).is_valid
        assert not pts(ptr(1), 0).join(UNDEF).is_valid

    def test_unit_law(self):
        h = pts(ptr(1), "a")
        assert h.join(EMPTY) == h
        assert EMPTY.join(h) == h

    def test_commutative(self):
        a, b = pts(ptr(1), 1), pts(ptr(2), 2)
        assert a.join(b) == b.join(a)

    def test_plus_operator(self):
        assert (pts(ptr(1), 1) + pts(ptr(2), 2)).dom() == {ptr(1), ptr(2)}

    def test_join_all(self):
        h = join_all([pts(ptr(i), i) for i in range(1, 4)])
        assert h.dom() == {ptr(1), ptr(2), ptr(3)}

    def test_join_all_empty(self):
        assert join_all([]) == EMPTY


class TestHeapOperations:
    def test_free_removes(self):
        h = pts(ptr(1), 1) + pts(ptr(2), 2)
        assert h.free(ptr(1)).dom() == {ptr(2)}

    def test_free_absent_is_noop(self):
        h = pts(ptr(1), 1)
        assert h.free(ptr(9)) == h

    def test_free_undef(self):
        assert not UNDEF.free(ptr(1)).is_valid

    def test_update_existing(self):
        h = pts(ptr(1), 1).update(ptr(1), 99)
        assert h[ptr(1)] == 99

    def test_update_dangling_faults(self):
        assert not pts(ptr(1), 1).update(ptr(2), 0).is_valid

    def test_update_preserves_footprint(self):
        h = pts(ptr(1), 1) + pts(ptr(2), 2)
        assert h.update(ptr(1), 0).dom() == h.dom()

    def test_alloc_fresh(self):
        p, h = pts(ptr(1), 1).alloc("new")
        assert p == ptr(2)
        assert h[p] == "new"

    def test_alloc_in_undef_raises(self):
        with pytest.raises(ValueError):
            UNDEF.alloc(0)

    def test_restrict(self):
        h = pts(ptr(1), 1) + pts(ptr(2), 2)
        assert h.restrict([ptr(1)]).dom() == {ptr(1)}

    def test_remove_all(self):
        h = pts(ptr(1), 1) + pts(ptr(2), 2)
        assert h.remove_all([ptr(1)]).dom() == {ptr(2)}

    def test_read_undef_raises(self):
        with pytest.raises(KeyError):
            UNDEF[ptr(1)]

    def test_get_default(self):
        assert pts(ptr(1), 1).get(ptr(9), "d") == "d"

    def test_contains(self):
        h = pts(ptr(1), 1)
        assert ptr(1) in h
        assert ptr(2) not in h
        assert ptr(1) not in UNDEF


class TestHeapEquality:
    def test_structural_equality(self):
        assert pts(ptr(1), 1) == heap_of({ptr(1): 1})

    def test_hashable(self):
        assert hash(pts(ptr(1), 1)) == hash(heap_of({ptr(1): 1}))
        assert len({EMPTY, empty()}) == 1

    def test_undef_equal_to_undef(self):
        assert UNDEF == Heap(_valid=False)

    def test_undef_not_equal_to_empty(self):
        assert UNDEF != EMPTY

    def test_repr_smoke(self):
        assert "p1" in repr(pts(ptr(1), 1))
        assert "UNDEF" in repr(UNDEF)
        assert "empty" in repr(EMPTY)

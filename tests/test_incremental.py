"""Tests for ``verify --incremental`` (fcsl-deps): per-obligation replay.

Two layers:

* a synthetic two-obligation program whose obligations depend on
  *disjoint* definitions of a tmp-path module — the engine-level replay
  mechanics (cold store, edit -> cone-only re-execution, zero-stale
  replay, map backfill on a plain hit) are asserted against an
  obligation-execution log;
* the registry equivalence gate: mutate one real definition at a time
  and assert the incremental sweep re-executes exactly the obligations
  whose cone contains it, with verdicts identical to a cold full run.
  This is the soundness contract named in the ISSUE — a missed
  dependency edge would show up here as a verdict divergence.
"""

from __future__ import annotations

import ast
import importlib
import sys
import textwrap
from pathlib import Path

import pytest

import repro.analysis.deps as deps_mod
from repro.analysis.deps import analyze_obligations
from repro.core.verify import ReportBuilder, VerificationReport
from repro.engine import ObligationCache, sweep
from repro.structures.registry import ProgramInfo, registry_programs

from .test_engine import _verdicts

INC_MODULE = "inc_probe_mod"

_OB_CALLS: list[str] = []


def _inc_verifier(**kwargs) -> VerificationReport:
    probe = importlib.import_module(INC_MODULE)
    alpha, beta = probe.alpha, probe.beta
    builder = ReportBuilder("Inc")

    def uses_alpha():
        _OB_CALLS.append("alpha")
        return [] if alpha() == 1 else [f"alpha() = {alpha()}"]

    def uses_beta():
        _OB_CALLS.append("beta")
        return [] if beta() == 2 else [f"beta() = {beta()}"]

    builder.obligation("uses-alpha", "Libs", uses_alpha)
    builder.obligation("uses-beta", "Libs", uses_beta)
    return builder.build()


@pytest.fixture()
def inc_program(tmp_path, monkeypatch):
    """A registry-shaped program with per-obligation-disjoint deps."""
    module = tmp_path / f"{INC_MODULE}.py"
    module.write_text(
        textwrap.dedent(
            '''
            """Synthetic module backing the incremental-replay tests."""


            def alpha():
                return 1


            def beta():
                return 2
            '''
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    # Treat the probe module as a tracked case study so its definitions
    # get per-definition fingerprints (the real prefix only covers
    # repro.structures.*).
    monkeypatch.setattr(deps_mod, "TRACKED_PREFIX", INC_MODULE)
    importlib.invalidate_caches()
    sys.modules.pop(INC_MODULE, None)
    _OB_CALLS.clear()
    info = ProgramInfo(
        name="Inc",
        concurroids={},
        modules=(INC_MODULE,),
        verifier=_inc_verifier,
    )
    yield info, module
    sys.modules.pop(INC_MODULE, None)


def _edit(module: Path, old: str, new: str) -> None:
    text = module.read_text(encoding="utf-8")
    assert old in text
    module.write_text(text.replace(old, new), encoding="utf-8")
    importlib.invalidate_caches()
    sys.modules.pop(INC_MODULE, None)


class TestIncrementalEngine:
    def test_incremental_needs_cache(self, inc_program, tmp_path):
        info, __ = inc_program
        with pytest.raises(ValueError, match="needs the obligation cache"):
            sweep([info], jobs=1, cache=False, incremental=True)

    def test_incremental_excludes_split(self, inc_program, tmp_path):
        info, __ = inc_program
        with pytest.raises(ValueError, match="mutually exclusive"):
            sweep(
                [info],
                jobs=1,
                cache_dir=tmp_path / "cache",
                incremental=True,
                split_obligations=True,
            )

    def test_cold_run_stores_the_obligation_map(self, inc_program, tmp_path):
        info, __ = inc_program
        cache_dir = tmp_path / "cache"
        cold = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert cold.ok
        assert not cold.outcome("Inc").cached
        assert _OB_CALLS == ["alpha", "beta"]
        entry = ObligationCache(cache_dir).load_incremental("Inc")
        assert entry is not None
        __, fingerprints = entry
        assert set(fingerprints) == {"uses-alpha", "uses-beta"}

    def test_edit_reexecutes_only_the_cone(self, inc_program, tmp_path):
        info, module = inc_program
        cache_dir = tmp_path / "cache"
        cold = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        _edit(module, "return 2", "value = 2\n    return value")
        again = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert again.ok
        outcome = again.outcome("Inc")
        assert not outcome.cached
        assert outcome.reverified == 1
        # Only the obligation whose cone contains ``beta`` re-executed.
        assert _OB_CALLS == ["alpha", "beta", "beta"]
        assert _verdicts(cold) == _verdicts(again)
        # The refreshed entry is a plain hit on the next run.
        warm = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert warm.outcome("Inc").cached
        assert _OB_CALLS == ["alpha", "beta", "beta"]

    def test_breaking_edit_changes_the_replayed_verdict(
        self, inc_program, tmp_path
    ):
        info, module = inc_program
        cache_dir = tmp_path / "cache"
        sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        _edit(module, "return 2", "return 3")
        again = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert not again.ok
        report = again.outcome("Inc").report
        by_name = {ob.name: ob for ob in report.obligations}
        assert not by_name["uses-beta"].ok
        assert by_name["uses-alpha"].ok, "replayed obligation keeps verdict"
        # Equivalence with a from-scratch run of the edited module.
        cold = sweep([info], jobs=1, cache_dir=tmp_path / "cache2")
        assert _verdicts(cold) == _verdicts(again)

    def test_cone_external_edit_replays_everything(self, inc_program, tmp_path):
        # A trailing comment changes the whole-module text (so the
        # whole-program fingerprint misses) but no obligation's cone:
        # the sweep replays all verdicts without executing anything.
        info, module = inc_program
        cache_dir = tmp_path / "cache"
        sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        module.write_text(
            module.read_text(encoding="utf-8") + "\n# trailing remark\n",
            encoding="utf-8",
        )
        again = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert again.ok
        outcome = again.outcome("Inc")
        assert outcome.reverified == 0
        assert _OB_CALLS == ["alpha", "beta"], "no obligation re-executed"
        # ...and the entry was refreshed under the new fingerprint.
        warm = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert warm.outcome("Inc").cached

    def test_plain_hit_backfills_the_map(self, inc_program, tmp_path):
        # An entry stored by a plain (non-incremental) sweep has no
        # per-obligation map; the first incremental run backfills it
        # from analysis alone — no re-verification.
        info, module = inc_program
        cache_dir = tmp_path / "cache"
        sweep([info], jobs=1, cache_dir=cache_dir)
        store = ObligationCache(cache_dir)
        assert store.load_incremental("Inc") is None
        warm = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert warm.outcome("Inc").cached
        assert _OB_CALLS == ["alpha", "beta"], "backfill is analysis-only"
        assert store.load_incremental("Inc") is not None
        # The backfilled map drives the next edit incrementally.
        _edit(module, "return 1", "result = 1\n    return result")
        again = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert again.outcome("Inc").reverified == 1
        assert _OB_CALLS == ["alpha", "beta", "alpha"]


# -- the registry equivalence gate ---------------------------------------------


def _module_path(module: str) -> Path:
    spec = importlib.util.find_spec(module)
    assert spec is not None and spec.origin is not None
    return Path(spec.origin)


def _insert_comment(path: Path, qualname: str) -> None:
    """Insert a no-op comment as the first body line of ``qualname``
    (``Class.method``): the definition's segment digest changes, its
    behaviour does not."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text)
    cls_name, method_name = qualname.split(".")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls_name:
            for child in node.body:
                if (
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child.name == method_name
                ):
                    lines = text.splitlines(keepends=True)
                    first = child.body[0]
                    indent = " " * first.col_offset
                    lines.insert(
                        first.lineno - 1, f"{indent}# equivalence probe\n"
                    )
                    path.write_text("".join(lines), encoding="utf-8")
                    return
    raise AssertionError(f"{qualname} not found in {path}")


@pytest.mark.slow
@pytest.mark.parametrize("name", ["CAS-lock", "Ticketed lock"])
def test_registry_equivalence_gate(name, tmp_path):
    """Mutate one real definition; the incremental sweep must re-execute
    exactly the obligations whose cone contains it and agree verdict-
    for-verdict with a cold full run of the same source."""
    info = {i.name: i for i in registry_programs()}[name]
    module = info.modules[0]
    path = _module_path(module)
    original = path.read_text(encoding="utf-8")

    analysis = analyze_obligations(info)
    assert analysis.usable
    steps = sorted(
        {
            d.name
            for dep in analysis.obligations
            for d in dep.cone.definitions
            if d.module == module and d.name.endswith(".step")
        }
    )
    assert steps, f"no step definitions tracked for {name}"
    target = steps[0]
    expected = analysis.affected_by(module, target)
    assert expected, f"{target} affects no obligations"
    assert len(expected) < len(analysis.obligations), (
        f"{target} affects every obligation; the gate would be vacuous"
    )

    cache_dir = tmp_path / "cache"
    try:
        cold = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        assert not cold.outcome(name).cached
        _insert_comment(path, target)
        inc = sweep([info], jobs=1, cache_dir=cache_dir, incremental=True)
        outcome = inc.outcome(name)
        assert not outcome.cached
        assert outcome.reverified == len(expected), (
            f"edit to {target} re-verified {outcome.reverified} "
            f"obligations, cone says {sorted(expected)}"
        )
        assert _verdicts(cold) == _verdicts(inc)
        # A comment is behaviour-neutral, so a cold run of the edited
        # source must agree too (the full equivalence triangle).
        cold_edited = sweep([info], jobs=1, cache_dir=tmp_path / "cache2")
        assert _verdicts(cold_edited) == _verdicts(inc)
    finally:
        path.write_text(original, encoding="utf-8")

"""Tests for the client programs: seq stack, FC-stack, producer/consumer."""

import random

import pytest

from repro.core import World
from repro.core.spec import Scenario
from repro.core.verify import check_triple, triple_issues
from repro.heap import ptr
from repro.semantics import explore, initial_config, run_deterministic, run_random
from repro.structures.fc_stack import FCStack, verify_fc_stack
from repro.structures.prodcons import (
    consumer,
    prod_cons,
    prod_cons_spec,
    producer,
    verify_prod_cons,
)
from repro.structures.seq_stack import SeqStack, _simulate, verify_seq_stack
from repro.structures.treiber import TB_LABEL, TreiberStructure


class TestSeqStack:
    def test_lifo(self):
        ss = SeqStack()
        ops = [("push", 1), ("push", 2), ("pop", None), ("pop", None)]
        final = run_deterministic(
            initial_config(ss.world(), ss.initial_state(), ss.run_ops(ops))
        )
        assert final.result == (2, 1)

    def test_pop_empty(self):
        ss = SeqStack()
        final = run_deterministic(
            initial_config(ss.world(), ss.initial_state(), ss.run_ops([("pop", None)]))
        )
        assert final.result == (None,)

    def test_heap_fully_reclaimed(self):
        ss = SeqStack()
        init = ss.initial_state()
        final = run_deterministic(
            initial_config(ss.world(), init, ss.run_ops([("push", 1), ("pop", None)]))
        )
        view = final.view_for(0)
        assert view.self_of("pv").dom() == init.self_of("pv").dom()
        assert view.labels() == {"pv"}  # hidden labels deinstalled

    def test_simulation_oracle(self):
        assert _simulate([("push", 1), ("push", 2), ("pop", None)]) == (2,)
        assert _simulate([("pop", None), ("push", 3), ("pop", None)]) == (None, 3)

    def test_spec_on_all_short_sequences(self):
        from itertools import product

        alphabet = [("push", 0), ("pop", None)]
        for n in range(1, 4):
            for ops in product(alphabet, repeat=n):
                if sum(1 for k, __ in ops if k == "push") > 3:
                    continue
                ss = SeqStack()
                spec = ss.sequential_spec(ops)
                outcomes = check_triple(
                    ss.world(),
                    spec,
                    [Scenario(ss.initial_state(), ss.run_ops(ops))],
                    max_steps=120,
                )
                assert not triple_issues(outcomes), ops

    def test_verification(self):
        report = verify_seq_stack()
        assert report.ok, report.pretty()
        counts = report.counts_by_category()
        assert counts["Conc"] == counts["Acts"] == counts["Stab"] == 0


class TestFCStack:
    def test_push_pop_roundtrip(self):
        from repro.core.prog import seq

        stack = FCStack()
        prog = seq(stack.push(stack.slots[0], 1), stack.pop(stack.slots[0]))
        final = run_deterministic(initial_config(stack.world(), stack.initial_state(), prog))
        assert final.result == 1

    def test_treiber_shaped_specs(self):
        stack = FCStack()
        outcomes = check_triple(
            stack.world(),
            stack.push_spec(1),
            [Scenario(stack.initial_state(), stack.push(stack.slots[0], 1))],
            max_steps=60,
            env_budget=1,
        )
        assert not triple_issues(outcomes)

    def test_verification(self):
        report = verify_fc_stack()
        assert report.ok, report.pretty()


class TestProdCons:
    def test_single_item(self):
        ts = TreiberStructure(max_ops=3, pool=(101,))
        final = run_deterministic(
            initial_config(World((ts.concurroid,)), ts.initial_state(), prod_cons(ts, (7,)))
        )
        __, consumed = final.result
        assert consumed == (7,)

    def test_two_items_all_interleavings(self):
        ts = TreiberStructure(max_ops=5, pool=(101, 102))
        spec = prod_cons_spec(ts, (0, 1))
        init = ts.initial_state()
        result = explore(
            initial_config(World((ts.concurroid,)), init, prod_cons(ts, (0, 1))),
            max_steps=300,
            max_configs=500_000,
        )
        assert result.ok
        assert result.terminals
        for terminal in result.terminals:
            assert spec.check_post(terminal.result, terminal.view_for(0), init)

    def test_consumer_retries_through_empty(self):
        # Consumer starts first, sees empty, spins, eventually gets both.
        ts = TreiberStructure(max_ops=5, pool=(101, 102))
        rng = random.Random(9)
        for __ in range(10):
            final, violations = run_random(
                initial_config(
                    World((ts.concurroid,)), ts.initial_state(), prod_cons(ts, (1, 0))
                ),
                rng,
                max_steps=3000,
            )
            assert not violations
            assert final is not None
            __, consumed = final.result
            assert sorted(consumed) == [0, 1]

    def test_verification(self):
        report = verify_prod_cons()
        assert report.ok, report.pretty()

    def test_nothing_invented(self):
        # A consumer asked for more than produced spins forever.
        ts = TreiberStructure(max_ops=4, pool=(101,))
        from repro.core.prog import par

        prog = par(producer(ts, (1,)), consumer(ts, 2))
        result = explore(
            initial_config(World((ts.concurroid,)), ts.initial_state(), prog),
            max_steps=60,
        )
        assert not result.terminals  # can never complete
        assert result.ok

"""Tests for the atomic pair snapshot."""

import pytest

from repro.core import World
from repro.core.prog import par
from repro.core.spec import Scenario
from repro.core.verify import check_triple, triple_issues
from repro.semantics import explore, initial_config, run_deterministic
from repro.structures.pair_snapshot import (
    X,
    Y,
    PairSnapshotActions,
    PairSnapshotConcurroid,
    initial_state,
    make_read_pair,
    pair_states_since,
    read_pair_spec,
    verify_pair_snapshot,
    write_prog,
    write_spec,
)


@pytest.fixture()
def conc():
    return PairSnapshotConcurroid()


@pytest.fixture()
def actions(conc):
    return PairSnapshotActions(conc)


class TestProtocol:
    def test_initial_coherent(self, conc):
        assert conc.coherent(initial_state(conc))

    def test_write_bumps_version_and_history(self, conc, actions):
        s = initial_state(conc)
        __, s2 = actions.write_x.step(s, 1)
        (cx, vx), ___ = conc.cells(s2)
        assert (cx, vx) == (1, 1)
        assert len(s2.self_of(conc.label)) == 1

    def test_idempotent_write_still_bumps_version(self, conc, actions):
        s = initial_state(conc)
        __, s2 = actions.write_x.step(s, 0)  # same content
        (cx, vx), ___ = conc.cells(s2)
        assert (cx, vx) == (0, 1)

    def test_write_budget_enforced(self, conc, actions):
        s = initial_state(conc)
        for __ in range(conc._max_writes):
            assert actions.write_x.safe(s, 1)
            ___, s = actions.write_x.step(s, 1)
        assert not actions.write_x.safe(s, 0)

    def test_read_is_pure(self, conc, actions):
        s = initial_state(conc)
        value, s2 = actions.read_x.step(s)
        assert value == (0, 0)
        assert s2 == s


class TestReadPair:
    def test_sequential_snapshot(self, conc, actions):
        final = run_deterministic(
            initial_config(World((conc,)), initial_state(conc), make_read_pair(actions))
        )
        assert final.result == (0, 0)

    def test_snapshot_under_full_interference(self, conc, actions):
        spec = read_pair_spec(conc)
        init = initial_state(conc)
        outcomes = check_triple(
            World((conc,)),
            spec,
            [Scenario(init, make_read_pair(actions))],
            max_steps=30,
            env_budget=3,
        )
        assert not triple_issues(outcomes)
        assert outcomes[0].terminals > 1

    def test_snapshot_races_with_writers(self, conc, actions):
        init = initial_state(conc)
        prog = par(make_read_pair(actions), par(write_prog(actions, X, 1), write_prog(actions, Y, 1)))
        result = explore(initial_config(World((conc,)), init, prog), max_steps=40)
        assert result.ok
        snapshots = {terminal.result[0] for terminal in result.terminals}
        # Depending on interleaving the snapshot sees any consistent stage.
        assert (0, 0) in snapshots and (1, 1) in snapshots
        for terminal in result.terminals:
            states = set(pair_states_since(conc, init, terminal.view_for(0)))
            assert tuple(terminal.result[0]) in states

    def test_torn_read_would_be_rejected(self, conc, actions):
        # Failure injection: a read_pair WITHOUT the version re-check can
        # return a pair that never existed; the spec must catch it.
        from repro.core.prog import act, bind, ret

        torn = bind(
            act(actions.read_x),
            lambda x1: bind(act(actions.read_y), lambda y1: ret((x1[0], y1[0]))),
        )
        spec = read_pair_spec(conc)
        init = initial_state(conc)
        outcomes = check_triple(
            World((conc,)),
            spec,
            [Scenario(init, torn)],
            max_steps=30,
            env_budget=3,
        )
        assert triple_issues(outcomes), "torn read must violate read_pair_tp"


class TestWriteSpec:
    def test_write_triple(self, conc, actions):
        outcomes = check_triple(
            World((conc,)),
            write_spec(conc, X, 1),
            [Scenario(initial_state(conc), write_prog(actions, X, 1))],
            env_budget=2,
        )
        assert not triple_issues(outcomes)


class TestVerification:
    @pytest.mark.slow
    def test_full_verification(self):
        report = verify_pair_snapshot()
        assert report.ok, report.pretty()

    def test_uses_only_its_own_concurroid(self):
        # Table 2: the pair snapshot row marks ReadPair only.
        from repro.structures.registry import program

        info = program("Pair snapshot")
        assert info.uses("ReadPair") == "yes"
        assert not info.uses("Priv")

"""fcsl-race rule tests: seeded defects fire, the clean registry does not.

The fixtures build a deliberately undisciplined shared counter — a joint
cell anyone may bump, with *no* ownership discipline — which is exactly
the protocol shape each FCSL045+ rule exists to flag:

* an unprotected read-then-write program (non-atomic RMW, FCSL045);
* a stale read guarding a later write with no recheck (FCSL046);
* an assertion about the counter that interference falsifies (FCSL047);
* an action reaching into another concurroid's heap (FCSL048).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import pytest

from repro.core.action import Action
from repro.core.autostab import AutoAssertion
from repro.core.concurroid import Concurroid, Transition
from repro.core.prog import act, bind, seq
from repro.core.state import State, SubjState, state_of
from repro.heap import Heap, heap_of, ptr
from repro.pcm.base import PCM, UnitPCM
from repro.analysis.race import race_registry, race_target
from repro.analysis.targets import LintTarget, bounded_closure

C = ptr(7)
D = ptr(8)


class RacyCounter(Concurroid):
    """A joint counter cell any thread may bump — no ownership at all."""

    def __init__(self, label: str = "rc", cell=C, bound: int = 3):
        self._label = label
        self._cell = cell
        self._bound = bound

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        joint = state.joint_of(self._label)
        return isinstance(joint, Heap) and self._cell in joint

    def transitions(self) -> Sequence[Transition]:
        lbl, cell, bound = self._label, self._cell, self._bound

        def params(state: State) -> Iterator[Any]:
            if state.joint_of(lbl)[cell] < bound:
                yield None

        def requires(state: State, param: Any) -> bool:
            return state.joint_of(lbl)[cell] < bound

        def effect(state: State, param: Any) -> State:
            return state.update(
                lbl,
                lambda c: c.with_joint(c.joint.update(cell, c.joint[cell] + 1)),
            )

        return (Transition(f"{lbl}.bump", requires, effect, params),)

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: UnitPCM()}


class ReadCell(Action):
    def __init__(self, conc: RacyCounter, cell):
        super().__init__(conc)
        self._cell = cell
        self.name = f"{conc.labels[0]}.read"

    def safe(self, state: State, *args: Any) -> bool:
        lbl = self.concurroid.labels[0]
        return lbl in state and self._cell in state.joint_of(lbl)

    def step(self, state: State, *args: Any) -> tuple[Any, State]:
        return state.joint_of(self.concurroid.labels[0])[self._cell], state


class WriteCell(Action):
    """An unconditional write: the guard never re-reads the cell."""

    def __init__(self, conc: RacyCounter, cell):
        super().__init__(conc)
        self._cell = cell
        self.name = f"{conc.labels[0]}.write"

    def safe(self, state: State, value: Any) -> bool:
        lbl = self.concurroid.labels[0]
        return lbl in state and self._cell in state.joint_of(lbl)

    def step(self, state: State, value: Any) -> tuple[None, State]:
        lbl = self.concurroid.labels[0]
        return None, state.update(
            lbl, lambda c: c.with_joint(c.joint.update(self._cell, value))
        )


class SneakyWrite(Action):
    """Declared on ``rc`` but writes into the ``fr`` concurroid's heap."""

    def __init__(self, conc: RacyCounter, foreign_label: str, cell):
        super().__init__(conc)
        self._foreign = foreign_label
        self._cell = cell
        self.name = f"{conc.labels[0]}.sneaky"

    def safe(self, state: State, *args: Any) -> bool:
        return self._foreign in state

    def step(self, state: State, *args: Any) -> tuple[None, State]:
        return None, state.update(
            self._foreign,
            lambda c: c.with_joint(c.joint.update(self._cell, 9)),
        )


@pytest.fixture(scope="module")
def racy():
    conc = RacyCounter()
    unit = UnitPCM().unit
    init = state_of(rc=SubjState(unit, heap_of({C: 0, D: 0}), unit))
    states, exhaustive = bounded_closure(conc, [init])
    assert exhaustive
    return conc, tuple(states)


def codes(diags):
    return sorted(d.code for d in diags)


def test_non_atomic_rmw_fires_fcsl045(racy):
    conc, states = racy
    read, write = ReadCell(conc, C), WriteCell(conc, C)
    rmw = bind(act(read), lambda v: act(write, v + 1))
    target = LintTarget(
        program="fixture-rmw",
        concurroids=(conc,),
        states=states,
        programs=((rmw, "rmw", None),),
    )
    diags = race_target(target)
    assert "FCSL045" in codes(diags)
    hit = next(d for d in diags if d.code == "FCSL045")
    assert "read-modify-write" in hit.message
    assert hit.subject == "fixture-rmw"


def test_stale_read_fires_fcsl046(racy):
    conc, states = racy
    read, write_d = ReadCell(conc, C), WriteCell(conc, D)
    stale = seq(act(read), act(write_d, 7))
    target = LintTarget(
        program="fixture-stale",
        concurroids=(conc,),
        states=states,
        programs=((stale, "stale", None),),
    )
    diags = race_target(target)
    assert "FCSL046" in codes(diags)
    # and no FCSL045: the read and the write touch different cells
    assert "FCSL045" not in codes(diags)


def test_guard_recheck_suppresses_both(racy):
    """A downstream guard that re-reads the cell is the CAS pattern: no
    RMW finding, no staleness finding."""
    conc, states = racy
    read = ReadCell(conc, C)

    class CheckedWrite(WriteCell):
        def safe(self, state: State, value: Any) -> bool:
            lbl = self.concurroid.labels[0]
            # re-reads the cell: the value check makes the write a CAS
            return lbl in state and state.joint_of(lbl)[self._cell] <= value

    checked = CheckedWrite(conc, C)
    prog = bind(act(read), lambda v: act(checked, v + 1))
    target = LintTarget(
        program="fixture-cas",
        concurroids=(conc,),
        states=states,
        programs=((prog, "cas", None),),
    )
    assert codes(race_target(target)) == []


def test_unstable_assertion_fires_fcsl047(racy):
    conc, states = racy
    target = LintTarget(
        program="fixture-unstable",
        concurroids=(conc,),
        states=states,
        assertions=(
            AutoAssertion(
                name="counter-still-zero",
                predicate=lambda s: s.joint_of("rc")[C] == 0,
                shape="opaque",
            ),
        ),
    )
    diags = race_target(target)
    assert codes(diags) == ["FCSL047"]
    assert "counter-still-zero" in diags[0].message


def test_stable_assertion_is_clean(racy):
    conc, states = racy
    target = LintTarget(
        program="fixture-stable",
        concurroids=(conc,),
        states=states,
        assertions=(
            AutoAssertion(
                name="counter-bounded",
                predicate=lambda s: 0 <= s.joint_of("rc")[C] <= 3,
                shape="opaque",
            ),
        ),
    )
    assert codes(race_target(target)) == []


def test_foreign_footprint_fires_fcsl048():
    rc = RacyCounter(label="rc", cell=C)
    fr = RacyCounter(label="fr", cell=D)
    unit = UnitPCM().unit
    state = state_of(
        rc=SubjState(unit, heap_of({C: 0}), unit),
        fr=SubjState(unit, heap_of({D: 0}), unit),
    )
    sneaky = SneakyWrite(rc, "fr", D)
    target = LintTarget(
        program="fixture-foreign",
        concurroids=(rc, fr),
        states=(state,),
        actions=((sneaky, ((),)),),
    )
    diags = race_target(target)
    assert codes(diags) == ["FCSL048"]
    assert "fr" in diags[0].message


def test_well_scoped_action_is_clean(racy):
    conc, states = racy
    target = LintTarget(
        program="fixture-scoped",
        concurroids=(conc,),
        states=states,
        actions=((ReadCell(conc, C), ((),)), (WriteCell(conc, C), ((1,),))),
    )
    assert codes(race_target(target)) == []


# -- the registry stays clean -------------------------------------------------------------


def test_clean_registry_no_race_findings():
    assert race_registry() == []


def test_race_registry_unknown_program():
    with pytest.raises(KeyError):
        race_registry(names=["No such program"])

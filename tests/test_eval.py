"""Tests for the evaluation harness (tables, figures, LOC)."""

import pytest

from repro.eval.figure2 import check_figure2_invariants, render as render_f2, replay_figure2
from repro.eval.figure5 import (
    diff_against_paper as f5_diff,
    figure5_edges,
    is_dag,
    render as render_f5,
    topological_order,
)
from repro.eval.loc import framework_loc, module_loc, modules_loc, repository_loc, structures_loc
from repro.eval.table1 import PAPER_TABLE1, Table1Row, check_shape, render as render_t1
from repro.eval.table2 import PAPER_TABLE2, build_table2, diff_against_paper, render as render_t2
from repro.structures.registry import (
    CONCURROID_COLUMNS,
    FIGURE5_PAPER_EDGES,
    all_programs,
    program,
)


class TestRegistry:
    def test_eleven_programs(self):
        assert len(all_programs()) == 11

    def test_names_match_paper_table1(self):
        ours = {info.name for info in all_programs()}
        assert ours == set(PAPER_TABLE1)

    def test_lookup(self):
        assert program("Treiber stack").depends_on == ("CG Allocator",)
        with pytest.raises(KeyError):
            program("Nonexistent")

    def test_every_program_has_modules_and_verifier(self):
        for info in all_programs():
            assert info.modules
            assert callable(info.verifier)

    def test_concurroid_columns_are_known(self):
        for info in all_programs():
            for col in info.concurroids:
                assert col in CONCURROID_COLUMNS


class TestTable2:
    def test_matches_paper_exactly(self):
        assert diff_against_paper() == []

    def test_render_mentions_match(self):
        assert "matches paper Table 2 exactly" in render_t2()

    def test_all_paper_rows_present(self):
        ours = build_table2()
        assert set(ours) == set(PAPER_TABLE2)


class TestFigure5:
    def test_matches_paper_exactly(self):
        missing, extra = f5_diff()
        assert not missing and not extra

    def test_is_dag(self):
        assert is_dag(figure5_edges())

    def test_matches_networkx_topology(self):
        # Cross-validate our Kahn implementation against networkx.
        import networkx as nx

        g = nx.DiGraph(sorted(figure5_edges()))
        assert nx.is_directed_acyclic_graph(g)
        position = {n: i for i, n in enumerate(topological_order(figure5_edges()))}
        for a, b in figure5_edges():
            assert position[a] < position[b]

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            topological_order(frozenset({("a", "b"), ("b", "a")}))

    def test_render(self):
        text = render_f5()
        assert "matches paper Figure 5 exactly" in text
        for a, b in FIGURE5_PAPER_EDGES:
            assert f"{a} --> {b}" in text


class TestFigure2:
    def test_deterministic_replay(self):
        stages, ok = replay_figure2()
        assert ok
        assert not check_figure2_invariants(stages)
        assert stages[-1].black == frozenset("abcde")

    def test_random_replays(self):
        for seed in (2, 20):
            stages, ok = replay_figure2(seed=seed)
            assert ok
            assert not check_figure2_invariants(stages)

    def test_render_has_stage_lines(self):
        stages, __ = replay_figure2()
        text = render_f2(stages)
        assert "stage 1:" in text
        assert "a marked" in text

    def test_invariant_checker_catches_regressions(self):
        from repro.eval.figure2 import Stage

        bogus = [
            Stage(1, "x", grey=frozenset("a")),
            Stage(2, "y", grey=frozenset()),  # marking went backwards
        ]
        assert check_figure2_invariants(bogus)


class TestLoc:
    def test_module_loc_positive(self):
        assert module_loc("repro.heap.heap") > 50

    def test_modules_loc_sums(self):
        single = module_loc("repro.heap.heap")
        double = modules_loc(("repro.heap.heap", "repro.heap.pointers"))
        assert double > single

    def test_framework_excludes_structures(self):
        assert framework_loc() > 1000
        assert structures_loc() > 1000

    def test_repository_areas(self):
        areas = repository_loc()
        assert areas["src"] > areas["benchmarks"]
        assert "tests" in areas


class TestTable1Shape:
    def _row(self, name, **counts):
        base = {"Libs": 1, "Conc": 1, "Acts": 1, "Stab": 1, "Main": 1}
        base.update(counts)
        return Table1Row(name=name, obligations=base, loc=100, seconds=1.0, ok=True)

    def test_client_with_infrastructure_flagged(self):
        rows = [self._row("CG increment", Conc=1)]
        assert any("expected '-'" in i for i in check_shape(rows))

    def test_failed_verification_flagged(self):
        row = self._row("CAS-lock")
        row.ok = False
        assert any("failed" in i for i in check_shape([row]))

    def test_dash_rendering(self):
        row = self._row("Seq. stack", Conc=0, Acts=0, Stab=0)
        dashes = row.dashes()
        assert dashes["Conc"] == "-"
        assert dashes["Libs"] == "1"

    def test_render_smoke(self):
        rows = [self._row("CAS-lock"), self._row("Flat combiner", Main=2)]
        text = render_t1(rows)
        assert "CAS-lock" in text and "paper" in text

"""Tests for continuation fingerprinting and exploration dedupe soundness."""

import pytest

from repro.core import World
from repro.core.prog import Call, act, bind, ffix, par, ret, seq
from repro.semantics import explore, initial_config
from repro.semantics.interp import _sort_key, fingerprint, stable_fingerprint

from .helpers import BumpAction, CounterConcurroid, ReadCounterAction, counter_state


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=10)


@pytest.fixture()
def world(conc):
    return World((conc,))


class TestFingerprint:
    def test_primitives(self):
        assert fingerprint(3) == 3
        assert fingerprint("x") == "x"
        assert fingerprint(None) is None
        assert fingerprint((1, "a")) == (1, "a")

    def test_equal_programs_equal_fingerprints(self, conc):
        # Two separately-constructed but identical programs: one shared
        # code object, same captures.
        def build():
            return bind(act(BumpAction(conc)), lambda v: ret(v))

        # NB: separate BumpAction objects differ (actions are compared by
        # identity — they ARE the semantics), so share the action:
        action = BumpAction(conc)

        def build_shared(k):
            return bind(act(action), lambda v: ret(v + k))

        assert fingerprint(build_shared(1)) == fingerprint(build_shared(1))
        assert fingerprint(build_shared(1)) != fingerprint(build_shared(2))

    def test_distinct_actions_distinct_fingerprints(self, conc):
        assert fingerprint(act(BumpAction(conc))) != fingerprint(act(BumpAction(conc)))

    def test_loop_iterations_share_fingerprints(self, conc):
        # The crucial property for spin loops: re-entering the same loop
        # position yields the same fingerprint even though the closure
        # objects are fresh.
        action = ReadCounterAction(conc)
        spin = ffix(lambda loop: lambda: bind(act(action), lambda __: loop()))
        first = spin()
        expanded = first.expand()  # one unfolding: Bind(act, cont)
        again = expanded.cont(None)  # the recursive Call node
        assert fingerprint(first) == fingerprint(again)

    def test_cyclic_closures_terminate(self):
        def knot():
            def f():
                return f

            return f

        fp = fingerprint(knot())
        assert fp[0] == "fn"

    def test_captured_value_distinguishes(self, conc):
        action = ReadCounterAction(conc)

        def with_capture(x):
            return bind(act(action), lambda v: ret(x))

        assert fingerprint(with_capture(1)) != fingerprint(with_capture(2))

    def test_unhashable_falls_back_to_id(self):
        box = {"k": 1}
        fp1 = fingerprint(box)
        fp2 = fingerprint(box)
        assert fp1 == fp2
        assert fp1[0] == "id"


class _Opaque:
    """Default-``repr`` instance: its stable fingerprint reduces the
    address-bearing repr to the class name, so two instances collide —
    which is exactly what the ordering below must survive."""


class TestStableFingerprint:
    def test_dict_with_colliding_key_reprs_and_mixed_values(self):
        # Regression: set/dict elements used to be ordered by ``repr()``
        # of their fingerprints, tie-breaking on raw value comparison —
        # two same-class default-repr keys holding an int and a tuple
        # crashed with TypeError.  The type-tagged sort total-orders them.
        fp = stable_fingerprint({_Opaque(): 1, _Opaque(): ("x",)})
        assert fp[0] == "dict"

    def test_insertion_order_irrelevant(self):
        fp_one = stable_fingerprint({1: "a", "1": "b", (2,): "c"})
        fp_two = stable_fingerprint({(2,): "c", "1": "b", 1: "a"})
        assert fp_one == fp_two
        assert stable_fingerprint({1, "x", (2,)}) == stable_fingerprint(
            {(2,), "x", 1}
        )

    def test_set_elements_stay_structural(self):
        # Regression: the sorted element fingerprints themselves (not
        # their ``repr`` strings) must land in the set fingerprint, so no
        # two distinct fingerprints can be conflated by a shared repr.
        assert stable_fingerprint(frozenset({(1,)})) == (
            "set",
            (("tuple", (1,)),),
        )

    def test_sort_key_discriminates_types(self):
        # ``1`` and ``"1"`` (and heterogeneous leaves generally) must
        # order deterministically without ever comparing raw values.
        assert _sort_key(1) != _sort_key("1")
        ordered = sorted([("x",), 1, "1", None], key=_sort_key)
        assert sorted(ordered, key=_sort_key) == ordered

    def test_closures_fingerprint_by_captured_content(self):
        def capture(x):
            return lambda: x

        assert stable_fingerprint(capture(1)) == stable_fingerprint(capture(1))
        assert stable_fingerprint(capture(1)) != stable_fingerprint(capture(2))

    def test_default_args_fingerprint_like_cells(self):
        # The obligation idiom binds loop variables through defaults
        # (``lambda action=action: ...``), not closures: two same-shaped
        # lambdas over different defaults must not collide.
        def capture(x):
            return lambda v=x: v

        assert stable_fingerprint(capture(1)) == stable_fingerprint(capture(1))
        assert stable_fingerprint(capture(1)) != stable_fingerprint(capture(2))

        def kw_capture(x):
            return lambda *, v=x: v

        assert stable_fingerprint(kw_capture(3)) != stable_fingerprint(
            kw_capture(4)
        )

    def test_bound_methods_fingerprint_by_function_and_receiver(self):
        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def __repr__(self):
                return f"Probe({self.tag})"

            def run(self):
                return self.tag

        assert stable_fingerprint(Probe(1).run) == stable_fingerprint(
            Probe(1).run
        )
        assert stable_fingerprint(Probe(1).run) != stable_fingerprint(
            Probe(2).run
        )
        fp = stable_fingerprint(Probe(1).run)
        assert fp[0] == "method"

    def test_function_digest_stable_across_processes(self):
        # The cross-process half of the satellite: a closure with a
        # default-arg lambda inside must digest identically under
        # different hash seeds in fresh interpreters.
        import os
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        script = (
            "from repro.semantics.interp import stable_digest\n"
            "def capture(x):\n"
            "    inner = lambda v=x: v\n"
            "    return lambda: inner\n"
            "print(stable_digest(capture((1, 'x'))))\n"
        )
        runs = set()
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(root / "src")
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
                cwd=str(root),
            )
            runs.add(proc.stdout.strip())
        assert len(runs) == 1


class TestDedupeSoundness:
    def test_same_terminals_with_and_without_dedupe(self, world, conc):
        # On a finite, loop-free program the deduped exploration must find
        # exactly the same set of terminal outcomes as the full tree.
        def make_prog():
            action = BumpAction(conc)
            read = ReadCounterAction(conc)
            return par(act(action), bind(act(read), lambda v: ret(v)))

        outcomes = {}
        for dedupe in (True, False):
            result = explore(
                initial_config(world, counter_state(conc), make_prog()),
                max_steps=30,
                dedupe=dedupe,
            )
            assert result.ok
            outcomes[dedupe] = {
                (t.result, t.shared_signature()) for t in result.terminals
            }
        assert outcomes[True] == outcomes[False]

    def test_dedupe_converges_on_spin_loop(self, world, conc):
        # Without dedupe a spin loop truncates; with dedupe it converges.
        class NeverTrue(ReadCounterAction):
            def step(self, state, *args):
                return False, state

        action = NeverTrue(conc)
        spin = ffix(lambda loop: lambda: bind(act(action), lambda got: ret(1) if got else loop()))
        result = explore(
            initial_config(world, counter_state(conc), spin()), max_steps=500
        )
        assert result.explored < 10
        assert not result.violations

    def test_deeper_revisits_not_lost(self, world, conc):
        # A position reached first near the depth bound and later with more
        # remaining depth must be re-explored (the min-steps rule).
        action = BumpAction(conc)
        prog = par(act(action), seq(act(action), act(action)))
        shallow = explore(
            initial_config(world, counter_state(conc), prog), max_steps=3
        )
        assert shallow.ok
        assert shallow.terminals  # 3 actions fit exactly in 3 steps

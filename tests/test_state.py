"""Unit tests for subjective states and the label getters."""

import pytest

from repro.core.state import State, SubjState, state_of, subj
from repro.heap import EMPTY, pts, ptr


class TestSubjState:
    def test_transpose_swaps_self_other(self):
        s = subj(1, "j", 2)
        assert s.transpose() == subj(2, "j", 1)

    def test_transpose_involutive(self):
        s = subj(frozenset("a"), EMPTY, frozenset("b"))
        assert s.transpose().transpose() == s

    def test_with_updates(self):
        s = subj(1, 2, 3)
        assert s.with_self(9) == subj(9, 2, 3)
        assert s.with_joint(9) == subj(1, 9, 3)
        assert s.with_other(9) == subj(1, 2, 9)

    def test_repr(self):
        assert repr(subj(1, 2, 3)) == "[1 | 2 | 3]"


class TestState:
    def test_getters(self):
        s = state_of(a=subj(1, 2, 3))
        assert s.self_of("a") == 1
        assert s.joint_of("a") == 2
        assert s.other_of("a") == 3

    def test_missing_label_raises(self):
        with pytest.raises(KeyError):
            state_of(a=subj(1, 2, 3))["b"]

    def test_labels(self):
        s = state_of(a=subj(1, 2, 3), b=subj(4, 5, 6))
        assert s.labels() == {"a", "b"}

    def test_set_is_functional(self):
        s1 = state_of(a=subj(1, 2, 3))
        s2 = s1.set("a", subj(9, 2, 3))
        assert s1.self_of("a") == 1
        assert s2.self_of("a") == 9

    def test_update(self):
        s = state_of(a=subj(1, 2, 3)).update("a", lambda c: c.with_joint(0))
        assert s.joint_of("a") == 0

    def test_remove(self):
        s = state_of(a=subj(1, 2, 3), b=subj(4, 5, 6)).remove("a")
        assert s.labels() == {"b"}

    def test_restrict(self):
        s = state_of(a=subj(1, 2, 3), b=subj(4, 5, 6)).restrict({"a"})
        assert s.labels() == {"a"}

    def test_merge_disjoint(self):
        s = state_of(a=subj(1, 2, 3)).merge(state_of(b=subj(4, 5, 6)))
        assert s.labels() == {"a", "b"}

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            state_of(a=subj(1, 2, 3)).merge(state_of(a=subj(9, 9, 9)))

    def test_merge_agreeing_ok(self):
        s = state_of(a=subj(1, 2, 3)).merge(state_of(a=subj(1, 2, 3)))
        assert s.labels() == {"a"}

    def test_transpose_whole_state(self):
        s = state_of(a=subj(1, 2, 3), b=subj(4, 5, 6)).transpose()
        assert s.self_of("a") == 3
        assert s.other_of("b") == 4

    def test_hashable_and_eq(self):
        s1 = state_of(a=subj(1, EMPTY, 3))
        s2 = state_of(a=subj(1, EMPTY, 3))
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert len({s1, s2}) == 1

    def test_heap_components(self):
        h = pts(ptr(1), 10)
        s = state_of(pv=subj(h, EMPTY, EMPTY))
        assert s.self_of("pv")[ptr(1)] == 10

    def test_non_string_label_rejected(self):
        with pytest.raises(TypeError):
            State({1: subj(1, 2, 3)})  # type: ignore[dict-item]

    def test_non_subjstate_rejected(self):
        with pytest.raises(TypeError):
            State({"a": (1, 2, 3)})  # type: ignore[dict-item]

    def test_contains(self):
        s = state_of(a=subj(1, 2, 3))
        assert "a" in s
        assert "z" not in s

"""Tests for the linearizability checker and the history bridge."""

import random

import pytest

from repro.core import World
from repro.core.prog import par, seq
from repro.linearize import (
    ConcurrentHistory,
    HistoryRecorder,
    Operation,
    assert_linearizable,
    linearize,
    register_model,
    stack_model,
    tracked,
)
from repro.semantics import initial_config, run_random, run_deterministic
from repro.structures.treiber import TreiberStructure


def op(op_id, thread, name, arg, result, invoked, responded):
    return Operation(op_id, thread, name, arg, result, invoked, responded)


class TestChecker:
    def test_empty_history(self):
        assert linearize(ConcurrentHistory(), stack_model, ())

    def test_sequential_history(self):
        h = ConcurrentHistory([
            op(0, 1, "push", 5, None, 1, 2),
            op(1, 1, "pop", None, 5, 3, 4),
        ])
        result = linearize(h, stack_model, ())
        assert result
        assert [o.op for o in result.witness] == ["push", "pop"]

    def test_overlapping_ops_reorderable(self):
        # pop overlaps push and sees its value: must linearize push first.
        h = ConcurrentHistory([
            op(0, 1, "push", 5, None, 2, 5),
            op(1, 2, "pop", None, 5, 1, 6),
        ])
        assert linearize(h, stack_model, ())

    def test_real_time_order_enforced(self):
        # pop COMPLETED before push was invoked, yet saw its value: bogus.
        h = ConcurrentHistory([
            op(0, 2, "pop", None, 5, 1, 2),
            op(1, 1, "push", 5, None, 3, 4),
        ])
        assert not linearize(h, stack_model, ())

    def test_wrong_result_rejected(self):
        h = ConcurrentHistory([
            op(0, 1, "push", 5, None, 1, 2),
            op(1, 1, "pop", None, 99, 3, 4),
        ])
        assert not linearize(h, stack_model, ())

    def test_pop_empty_allowed_when_overlapping(self):
        h = ConcurrentHistory([
            op(0, 1, "push", 5, None, 1, 4),
            op(1, 2, "pop", None, None, 2, 3),  # linearized before the push
        ])
        assert linearize(h, stack_model, ())

    def test_register_model(self):
        h = ConcurrentHistory([
            op(0, 1, "write", 3, None, 1, 2),
            op(1, 2, "read", None, 3, 3, 4),
        ])
        assert linearize(h, register_model, 0)

    def test_assert_raises_on_violation(self):
        h = ConcurrentHistory([op(0, 1, "pop", None, 42, 1, 2)])
        with pytest.raises(AssertionError):
            assert_linearizable(h, stack_model, ())

    def test_lifo_vs_fifo_distinguished(self):
        # Sequential: push 1; push 2; pop -> a queue would return 1.
        h = ConcurrentHistory([
            op(0, 1, "push", 1, None, 1, 2),
            op(1, 1, "push", 2, None, 3, 4),
            op(2, 1, "pop", None, 1, 5, 6),
        ])
        assert not linearize(h, stack_model, ())


class TestRecorder:
    def test_records_intervals(self):
        rec = HistoryRecorder()
        a = rec.invoke(1, "push", 5)
        b = rec.invoke(2, "pop", None)
        rec.respond(a, None)
        rec.respond(b, 5)
        history = rec.history()
        ops = history.operations
        assert len(ops) == 2
        assert ops[0].overlaps(ops[1])

    def test_incomplete_history_rejected(self):
        rec = HistoryRecorder()
        rec.invoke(1, "push", 5)
        with pytest.raises(ValueError):
            rec.history()

    def test_well_nested_per_thread(self):
        rec = HistoryRecorder()
        a = rec.invoke(1, "push", 1)
        rec.respond(a, None)
        b = rec.invoke(1, "pop", None)
        rec.respond(b, 1)
        assert rec.history().sequential_orderings()


class TestTreiberLinearizability:
    def test_deterministic_run(self):
        ts = TreiberStructure(max_ops=4, pool=(101, 102))
        rec = HistoryRecorder()
        prog = seq(
            tracked(rec, 1, "push", 1, ts.push(1)),
            tracked(rec, 1, "pop", None, ts.pop()),
        )
        run_deterministic(initial_config(World((ts.concurroid,)), ts.initial_state(), prog))
        assert_linearizable(rec.history(), stack_model, ())

    def test_random_concurrent_runs(self):
        rng = random.Random(23)
        for __ in range(15):
            ts = TreiberStructure(max_ops=6, pool=(101, 102, 103))
            rec = HistoryRecorder()
            prog = par(
                par(
                    tracked(rec, 1, "push", 1, ts.push(1)),
                    tracked(rec, 2, "push", 2, ts.push(2)),
                ),
                par(
                    tracked(rec, 3, "pop", None, ts.pop()),
                    tracked(rec, 4, "pop", None, ts.pop()),
                ),
            )
            final, violations = run_random(
                initial_config(World((ts.concurroid,)), ts.initial_state(), prog),
                rng,
                max_steps=3000,
            )
            assert not violations and final is not None
            assert_linearizable(rec.history(), stack_model, ())

    def test_fc_stack_runs_are_linearizable(self):
        from repro.structures.fc_stack import FCStack

        rng = random.Random(31)
        for __ in range(10):
            stack = FCStack(max_ops=4)
            rec = HistoryRecorder()
            prog = par(
                tracked(rec, 1, "push", 1, stack.push(stack.slots[0], 1)),
                tracked(rec, 2, "pop", None, stack.pop(stack.slots[1])),
            )
            final, violations = run_random(
                initial_config(stack.world(), stack.initial_state(), prog),
                rng,
                max_steps=3000,
            )
            assert not violations and final is not None
            assert_linearizable(rec.history(), stack_model, ())

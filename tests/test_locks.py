"""Tests for the lock family: CAS-lock, ticketed lock, abstract interface."""

import pytest

from repro.core import World
from repro.core.concurroid import check_concurroid, protocol_closure
from repro.core.errors import CrashError
from repro.core.prog import par
from repro.core.spec import Scenario, Spec
from repro.core.verify import check_triple, triple_issues
from repro.heap import pts, ptr
from repro.pcm.mutex import Mutex
from repro.semantics import initial_config, run_deterministic
from repro.structures.locks.verify import (
    RES_CELL,
    bump_client,
    lock_initial_state,
    lock_world,
    make_counter_cas_lock,
    make_counter_ticketed_lock,
    verify_cas_lock,
    verify_ticketed_lock,
)


@pytest.fixture(params=["cas", "ticketed"])
def lock(request):
    if request.param == "cas":
        return make_counter_cas_lock()
    return make_counter_ticketed_lock()


class TestAbstractInterface:
    def test_initially_quiescent_and_unlocked(self, lock):
        s = lock_initial_state(lock)
        assert lock.quiescent(s)
        assert not lock.holds(s)
        assert not lock.locked(s)

    def test_resource_projection(self, lock):
        s = lock_initial_state(lock, 2, 3)
        assert lock.resource(s) == pts(RES_CELL, 5)

    def test_client_projections(self, lock):
        s = lock_initial_state(lock, 2, 3)
        assert lock.client_self(s) == 2
        assert lock.client_total(s) == 5

    def test_bump_client_runs(self, lock):
        world = lock_world(lock)
        cfg = initial_config(world, lock_initial_state(lock), bump_client(lock))
        final = run_deterministic(cfg)
        view = final.view_for(0)
        assert lock.client_self(view) == 1
        assert lock.resource(view)[RES_CELL] == 1
        assert lock.quiescent(view)

    def test_two_parallel_bumps(self, lock):
        world = lock_world(lock)
        prog = par(bump_client(lock), bump_client(lock))
        final = run_deterministic(initial_config(world, lock_initial_state(lock), prog))
        view = final.view_for(0)
        assert lock.client_self(view) == 2
        assert lock.resource(view)[RES_CELL] == 2


class TestCASLockProtocol:
    def test_acquire_sets_bit_and_mutex(self):
        lock = make_counter_cas_lock()
        s = lock_initial_state(lock)
        value, s2 = lock.try_acquire_action.step(s)
        assert value is True
        assert lock.holds(s2)
        assert lock.locked(s2)

    def test_acquire_fails_when_held(self):
        lock = make_counter_cas_lock()
        s = lock_initial_state(lock)
        __, s2 = lock.try_acquire_action.step(s)
        value, s3 = lock.try_acquire_action.step(s2)
        assert value is False
        assert s3 == s2

    def test_write_requires_lock(self):
        lock = make_counter_cas_lock()
        s = lock_initial_state(lock)
        assert not lock.write_action.safe(s, RES_CELL, 5)

    def test_release_requires_invariant(self):
        from repro.structures.locks.caslock import ReleaseAction

        lock = make_counter_cas_lock()
        s = lock_initial_state(lock)
        __, held = lock.try_acquire_action.step(s)
        # Releasing without bumping the cell but claiming +1 breaks the
        # invariant -> unsafe.
        bad = ReleaseAction(lock, lambda a: a + 1)
        assert not bad.safe(held)
        good = ReleaseAction(lock, lambda a: a)
        assert good.safe(held)

    def test_double_owner_is_incoherent(self):
        lock = make_counter_cas_lock()
        conc = lock.concurroid
        s = lock_initial_state(lock)
        both = s.update(
            conc.label,
            lambda c: c.with_self((Mutex.OWN, 0)).with_other((Mutex.OWN, 0)),
        )
        assert not conc.coherent(both)


class TestTicketedLockProtocol:
    def test_draw_assigns_increasing_tickets(self):
        lock = make_counter_ticketed_lock()
        s = lock_initial_state(lock)
        t0, s1 = lock.draw_action.step(s)
        t1, s2 = lock.draw_action.step(s1)
        assert (t0, t1) == (0, 1)

    def test_first_ticket_is_served_immediately(self):
        lock = make_counter_ticketed_lock()
        s = lock_initial_state(lock)
        __, s1 = lock.draw_action.step(s)
        assert lock.holds(s1)

    def test_queued_ticket_not_served(self):
        lock = make_counter_ticketed_lock()
        conc = lock.concurroid
        s = lock_initial_state(lock)
        __, s1 = lock.draw_action.step(s)
        # Transfer the first ticket to `other` (it belongs to someone else).
        comp = s1[conc.label]
        s_queued = s1.set(
            conc.label,
            comp.with_self((frozenset(), 0)).with_other((frozenset({0}), 0)),
        )
        ticket, s2 = lock.draw_action.step(s_queued)
        assert ticket == 1
        assert not lock.holds(s2)  # ticket 0 is still being served

    def test_not_holds_is_unstable_but_quiescent_is_stable(self):
        # The regression the checker originally caught: "not holds" breaks
        # when the environment releases and promotes my queued ticket.
        from repro.core.stability import check_stability

        lock = make_counter_ticketed_lock()
        conc = lock.concurroid
        states = sorted(
            protocol_closure(conc, [lock_initial_state(lock)], max_states=50_000),
            key=repr,
        )
        unstable = check_stability(
            lambda s: not lock.holds(s), "not holds", conc, states
        )
        assert unstable, "expected 'not holds' to be unstable for a ticketed lock"
        stable = check_stability(
            lambda s: lock.quiescent(s), "quiescent", conc, states
        )
        assert stable == []

    def test_draw_crashes_beyond_model_bound(self):
        lock = make_counter_ticketed_lock()
        s = lock_initial_state(lock)
        for __ in range(3):  # max_queue = 3
            assert lock.draw_action.safe(s)
            ___, s = lock.draw_action.step(s)
        assert not lock.draw_action.safe(s)


class TestLockVerifications:
    def test_cas_lock_verifies(self):
        report = verify_cas_lock()
        assert report.ok, report.pretty()

    @pytest.mark.slow
    def test_ticketed_lock_verifies(self):
        report = verify_ticketed_lock()
        assert report.ok, report.pretty()

    def test_mutual_exclusion_counterexample_detected(self):
        # A broken client that writes without acquiring must crash.
        lock = make_counter_cas_lock()
        world = lock_world(lock)
        spec = Spec("broken", lambda s: True, lambda r, s2, s1: True)
        from repro.core.prog import act

        outcomes = check_triple(
            world,
            spec,
            [Scenario(lock_initial_state(lock), act(lock.write_action, RES_CELL, 9))],
        )
        assert any("CrashError" in i for i in triple_issues(outcomes))

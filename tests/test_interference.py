"""Footprints and the conflict relation (repro.analysis.interference).

Two layers:

* **Golden footprints** — every registry action's observed footprint is
  swept for structural soundness invariants, and a stable subset is
  pinned exactly (which cells each action reads/writes, attributed to
  which concurroid label).  A footprint regression here means the POR
  oracle and the race rules are reasoning from wrong effect summaries.
* **Widening monotonicity** — the mutation test: coarsening a footprint
  (extra writes) may only *add* conflicts.  If widening could ever flip
  a may-not-commute pair to independent, every over-approximation in
  the analysis would be a soundness hole instead of a safe loss of
  precision.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.interference import action_footprint, footprints_conflict
from repro.analysis.targets import TARGET_BUILDERS, target_for
from repro.heap import ptr

#: Cap per-action family size: soundness invariants don't need the whole
#: model, and some registry families are large.
STATES_CAP = 200


def _registry_footprints():
    """(program, action-name, args, footprint) for every registry action."""
    out = []
    for name in sorted(TARGET_BUILDERS):
        target = target_for(name)
        states = target.states[:STATES_CAP]
        for action, args_family in target.actions:
            for args in args_family:
                fp, __ = action_footprint(action, tuple(args), states)
                out.append((name, fp.action, tuple(args), fp))
    return out


FOOTPRINTS = _registry_footprints()


@pytest.mark.parametrize(
    "program, action, args, fp",
    FOOTPRINTS,
    ids=[f"{p}/{a}{args!r}" for p, a, args, __ in FOOTPRINTS],
)
def test_registry_footprint_invariants(program, action, args, fp):
    # The guard can only read; whatever it reads the action reads.
    assert fp.guard_reads <= fp.reads
    # Attribution: every cell is (label, ptr) with a string label.
    for cell in fp.touched | fp.guard_reads:
        label, __ = cell
        assert isinstance(label, str)
    # A pure action (state observably unchanged on every run) wrote nothing.
    if fp.pure:
        assert not fp.writes
        assert not fp.self_touch
    # No observed run at all (the guard never passed) means an empty,
    # trivially-pure footprint — never fabricated effects.
    if fp.runs == 0:
        assert fp.pure and not fp.touched


def _golden(program: str, action: str, args: tuple):
    for p, a, ar, fp in FOOTPRINTS:
        if (p, a, ar) == (program, action, args):
            return fp
    raise AssertionError(f"no footprint for {program}/{action}{args!r}")


#: Exact expected read/write cells for a stable cross-section of the
#: registry: reader actions, writers, and the locks' RMW entry points.
GOLDEN = {
    # CAS-lock: try_acquire RMWs the lock bit p2; read/write touch p1 only.
    ("CAS-lock", "lk.try_acquire", ()): (
        {("lk", ptr(2))},
        {("lk", ptr(2))},
    ),
    ("CAS-lock", "lk.read", (ptr(1),)): ({("lk", ptr(1))}, set()),
    ("CAS-lock", "lk.write", (ptr(1), 0)): (set(), {("lk", ptr(1))}),
    # Ticketed lock: draw reads next+owner, bumps next.
    ("Ticketed lock", "lk.draw", ()): (
        {("lk", ptr(3)), ("lk", ptr(4))},
        {("lk", ptr(3))},
    ),
    ("Ticketed lock", "lk.read_owner", ()): ({("lk", ptr(4))}, set()),
    # Pair snapshot: readers touch one versioned cell each; a writer
    # reads both (version handshake) and writes its own.
    ("Pair snapshot", "rp.read_x", ()): ({("rp", ptr(1))}, set()),
    ("Pair snapshot", "rp.read_y", ()): ({("rp", ptr(2))}, set()),
    ("Pair snapshot", "rp.write_x", (1,)): (
        {("rp", ptr(1)), ("rp", ptr(2))},
        {("rp", ptr(1))},
    ),
    # Treiber: top reads are pure on p50.
    ("Treiber stack", "tb.read_top", ()): ({("tb", ptr(50))}, set()),
    # Spanning tree: trymark RMWs the node it marks.
    ("Spanning tree", "sp.trymark", (ptr(1),)): (
        {("sp", ptr(1))},
        {("sp", ptr(1))},
    ),
    # Flat combiner: both lock acquisitions are single-cell RMWs.
    ("Flat combiner", "fc.try_acquire_slot", (ptr(72),)): (
        {("fc", ptr(72))},
        {("fc", ptr(72))},
    ),
    ("Flat combiner", "fc.try_combine_lock", ()): (
        {("fc", ptr(70))},
        {("fc", ptr(70))},
    ),
}


@pytest.mark.parametrize(
    "key", sorted(GOLDEN, key=repr), ids=[f"{p}/{a}" for p, a, __ in sorted(GOLDEN, key=repr)]
)
def test_golden_footprints(key):
    program, action, args = key
    reads, writes = GOLDEN[key]
    fp = _golden(program, action, args)
    assert fp.runs > 0, "golden action never ran — family or guard changed"
    assert fp.reads == frozenset(reads)
    assert fp.writes == frozenset(writes)


def test_pure_readers_commute_writers_conflict():
    rx = _golden("Pair snapshot", "rp.read_x", ())
    ry = _golden("Pair snapshot", "rp.read_y", ())
    wx = _golden("Pair snapshot", "rp.write_x", (1,))
    # Two pure readers never conflict; a writer conflicts with a reader
    # of the same cell.
    assert not footprints_conflict(rx, ry)
    assert not footprints_conflict(rx, rx)
    assert footprints_conflict(wx, rx)
    assert footprints_conflict(wx, wx)


def test_widening_never_flips_conflict_to_independent():
    """The mutation test: for every pair of registry footprints, if the
    pair may-not-commute (conflicts), it still conflicts after widening
    either side with arbitrary extra writes."""
    pool = [fp for __, ___, ____, fp in FOOTPRINTS if fp.runs > 0]
    extra = (("mutant", ptr(999)),)
    checked = 0
    for fa, fb in itertools.combinations(pool, 2):
        conflict = footprints_conflict(fa, fb)
        wa = fa.widened(extra_writes=extra)
        wb = fb.widened(extra_writes=extra)
        if conflict:
            checked += 1
            assert footprints_conflict(wa, fb)
            assert footprints_conflict(fa, wb)
            assert footprints_conflict(wa, wb)
        # Widening with a cell the partner touches must create a
        # conflict (the relation is cell-membership driven, not name
        # driven).
        if fb.touched:
            cell = next(iter(fb.touched))
            assert footprints_conflict(fa.widened(extra_writes=(cell,)), fb)
    assert checked > 0, "no conflicting registry pair exercised the mutation"


def test_widened_is_strictly_coarser():
    fp = _golden("Pair snapshot", "rp.read_x", ())
    cell = ("rp", ptr(999))
    w = fp.widened(extra_writes=(cell,))
    assert cell in w.writes
    assert fp.writes <= w.writes
    assert not w.pure

"""Tests for fcsl-deps: definition indexing, cone walks, dep graphs.

The precision assertions here are the analysis's contract with
``verify --incremental``: editing one action's ``step`` must re-verify
that action's obligation and the triples that execute it, and nothing
else.  The soundness assertions are the other half: everything an
obligation genuinely executes (including code reached only through
function-local imports or eagerly-constructed helper objects) must be
*in* its cone.
"""

import importlib
import sys

import pytest

import repro.analysis.deps as deps_mod
from repro.analysis.deps import (
    TOPLEVEL,
    WHOLE_MODULE,
    DefIndex,
    Definition,
    DependencyCone,
    _ConeWalker,
    analyze_obligations,
    deps_registry,
)
from repro.core.verify import ReportBuilder
from repro.engine.depgraph import build_depgraph, depgraph_from_analysis
from repro.structures.registry import ProgramInfo, registry_programs

TICKETED_MODULE = "repro.structures.locks.ticketed"

SOURCE = """\
X = 1


def free(n):
    return n + X


class Box:
    LIMIT = 3

    def get(self):
        return self.value

    def put(self, v):
        self.value = v


Y = 2
"""


class TestDefIndex:
    def test_segments(self):
        index = DefIndex("probe", SOURCE)
        assert set(index.digests) == {
            "free",
            "Box",
            "Box.get",
            "Box.put",
            TOPLEVEL,
            WHOLE_MODULE,
        }

    def test_method_edit_is_isolated(self):
        before = DefIndex("probe", SOURCE)
        after = DefIndex("probe", SOURCE.replace("self.value = v", "self.value = v + 1"))
        changed = {k for k in before.digests if before.digests[k] != after.digests[k]}
        assert changed == {"Box.put", WHOLE_MODULE}

    def test_toplevel_edit_hits_residue_only(self):
        before = DefIndex("probe", SOURCE)
        after = DefIndex("probe", SOURCE.replace("Y = 2", "Y = 5"))
        changed = {k for k in before.digests if before.digests[k] != after.digests[k]}
        assert changed == {TOPLEVEL, WHOLE_MODULE}

    def test_class_constant_edit_hits_class_residue(self):
        before = DefIndex("probe", SOURCE)
        after = DefIndex("probe", SOURCE.replace("LIMIT = 3", "LIMIT = 4"))
        changed = {k for k in before.digests if before.digests[k] != after.digests[k]}
        assert changed == {"Box", WHOLE_MODULE}

    def test_resolve(self):
        index = DefIndex("probe", SOURCE)
        assert index.resolve("Box.get") == "Box.get"
        assert index.resolve("free") == "free"
        assert index.resolve("free.<locals>.inner") == "free"
        assert index.resolve("Box.get.<locals>.<lambda>") == "Box.get"
        assert index.resolve("<lambda>") == TOPLEVEL
        assert index.resolve("Nope.nothing") is None


# -- synthetic tracked modules for targeted walker behaviour -------------------

PROBE = """\
class Secret:
    def step(self):
        return "secret"


class SiblingA:
    def __init__(self, owner):
        self.owner = owner

    def step(self):
        return "A"


class SiblingB:
    def __init__(self, owner):
        self.owner = owner

    def step(self):
        return "B"


class Owner:
    def __init__(self):
        self._a = SiblingA(self)
        self._b = SiblingB(self)


class Holder:
    def __init__(self):
        self.hidden = Secret()


def use_a(owner):
    return owner._a.step()


def overwrite(holder):
    holder.hidden = None
    return 0


def reveal(holder):
    return holder.hidden.step()


def dynamic_entry(obj):
    return getattr(obj, "step")()
"""

HELPER = """\
def helper():
    return 99


def unused():
    return 0
"""

IMPORTER = """\
def entry():
    from {helper} import helper

    return helper()
"""


@pytest.fixture()
def probe(tmp_path, monkeypatch):
    """Import PROBE as a module treated as a tracked case study."""
    name = "deps_probe_mod"
    (tmp_path / f"{name}.py").write_text(PROBE, encoding="utf-8")
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setattr(deps_mod, "TRACKED_PREFIX", name)
    # Class-facts are memoized under the *real* prefix; give the
    # patched-prefix walks their own cache so neither side sees the
    # other's tracked/untracked verdicts.
    monkeypatch.setattr(deps_mod, "_CLASS_FACTS", {})
    module = importlib.import_module(name)
    yield module
    sys.modules.pop(name, None)


def _walk(fn):
    cone = DependencyCone(obligation="probe-ob", category="Main")
    _ConeWalker(cone, {}).run(fn)
    return cone


class TestConeWalker:
    def test_ctor_store_restriction_isolates_siblings(self, probe):
        # ``use_a`` loads ``_a`` and ``step``: SiblingA's methods join the
        # cone.  SiblingB is only constructed-and-stored by Owner's ctor
        # under the never-loaded attr ``_b`` — its step stays out.  (The
        # closure binds the function, not the module: capturing a whole
        # module object is a legitimate conservative whole-module edge.)
        use_a, owner = probe.use_a, probe.Owner()
        cone = _walk(lambda: use_a(owner))
        names = {d.name for d in cone.definitions if d.module == probe.__name__}
        assert "SiblingA.step" in names
        assert "Owner.__init__" in names
        assert "SiblingB.step" not in names

    def test_pure_store_does_not_unlock_expansion(self, probe):
        # ``overwrite`` only *writes* ``holder.hidden``; a store cannot
        # observe the stored object, so Secret stays restricted.
        overwrite, holder = probe.overwrite, probe.Holder()
        cone = _walk(lambda: overwrite(holder))
        names = {d.name for d in cone.definitions if d.module == probe.__name__}
        assert "Secret.step" not in names

    def test_load_unlocks_expansion(self, probe):
        reveal, holder = probe.reveal, probe.Holder()
        cone = _walk(lambda: reveal(holder))
        names = {d.name for d in cone.definitions if d.module == probe.__name__}
        assert "Secret.step" in names

    def test_dynamic_builtin_degrades_to_whole_module(self, probe):
        dynamic_entry, holder = probe.dynamic_entry, probe.Holder()
        cone = _walk(lambda: dynamic_entry(holder))
        assert Definition(probe.__name__, WHOLE_MODULE) in cone.definitions
        assert cone.dynamic

    def test_deps_opaque_instances_are_not_traversed(self, probe):
        # ``__deps_opaque__`` declares an instance to carry only derived
        # analysis facts (the ``StaticPrepass`` memo): the walker must
        # not pull its contents into cones.
        class Memo:
            __deps_opaque__ = True

            def __init__(self, fact):
                self.fact = fact

        class Plain:
            def __init__(self, fact):
                self.fact = fact

        secret = probe.Secret()
        opaque, plain = Memo(secret), Plain(secret)
        names = {
            d.name
            for d in _walk(lambda: plain.fact.step()).definitions
            if d.module == probe.__name__
        }
        assert "Secret.step" in names  # control: unmarked holder leaks
        names = {
            d.name
            for d in _walk(lambda: opaque.fact.step()).definitions
            if d.module == probe.__name__
        }
        assert "Secret.step" not in names

    def test_local_import_is_resolved(self, tmp_path, monkeypatch):
        # Function-local imports bind to locals, never ``__globals__`` —
        # the walker must still reach the imported member (this is how
        # triple obligations reach the interpreter and the action steps
        # their programs execute).
        helper_name = "deps_probe_import_helper"
        main_name = "deps_probe_import_main"
        (tmp_path / f"{helper_name}.py").write_text(HELPER, encoding="utf-8")
        (tmp_path / f"{main_name}.py").write_text(
            IMPORTER.format(helper=helper_name), encoding="utf-8"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setattr(deps_mod, "TRACKED_PREFIX", "deps_probe_import")
        try:
            helper_mod = importlib.import_module(helper_name)
            main_mod = importlib.import_module(main_name)
            cone = _walk(main_mod.entry)
            assert Definition(helper_name, "helper") in cone.definitions
            assert Definition(helper_name, "unused") not in cone.definitions
            assert helper_mod.helper() == 99
        finally:
            sys.modules.pop(helper_name, None)
            sys.modules.pop(main_name, None)


# -- registry-level precision and soundness ------------------------------------


@pytest.fixture(scope="module")
def ticketed_analysis():
    info = {i.name: i for i in registry_programs()}["Ticketed lock"]
    return info, analyze_obligations(info)


class TestRegistryCones:
    def test_usable_with_full_plan(self, ticketed_analysis):
        _, analysis = ticketed_analysis
        assert analysis.usable
        assert len(analysis.obligations) == 14
        assert not any(dep.cone.coarse for dep in analysis.obligations)

    def test_action_cone_has_exactly_its_own_step(self, ticketed_analysis):
        _, analysis = ticketed_analysis
        cone = analysis.cone_of("action-lk.draw")
        steps = {
            d.name
            for d in cone.definitions
            if d.module == TICKETED_MODULE and d.name.endswith(".step")
        }
        assert steps == {"DrawTicketAction.step"}

    def test_triple_cone_contains_executed_steps(self, ticketed_analysis):
        # Soundness: the triples run programs through the interpreter
        # (reached via local imports), so every executed action's step is
        # a dependency.
        _, analysis = ticketed_analysis
        cone = analysis.cone_of("bump-triple")
        steps = {
            d.name
            for d in cone.definitions
            if d.module == TICKETED_MODULE and d.name.endswith(".step")
        }
        assert {
            "DrawTicketAction.step",
            "ReadOwnerAction.step",
            "TicketReadResAction.step",
            "TicketWriteResAction.step",
            "TicketReleaseAction.step",
        } <= steps

    def test_affected_by_step_edit_is_the_cone(self, ticketed_analysis):
        _, analysis = ticketed_analysis
        affected = analysis.affected_by(TICKETED_MODULE, "TicketWriteResAction.step")
        assert affected == {
            "action-lk.write",
            "bump-triple",
            "mutual-exclusion-par-triple",
        }
        # The bench target: a one-action edit re-verifies <= 25% of the
        # ticketed-lock obligations.
        assert len(affected) / len(analysis.obligations) <= 0.25

    @pytest.mark.slow
    def test_fingerprints_independent_of_sibling_runs(self):
        # A sweep shares one StaticPrepass across its programs; its memo
        # pins sibling concurroids.  Ticketed's stability obligations
        # reach the prepass global, so without the ``__deps_opaque__``
        # cut their fingerprints depend on which siblings ran first in
        # the process (CAS-lock first used to add six CASLockConcurroid
        # definitions to every Stab cone) — spurious staleness on the
        # next incremental diff.
        from repro.analysis.prepass import static_prepass
        from repro.core.verify import collecting_obligations

        progs = {i.name: i for i in registry_programs()}
        info, sibling = progs["Ticketed lock"], progs["CAS-lock"]

        def fingerprints(run_sibling: bool):
            with static_prepass():
                if run_sibling:
                    sibling.run_verifier()
                with collecting_obligations(execute=True) as col:
                    info.run_verifier()
                graph = build_depgraph(info, plan=list(col))
            assert graph is not None
            return graph.fingerprints

        assert fingerprints(False) == fingerprints(True)


# -- unusable analyses and their diagnostics -----------------------------------


def _dup_verifier():
    builder = ReportBuilder("Dup")
    builder.obligation("same-name", "Libs", lambda: [])
    builder.obligation("same-name", "Libs", lambda: [])
    return builder.build()


def _crashing_verifier():
    raise RuntimeError("no obligations today")


def _fake_info(name, verifier):
    return ProgramInfo(
        name=name, concurroids={}, modules=(), verifier=verifier
    )


class TestUnusableAnalyses:
    def test_duplicate_obligation_names(self):
        analysis = analyze_obligations(_fake_info("Dup", _dup_verifier))
        assert analysis.duplicates == ("same-name",)
        assert not analysis.usable
        codes = [d.code for d in analysis.diagnostics()]
        assert "FCSL065" in codes
        info = _fake_info("Dup", _dup_verifier)
        assert depgraph_from_analysis(info, analysis) is None

    def test_collection_failure(self):
        analysis = analyze_obligations(_fake_info("Boom", _crashing_verifier))
        assert analysis.collection_failed
        assert not analysis.usable
        codes = [d.code for d in analysis.diagnostics()]
        assert codes == ["FCSL066"]

    def test_deps_registry_rejects_unknown_program(self):
        with pytest.raises(KeyError, match="unknown registry program"):
            deps_registry(["No such program"])


# -- the dep graph -------------------------------------------------------------


class TestDepGraph:
    def test_fingerprints_cover_every_obligation(self, ticketed_analysis):
        info, analysis = ticketed_analysis
        graph = depgraph_from_analysis(info, analysis)
        assert graph is not None
        assert set(graph.fingerprints) == {d.name for d in analysis.obligations}
        assert not graph.coarse

    def test_stale_obligations(self, ticketed_analysis):
        info, analysis = ticketed_analysis
        graph = depgraph_from_analysis(info, analysis)
        assert graph.stale_obligations(dict(graph.fingerprints)) == set()
        assert graph.stale_obligations({}) == set(graph.fingerprints)
        mutated = dict(graph.fingerprints)
        mutated["action-lk.draw"] = "0" * 64
        assert graph.stale_obligations(mutated) == {"action-lk.draw"}

    def test_serialization(self, ticketed_analysis):
        info, analysis = ticketed_analysis
        graph = depgraph_from_analysis(info, analysis)
        data = graph.to_dict()
        assert data["program"] == info.name
        assert set(data["obligations"]) == set(graph.fingerprints)
        for entry in data["obligations"].values():
            assert entry["fingerprint"]
            assert entry["definitions"] or entry["coarse"]
        dot = graph.to_dot()
        assert '"ob:action-lk.draw"' in dot
        assert "digraph deps" in dot

    def test_build_depgraph_unusable_returns_none(self):
        assert build_depgraph(_fake_info("Dup", _dup_verifier)) is None

"""Tests of schedule exploration: exhaustiveness, interference, stutters."""

import random

import pytest

from repro.core.prog import act, bind, par, ret, ffix
from repro.core.spec import Scenario, Spec
from repro.core.verify import check_triple, triple_issues
from repro.core.world import World
from repro.semantics.explore import explore, run_random
from repro.semantics.interp import initial_config

from .helpers import BumpAction, CELL, CounterConcurroid, ReadCounterAction, counter_state


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=10)


@pytest.fixture()
def world(conc):
    return World((conc,))


class TestExhaustive:
    def test_all_interleavings_reach_same_total(self, world, conc):
        prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
        result = explore(initial_config(world, counter_state(conc), prog))
        assert result.ok
        assert result.terminals
        for terminal in result.terminals:
            assert terminal.joints[conc.label][CELL] == 2

    def test_interleavings_produce_different_reads(self, world, conc):
        prog = par(act(BumpAction(conc)), act(ReadCounterAction(conc)))
        result = explore(initial_config(world, counter_state(conc), prog))
        reads = {terminal.result[1] for terminal in result.terminals}
        assert reads == {0, 1}  # read before and after the sibling bump

    def test_env_interference_explored(self, world, conc):
        prog = act(ReadCounterAction(conc))
        result = explore(
            initial_config(world, counter_state(conc), prog), env_budget=2
        )
        reads = {t.result for t in result.terminals}
        assert reads == {0, 1, 2}  # env may bump 0, 1 or 2 times first

    def test_env_budget_zero_means_no_interference(self, world, conc):
        prog = act(ReadCounterAction(conc))
        result = explore(initial_config(world, counter_state(conc), prog))
        assert {t.result for t in result.terminals} == {0}

    def test_max_configs_guard(self, world, conc):
        prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
        result = explore(
            initial_config(world, counter_state(conc), prog), max_configs=2
        )
        assert any(v.kind == "resource" for v in result.violations)

    def test_truncation_counts_unfinished_paths(self, world, conc):
        prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
        result = explore(
            initial_config(world, counter_state(conc), prog), max_steps=1
        )
        assert result.truncated > 0
        assert not result.terminals

    def test_spin_loops_converge(self, conc):
        # A thread spinning on an always-failing CAS-like action must not
        # blow up the exploration: the retry reproduces its own position
        # key and the memoization closes the loop.
        class FailingTry(ReadCounterAction):
            def step(self, state, *args):
                return False, state

        failing = FailingTry(conc)
        spin = ffix(
            lambda loop: lambda: bind(act(failing), lambda got: ret(1) if got else loop())
        )
        world = World((conc,))
        result = explore(
            initial_config(world, counter_state(conc), spin()), max_steps=50
        )
        assert result.explored < 5  # the loop has one repeating position
        assert not result.terminals  # it genuinely never finishes
        assert not result.violations

    def test_max_configs_counts_exactly(self, world, conc):
        # Regression (off-by-one): the guard used to fire only *after*
        # expanding a (max_configs+1)-th configuration.
        prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
        full = explore(initial_config(world, counter_state(conc), prog))
        total = full.explored
        assert total > 2

        # A budget exactly covering the search space is not a violation...
        exact = explore(
            initial_config(world, counter_state(conc), prog), max_configs=total
        )
        assert exact.ok
        assert exact.explored == total

        # ...one short of it is, and never explores past the bound.
        short = explore(
            initial_config(world, counter_state(conc), prog),
            max_configs=total - 1,
        )
        assert any(v.kind == "resource" for v in short.violations)
        assert short.explored == total - 1

    def test_domination_dedupe_equivalent_and_never_worse(self, world, conc):
        # On the toy counter every env move changes the shared cell, so a
        # position is never revisited at a different env_used and both
        # dedupe modes explore the same graph — domination must agree
        # exactly here (the strict shrink is exercised on the CAS-lock
        # case study below, whose env can return to a prior position).
        prog = par(act(BumpAction(conc)), act(ReadCounterAction(conc)))

        def run(domination):
            return explore(
                initial_config(world, counter_state(conc), prog),
                env_budget=2,
                domination=domination,
            )

        exact, dominated = run(False), run(True)
        assert dominated.explored <= exact.explored
        assert exact.ok and dominated.ok
        assert {t.result for t in dominated.terminals} == {
            t.result for t in exact.terminals
        }

    def test_repeated_identical_actions_terminate(self, conc):
        # Regression (found by hypothesis): two *occurrences* of the same
        # pure action in sequence must still reach the terminal — an
        # earlier stutter-blocking heuristic wrongly suppressed this.
        read = ReadCounterAction(conc)
        prog = bind(act(read), lambda a: bind(act(read), lambda b: ret((a, b))))
        world = World((conc,))
        result = explore(initial_config(world, counter_state(conc), prog))
        assert result.ok
        assert [t.result for t in result.terminals] == [(0, 0)]


class TestFrontierPeak:
    def test_frontier_peak_tracked_on_small_explorations(self, world, conc):
        # Regression: the peak was sampled every 256 expansions, so every
        # small exploration reported 0.  It is now tracked on each push.
        prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
        result = explore(initial_config(world, counter_state(conc), prog))
        assert result.frontier_peak >= 2  # both threads runnable at the root

    def test_single_thread_still_nonzero(self, world, conc):
        result = explore(
            initial_config(world, counter_state(conc), act(BumpAction(conc)))
        )
        assert result.frontier_peak > 0


class TestCompaction:
    def _prog(self, conc):
        return par(act(BumpAction(conc)), act(ReadCounterAction(conc)))

    def _run(self, world, conc, **kwargs):
        seen, anchors = {}, []
        result = explore(
            initial_config(world, counter_state(conc), self._prog(conc)),
            _seen=seen,
            _anchors=anchors,
            **kwargs,
        )
        return result, seen, anchors

    def test_compact_memo_stores_no_configs(self, world, conc):
        # Regression: the memo used to pin every visited Config (and its
        # trace).  Compact visits keep only (env_used, steps, None) and
        # anchor the thread records so fingerprint ids stay valid.
        result, seen, anchors = self._run(world, conc)
        assert result.ok
        assert seen and anchors
        assert all(cfg is None for visits in seen.values() for __, __, cfg in visits)

    def test_liveness_keeps_configs_for_lassos(self, world, conc):
        # The lasso detector compares trace prefixes at revisits, so
        # liveness mode must still store the visited configurations.
        __, seen, __ = self._run(world, conc, liveness=True)
        stored = [cfg for visits in seen.values() for __, __, cfg in visits]
        assert stored and all(cfg is not None for cfg in stored)

    def test_compact_off_restores_pinning(self, world, conc):
        __, seen, __ = self._run(world, conc, compact=False)
        stored = [cfg for visits in seen.values() for __, __, cfg in visits]
        assert stored and all(cfg is not None for cfg in stored)

    def test_compact_equivalent_to_uncompacted(self, world, conc):
        compacted, __, __ = self._run(world, conc)
        pinned, __, __ = self._run(world, conc, compact=False)
        assert compacted.explored == pinned.explored
        assert {repr(t.result) for t in compacted.terminals} == {
            repr(t.result) for t in pinned.terminals
        }

    def test_interning_shares_key_sections(self):
        from repro.semantics.explore import _intern

        table: dict = {}
        one = _intern((("a", (1, 2)), ("b", (3,))), table)
        two = _intern((("a", (1, 2)), ("c", (4,))), table)
        assert one[0] is two[0]  # the shared section is one object


class TestSymmetry:
    def test_mirror_configurations_merge(self, world, conc):
        # Two threads running the *same* program (one shared action — the
        # semantics compares actions by identity) are interchangeable, so
        # the canonical memo merges each configuration with its mirror.
        action = BumpAction(conc)
        prog = par(act(action), act(action))
        base = explore(initial_config(world, counter_state(conc), prog))
        reduced = explore(
            initial_config(world, counter_state(conc), prog), symmetry=True
        )
        assert reduced.symmetry_active
        assert reduced.explored < base.explored
        assert not reduced.violations
        assert {t.joints[conc.label][CELL] for t in reduced.terminals} == {
            t.joints[conc.label][CELL] for t in base.terminals
        }

    def test_asymmetric_threads_unaffected(self, world, conc):
        # Distinct sibling programs never collide under canonicalization:
        # the key sorts subtrees but keeps their full per-thread records.
        prog = par(act(BumpAction(conc)), act(ReadCounterAction(conc)))
        base = explore(initial_config(world, counter_state(conc), prog))
        reduced = explore(
            initial_config(world, counter_state(conc), prog), symmetry=True
        )
        assert reduced.explored == base.explored
        assert {repr(t.result) for t in reduced.terminals} == {
            repr(t.result) for t in base.terminals
        }


class TestDominationOnCaseStudy:
    """The dedupe fix must pay off on real registry machinery."""

    def test_cas_lock_explores_fewer_configs_same_verdict(self):
        from repro.structures.locks.verify import (
            bump_client,
            lock_initial_state,
            lock_world,
            make_counter_cas_lock,
        )

        lock = make_counter_cas_lock()
        world = lock_world(lock)
        spec = Spec(
            "par-bump",
            pre=lambda s: lock.quiescent(s),
            post=lambda r, s2, s1: (
                lock.quiescent(s2)
                and lock.client_self(s2) == lock.client_self(s1) + 2
            ),
        )
        scenarios = [
            Scenario(
                lock_initial_state(lock, 0, 0),
                par(bump_client(lock), bump_client(lock)),
                label="par-bump",
            )
        ]

        def run(domination):
            return check_triple(
                world,
                spec,
                scenarios,
                max_steps=60,
                env_budget=2,
                domination=domination,
            )

        exact, dominated = run(False), run(True)
        assert sum(o.explored for o in dominated) < sum(o.explored for o in exact)
        assert not triple_issues(exact)
        assert not triple_issues(dominated)


class TestCheckTriple:
    def _spec(self, conc, expect_total):
        return Spec(
            "totals",
            pre=lambda s: True,
            post=lambda r, s2, s1: s2.joint_of(conc.label)[CELL] == expect_total,
        )

    def test_passing_triple(self, world, conc):
        prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
        outcomes = check_triple(
            world,
            self._spec(conc, 2),
            [Scenario(counter_state(conc), prog)],
        )
        assert not triple_issues(outcomes)
        assert outcomes[0].terminals > 0

    def test_failing_postcondition_reported(self, world, conc):
        prog = act(BumpAction(conc))
        outcomes = check_triple(
            world,
            self._spec(conc, 5),
            [Scenario(counter_state(conc), prog)],
        )
        issues = triple_issues(outcomes)
        assert issues
        assert "postcondition" in issues[0]

    def test_failing_precondition_reported(self, world, conc):
        spec = Spec("never", pre=lambda s: False, post=lambda r, s2, s1: True)
        outcomes = check_triple(world, spec, [Scenario(counter_state(conc), ret(None))])
        assert "precondition" in triple_issues(outcomes)[0]

    def test_crash_reported(self, conc):
        tiny = CounterConcurroid(cap=0)
        world = World((tiny,))
        spec = Spec("any", pre=lambda s: True, post=lambda r, s2, s1: True)
        outcomes = check_triple(
            world, spec, [Scenario(counter_state(tiny), act(BumpAction(tiny)))]
        )
        assert any("CrashError" in i for i in triple_issues(outcomes))


class TestRandom:
    def test_random_run_terminates(self, world, conc):
        prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
        final, violations = run_random(
            initial_config(world, counter_state(conc), prog), random.Random(3)
        )
        assert not violations
        assert final is not None
        assert final.joints[conc.label][CELL] == 2

    def test_random_with_interference(self, world, conc):
        prog = act(ReadCounterAction(conc))
        seen = set()
        rng = random.Random(0)
        for __ in range(30):
            final, violations = run_random(
                initial_config(world, counter_state(conc), prog),
                rng,
                env_prob=0.5,
                env_budget=2,
            )
            assert not violations
            seen.add(final.result)
        assert 0 in seen and len(seen) > 1

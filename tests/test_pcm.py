"""Unit tests for the PCM catalogue and its laws."""

import pytest

from repro.heap import EMPTY, pts, ptr
from repro.pcm import (
    EMPTY_HISTORY,
    LIFT_UNIT,
    NOT_OWN,
    OWN,
    UNDEF,
    HeapPCM,
    HistEntry,
    History,
    HistoryPCM,
    LiftPCM,
    Mutex,
    MutexPCM,
    NatPCM,
    ProductPCM,
    SetPCM,
    Undef,
    UnitPCM,
    assert_pcm_laws,
    check_all_laws,
    exclusive_pcm,
    hist,
    singleton,
)

ALL_PCMS = [
    UnitPCM(),
    NatPCM(),
    SetPCM(),
    SetPCM(universe=("x", "y")),
    HeapPCM(),
    MutexPCM(),
    HistoryPCM(),
    ProductPCM(MutexPCM(), NatPCM(sample_bound=3)),
    exclusive_pcm(),
    LiftPCM(op=lambda a, b: a + b, raw_sample=(1, 2), name="lift-sum"),
]


@pytest.mark.parametrize("pcm", ALL_PCMS, ids=lambda p: p.name)
def test_pcm_laws_hold(pcm):
    assert_pcm_laws(pcm)


class TestUndef:
    def test_undef_equality_ignores_reason(self):
        assert Undef("a") == Undef("b")
        assert hash(Undef("a")) == hash(Undef("b"))

    def test_undef_repr_carries_reason(self):
        assert "because" in repr(Undef("because"))


class TestNatPCM:
    def test_join_is_addition(self):
        assert NatPCM().join(2, 3) == 5

    def test_unit_is_zero(self):
        assert NatPCM().unit == 0

    def test_negative_invalid(self):
        assert not NatPCM().valid(-1)

    def test_bool_is_not_nat(self):
        assert not NatPCM().valid(True)

    def test_join_with_undef(self):
        assert NatPCM().join(UNDEF, 1) == UNDEF

    def test_sample_bound_validation(self):
        with pytest.raises(ValueError):
            NatPCM(sample_bound=0)


class TestSetPCM:
    def test_disjoint_union(self):
        pcm = SetPCM()
        assert pcm.join(frozenset("a"), frozenset("b")) == frozenset("ab")

    def test_overlap_undefined(self):
        pcm = SetPCM()
        assert not pcm.valid(pcm.join(frozenset("a"), frozenset("a")))

    def test_universe_restricts_validity(self):
        pcm = SetPCM(universe=("x",))
        assert pcm.valid(frozenset("x"))
        assert not pcm.valid(frozenset("z"))

    def test_singleton_helper(self):
        assert singleton(3) == frozenset((3,))

    def test_join_all(self):
        pcm = SetPCM()
        assert pcm.join_all([frozenset("a"), frozenset("b")]) == frozenset("ab")


class TestHeapPCM:
    def test_join_disjoint(self):
        pcm = HeapPCM()
        joined = pcm.join(pts(ptr(1), 0), pts(ptr(2), 0))
        assert pcm.valid(joined)

    def test_join_overlap_invalid(self):
        pcm = HeapPCM()
        assert not pcm.valid(pcm.join(pts(ptr(1), 0), pts(ptr(1), 1)))

    def test_unit_is_empty_heap(self):
        assert HeapPCM().unit == EMPTY

    def test_non_heap_invalid(self):
        assert not HeapPCM().valid(42)


class TestMutexPCM:
    def test_two_owners_undefined(self):
        pcm = MutexPCM()
        assert not pcm.valid(pcm.join(OWN, OWN))

    def test_own_dominates(self):
        pcm = MutexPCM()
        assert pcm.join(OWN, NOT_OWN) is Mutex.OWN

    def test_unit_not_own(self):
        assert MutexPCM().unit is NOT_OWN


class TestHistoryPCM:
    def test_disjoint_timestamps_join(self):
        pcm = HistoryPCM()
        h = pcm.join(hist((1, "a", "b")), hist((2, "b", "c")))
        assert isinstance(h, History)
        assert h.timestamps() == {1, 2}

    def test_timestamp_collision_undefined(self):
        pcm = HistoryPCM()
        joined = pcm.join(hist((1, "a", "b")), hist((1, "a", "c")))
        assert not pcm.valid(joined)

    def test_extend_rejects_reuse(self):
        with pytest.raises(ValueError):
            hist((1, "a", "b")).extend(1, HistEntry("a", "c"))

    def test_continuity(self):
        h = hist((1, "s0", "s1"), (2, "s1", "s2"))
        assert h.continuous_from("s0")
        assert not h.continuous_from("s1")

    def test_gap_breaks_continuity(self):
        assert not hist((2, "s0", "s1")).continuous_from("s0")

    def test_mismatched_chain_breaks_continuity(self):
        assert not hist((1, "s0", "s1"), (2, "sX", "s2")).continuous_from("s0")

    def test_final_state(self):
        assert hist((1, "s0", "s1"), (2, "s1", "s2")).final_state("s0") == "s2"

    def test_last_timestamp(self):
        assert EMPTY_HISTORY.last_timestamp() == 0
        assert hist((3, "a", "b")).last_timestamp() == 3

    def test_bad_timestamp_rejected(self):
        with pytest.raises(ValueError):
            History({0: HistEntry("a", "b")})

    def test_bad_entry_rejected(self):
        with pytest.raises(TypeError):
            History({1: "not-an-entry"})  # type: ignore[dict-item]

    def test_iteration_sorted(self):
        h = hist((2, "b", "c"), (1, "a", "b"))
        assert list(h) == [1, 2]


class TestProductPCM:
    def test_componentwise_join(self):
        pcm = ProductPCM(NatPCM(), NatPCM())
        assert pcm.join((1, 2), (3, 4)) == (4, 6)

    def test_invalid_component_propagates(self):
        pcm = ProductPCM(MutexPCM(), NatPCM())
        assert not pcm.valid(pcm.join((OWN, 0), (OWN, 0)))

    def test_inject_project(self):
        pcm = ProductPCM(MutexPCM(), NatPCM())
        elem = pcm.inject(1, 7)
        assert elem == (NOT_OWN, 7)
        assert pcm.project(elem, 1) == 7

    def test_arity_mismatch_invalid(self):
        pcm = ProductPCM(NatPCM(), NatPCM())
        assert not pcm.valid((1,))

    def test_requires_components(self):
        with pytest.raises(ValueError):
            ProductPCM()


class TestLiftPCM:
    def test_exclusive_never_joins(self):
        pcm = exclusive_pcm()
        assert not pcm.valid(pcm.join(pcm.up(1), pcm.up(2)))

    def test_unit_joins(self):
        pcm = exclusive_pcm()
        assert pcm.join(LIFT_UNIT, pcm.up(5)) == pcm.up(5)

    def test_semigroup_lift(self):
        pcm = LiftPCM(op=lambda a, b: a + b, raw_sample=(1, 2))
        assert pcm.join(pcm.up(1), pcm.up(2)) == pcm.up(3)

    def test_down_projects(self):
        pcm = exclusive_pcm()
        assert pcm.down(pcm.up("v")) == "v"

    def test_down_of_unit_raises(self):
        with pytest.raises(ValueError):
            exclusive_pcm().down(LIFT_UNIT)


class TestLawChecker:
    def test_broken_pcm_is_caught(self):
        class BrokenPCM(NatPCM):
            name = "broken"

            def join(self, a, b):
                if a == 1 and b == 2:
                    return 99  # not commutative
                return super().join(a, b)

        violations = check_all_laws(BrokenPCM())
        assert violations
        assert any(v.law == "commutativity" for v in violations)

    def test_invalid_unit_is_caught(self):
        class NoUnitPCM(NatPCM):
            name = "no-unit"

            def valid(self, x):
                return super().valid(x) and x != 0

        assert any(v.law == "unit-valid" for v in check_all_laws(NoUnitPCM()))

    def test_assert_raises_with_details(self):
        class BadPCM(NatPCM):
            name = "bad-assoc"

            def join(self, a, b):
                total = super().join(a, b)
                if total == 4:
                    return 5
                return total

        with pytest.raises(AssertionError):
            assert_pcm_laws(BadPCM())

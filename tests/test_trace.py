"""Unit tests for traces and events."""

from repro.core import World
from repro.core.prog import act, par, ret, seq
from repro.semantics import initial_config, run_deterministic
from repro.semantics.trace import Event, Trace

from .helpers import BumpAction, CounterConcurroid, counter_state


class TestEvent:
    def test_act_str(self):
        e = Event("act", 3, "ct.bump", (1,), True)
        assert str(e) == "t3: ct.bump(1) = True"

    def test_env_str(self):
        assert str(Event("env", -1, "ct.bump(None)")) == "env: ct.bump(None)"

    def test_crash_str(self):
        e = Event("crash", 2, "lk.release", (True,))
        assert str(e) == "t2: lk.release(True) CRASHED"

    def test_other_kinds(self):
        assert "fork" in str(Event("fork", 0, "-> t1, t2"))

    def test_events_are_frozen_and_comparable(self):
        a = Event("act", 0, "x", (1,), 2)
        b = Event("act", 0, "x", (1,), 2)
        assert a == b
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            a.tid = 1


class TestTrace:
    def test_append_is_persistent(self):
        t0 = Trace()
        t1 = t0.append(Event("act", 0, "x"))
        assert len(t0) == 0
        assert len(t1) == 1

    def test_append_preserves_order(self):
        t = Trace()
        for i in range(5):
            t = t.append(Event("act", i, f"a{i}"))
        assert [e.detail for e in t] == ["a0", "a1", "a2", "a3", "a4"]

    def test_iteration_yields_events(self):
        t = Trace().append(Event("fork", 0, "")).append(Event("act", 1, "a"))
        events = list(t)
        assert len(events) == 2
        assert all(isinstance(e, Event) for e in events)
        # iteration is repeatable (backed by a tuple, not a generator)
        assert list(t) == events

    def test_empty_trace(self):
        t = Trace()
        assert len(t) == 0
        assert list(t) == []
        assert t.actions() == []
        assert t.pretty() == ""

    def test_actions_filter(self):
        t = Trace().append(Event("fork", 0, "")).append(Event("act", 0, "a"))
        assert len(t.actions()) == 1

    def test_actions_excludes_crash_and_env(self):
        t = (
            Trace()
            .append(Event("act", 0, "a"))
            .append(Event("env", -1, "bump(None)"))
            .append(Event("crash", 1, "b"))
        )
        assert [e.detail for e in t.actions()] == ["a"]

    def test_pretty(self):
        t = Trace().append(Event("act", 0, "ct.bump", (), 0))
        assert "ct.bump" in t.pretty()

    def test_pretty_one_line_per_event(self):
        t = Trace().append(Event("act", 0, "a")).append(Event("done", 0, ""))
        assert len(t.pretty().splitlines()) == 2


class TestRecordedTraces:
    def test_full_program_trace_structure(self):
        conc = CounterConcurroid(cap=10)
        world = World((conc,))
        prog = par(act(BumpAction(conc)), seq(act(BumpAction(conc)), ret("x")))
        final = run_deterministic(initial_config(world, counter_state(conc), prog))
        kinds = [e.kind for e in final.trace]
        assert kinds.count("fork") == 1
        assert kinds.count("join") == 1
        assert kinds.count("act") == 2
        assert kinds[-1] == "done"

    def test_trace_disabled(self):
        conc = CounterConcurroid(cap=10)
        world = World((conc,))
        config = initial_config(
            world, counter_state(conc), act(BumpAction(conc)), record_trace=False
        )
        final = run_deterministic(config)
        assert final.trace is None

"""Adequacy of the action-tree denotational semantics (§5.1).

The tree evaluator is an independent implementation of the concurrency
semantics; these tests check it agrees with the operational interpreter
on every schedule — including hypothesis-generated random programs.
"""

import pytest

from hypothesis import given, settings

from repro.core import World
from repro.core.prog import act, bind, ffix, par, ret, seq
from repro.semantics import explore, initial_config
from repro.semantics.trees import (
    TAct,
    TPar,
    TRet,
    UNFINISHED,
    Unfinished,
    denote,
    graft,
    tree_outcomes,
)

from .helpers import BumpAction, CounterConcurroid, ReadCounterAction, counter_state
from .test_random_programs import prog_specs


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=12)


@pytest.fixture()
def world(conc):
    return World((conc,))


class TestDenotation:
    def test_ret(self):
        tree = denote(ret(5))
        assert isinstance(tree, TRet) and tree.value == 5

    def test_bind_grafts(self, conc):
        tree = denote(bind(act(BumpAction(conc)), lambda v: ret(v + 1)))
        assert isinstance(tree, TAct)
        inner = tree.kont(7)
        assert isinstance(inner, TRet) and inner.value == 8

    def test_par_node(self, conc):
        tree = denote(par(ret(1), ret(2)))
        assert isinstance(tree, TPar)
        assert tree.kont((1, 2)).value == (1, 2)

    def test_depth_cut(self, conc):
        action = ReadCounterAction(conc)
        spin = ffix(lambda loop: lambda: bind(act(action), lambda __: loop()))
        tree = denote(spin(), depth=3)
        # Follow the spine: after three unfoldings we must hit the cut.
        cursor = tree
        depth = 0
        while isinstance(cursor, TAct):
            cursor = cursor.kont(0)
            depth += 1
        assert isinstance(cursor, Unfinished)
        assert depth == 3

    def test_graft_on_unfinished_stays_cut(self):
        assert graft(UNFINISHED, lambda v: ret(v)) is UNFINISHED

    def test_loop_free_program_denotes_totally(self, conc):
        prog = seq(act(BumpAction(conc)), act(BumpAction(conc)), ret("end"))
        tree = denote(prog, depth=1)
        cursor = tree
        while isinstance(cursor, TAct):
            cursor = cursor.kont(None)
        assert isinstance(cursor, TRet) and cursor.value == "end"


def _interp_outcomes(world, init, prog):
    result = explore(initial_config(world, init, prog), max_steps=200)
    assert result.ok, [str(v) for v in result.violations][:2]
    out = set()
    for t in result.terminals:
        out.add(
            (
                t.result,
                tuple(sorted(t.joints.items())),
                tuple(sorted(t.env_selfs.items())),
                tuple(sorted(t.threads[0].selfs.items())),
            )
        )
    return out


def _tree_outcomes_full(world, init, tree):
    from repro.semantics.trees import _TreeMachine

    start = _TreeMachine(world, init, tree)
    start._settle()
    out = set()
    stack = [start]
    while stack:
        m = stack.pop()
        assert not m.cut
        if m.done:
            out.add(
                (
                    m.result,
                    tuple(sorted(m.joints.items())),
                    tuple(sorted(m.env.items())),
                    tuple(sorted(m.threads[0].selfs.items())),
                )
            )
            continue
        for tid in m.runnable():
            stack.append(m.step(tid))
    return out


class TestAdequacy:
    def test_parallel_bumps(self, world, conc):
        prog_factory = lambda: par(act(BumpAction(conc)), act(BumpAction(conc)))
        init = counter_state(conc)
        assert _interp_outcomes(world, init, prog_factory()) == _tree_outcomes_full(
            world, init, denote(prog_factory())
        )

    def test_racing_read(self, world, conc):
        read = ReadCounterAction(conc)
        bump = BumpAction(conc)
        prog_factory = lambda: par(act(bump), bind(act(read), lambda v: ret(v * 10)))
        init = counter_state(conc, 1, 1)
        assert _interp_outcomes(world, init, prog_factory()) == _tree_outcomes_full(
            world, init, denote(prog_factory())
        )

    def test_nested_par(self, world, conc):
        bump = BumpAction(conc)
        prog_factory = lambda: par(par(act(bump), act(bump)), act(bump))
        init = counter_state(conc)
        assert _interp_outcomes(world, init, prog_factory()) == _tree_outcomes_full(
            world, init, denote(prog_factory())
        )

    @settings(max_examples=25, deadline=None)
    @given(prog_specs)
    def test_random_programs_agree(self, spec):
        conc = CounterConcurroid(cap=spec.bumps + 2)
        world = World((conc,))
        bump, read = BumpAction(conc), ReadCounterAction(conc)
        init = counter_state(conc)
        interp = _interp_outcomes(world, init, spec.build(bump, read))
        tree = _tree_outcomes_full(world, init, denote(spec.build(bump, read)))
        assert interp == tree


class TestTreeOutcomesAPI:
    def test_simple(self, world, conc):
        outcomes = tree_outcomes(
            world, counter_state(conc), denote(act(BumpAction(conc)))
        )
        assert len(outcomes) == 1
        ((result, __),) = outcomes
        assert result == 0

    def test_cut_detected(self, world, conc):
        action = ReadCounterAction(conc)
        spin = ffix(lambda loop: lambda: bind(act(action), lambda __: loop()))
        with pytest.raises(AssertionError):
            tree_outcomes(world, counter_state(conc), denote(spin(), depth=2))

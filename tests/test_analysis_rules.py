"""Unit tests for the fcsl-lint rule modules (failure injection).

Each test builds a deliberately broken protocol/action/spec/program/PCM
around the toy counter of :mod:`tests.helpers` and asserts the expected
FCSLxxx code fires — and that the healthy counter stays clean.
"""

from __future__ import annotations

import json
from typing import Any

import pytest

from repro.analysis import render_json, render_text, select, worst_severity
from repro.analysis.actions import lint_action
from repro.analysis.diagnostics import CODES, Diagnostic, Severity, diag
from repro.analysis.heapshim import effective_log, instrument_state
from repro.analysis.pcm_rules import lint_pcm
from repro.analysis.programs import lint_prog, walk_act_calls
from repro.analysis.protocol import lint_concurroid
from repro.analysis.specs import (
    lint_auto_assertions,
    lint_spec,
    param_is_read,
    probe_self_framed,
)
from repro.analysis.targets import bounded_closure
from repro.core.autostab import AutoAssertion
from repro.core.concurroid import Transition
from repro.core.prog import act, bind, ffix, hide, par, ret
from repro.core.spec import Spec
from repro.core.state import SubjState, state_of
from repro.heap import EMPTY, pts, ptr
from repro.pcm.base import PCM

from .helpers import (
    CELL,
    LABEL,
    BumpAction,
    CounterConcurroid,
    counter_state,
)


def codes(diagnostics: list[Diagnostic]) -> set[str]:
    return {d.code for d in diagnostics}


@pytest.fixture()
def conc() -> CounterConcurroid:
    return CounterConcurroid()


@pytest.fixture()
def states(conc):
    family, exhaustive = bounded_closure(conc, [counter_state(conc)])
    assert exhaustive
    return family


# -- diagnostics infrastructure ---------------------------------------------------------------


def test_code_table_is_well_formed():
    for code, (severity, slug, description) in CODES.items():
        assert code.startswith("FCSL") and len(code) == 7
        assert isinstance(severity, Severity)
        assert slug and description

def test_diag_rejects_unknown_code():
    with pytest.raises(KeyError):
        diag("FCSL999", "nope")


def test_render_and_select():
    ds = [diag("FCSL010", "escape", subject="t"), diag("FCSL021", "snap", subject="t")]
    text = render_text(ds)
    assert "FCSL010" in text and "1 error(s)" in text
    payload = json.loads(render_json(ds))
    assert payload["tool"] == "fcsl-lint"
    assert payload["counts"]["error"] == 1
    assert codes(select(ds, codes=["FCSL02"])) == {"FCSL021"}
    assert worst_severity(ds) is Severity.ERROR
    assert worst_severity([]) is None
    assert render_text([]).startswith("fcsl-lint: clean")


def test_select_covers_the_deps_block():
    # The fcsl-deps codes ride the shared --select grammar: exact,
    # prefix, wildcard, and range selectors must all reach FCSL06x.
    ds = [
        diag("FCSL060", "mutable global", subject="t"),
        diag("FCSL064", "monolithic cone", subject="t"),
        diag("FCSL010", "escape", subject="t"),
    ]
    assert codes(select(ds, codes=["FCSL060"])) == {"FCSL060"}
    assert codes(select(ds, codes=["FCSL06"])) == {"FCSL060", "FCSL064"}
    assert codes(select(ds, codes=["FCSL06x"])) == {"FCSL060", "FCSL064"}
    assert codes(select(ds, codes=["FCSL060-FCSL066"])) == {
        "FCSL060",
        "FCSL064",
    }
    assert codes(select(ds, codes=["FCSL060-066"])) == {"FCSL060", "FCSL064"}


def test_select_rejects_unpopulated_blocks_helpfully():
    from repro.analysis import SelectorError

    ds = [diag("FCSL060", "mutable global", subject="t")]
    with pytest.raises(SelectorError) as err:
        select(ds, codes=["FCSL09"])
    # The error names the populated blocks so the user can self-correct.
    assert "FCSL06x" in str(err.value)
    with pytest.raises(SelectorError):
        select(ds, codes=["FCSL075"])


# -- protocol rules (FCSL001-005) -------------------------------------------------------------


def test_healthy_counter_protocol_is_clean(conc, states):
    assert lint_concurroid(conc, states) == []


def test_fcsl001_vacuous_coherence(conc):
    broken = state_of(**{LABEL: SubjState(0, pts(CELL, 5), 0)})  # 0+0 != 5
    assert codes(lint_concurroid(conc, [broken])) == {"FCSL001"}


def test_fcsl002_dead_transition(states):
    class DeadTransitionCounter(CounterConcurroid):
        def transitions(self):
            dead = Transition(
                f"{self.label}.never", lambda s, p: False, lambda s, p: s
            )
            return tuple(super().transitions()) + (dead,)

    found = lint_concurroid(DeadTransitionCounter(), states)
    assert codes(found) == {"FCSL002"}
    # ... but a truncated family must not conclude deadness.
    assert lint_concurroid(DeadTransitionCounter(), states, exhaustive=False) == []


def test_fcsl003_reserved_idle_name(states):
    class IdleShadowCounter(CounterConcurroid):
        def transitions(self):
            (bump,) = super().transitions()
            return (Transition(f"{self.label}.idle", bump.requires, bump.effect),)

    assert "FCSL003" in codes(lint_concurroid(IdleShadowCounter(), states))


def test_fcsl004_duplicate_transition_name(states):
    class DupCounter(CounterConcurroid):
        def transitions(self):
            (bump,) = super().transitions()
            return (bump, Transition(bump.name, bump.requires, bump.effect))

    assert "FCSL004" in codes(lint_concurroid(DupCounter(), states))


def test_fcsl005_unmodelled_label(states):
    class GhostLabelCounter(CounterConcurroid):
        @property
        def labels(self):
            return (LABEL, "ghost")

    assert "FCSL005" in codes(lint_concurroid(GhostLabelCounter(), states))


# -- action rules (FCSL010-014) ---------------------------------------------------------------

SPY = ptr(8)


def spy_state(conc: CounterConcurroid):
    """A counter state whose joint carries an extra out-of-footprint cell."""
    return state_of(**{LABEL: SubjState(0, pts(CELL, 0).join(pts(SPY, 9)), 0)})


def test_healthy_bump_action_is_clean(conc, states):
    assert lint_action(BumpAction(conc), states) == []


def test_fcsl010_footprint_escape_catches_noop_rewrite(conc):
    class SpyRewriteAction(BumpAction):
        name = "ct.spy"

        def step(self, state, *args):
            comp = state[LABEL]
            # Rewrites SPY with its own value: invisible to a before/after
            # diff, still an out-of-footprint write.
            joint = comp.joint.update(SPY, comp.joint[SPY])
            return 0, state.set(LABEL, SubjState(comp.self_, joint, comp.other))

    found = lint_action(SpyRewriteAction(conc), [spy_state(conc)])
    assert codes(found) == {"FCSL010"}
    assert "p8" in found[0].message


def test_fcsl010_exempts_discarded_views(conc):
    class PeekAction(BumpAction):
        name = "ct.peek"

        def step(self, state, *args):
            # Derives (and discards) a view via free(): heaps are
            # persistent, so this is a read, not an escape.
            state.joint_of(LABEL).free(SPY)
            return 0, state

    assert lint_action(PeekAction(conc), [spy_state(conc)]) == []


def test_fcsl011_undeclared_allocation(conc, states):
    fresh = ptr(9)

    class GrowAction(BumpAction):
        name = "ct.grow"

        def step(self, state, *args):
            comp = state[LABEL]
            joint = comp.joint.join(pts(fresh, 1))
            return 0, state.set(LABEL, SubjState(comp.self_, joint, comp.other))

        def footprint(self, state, *args):
            return frozenset((CELL, fresh))

    assert "FCSL011" in codes(lint_action(GrowAction(conc), states))


def test_fcsl012_undeclared_transition(conc, states):
    class SneakyAction(BumpAction):
        name = "ct.sneak"

        def step(self, state, *args):
            comp = state[LABEL]
            # Bumps the cell without bumping self: matches neither idle
            # nor the declared bump transition.
            joint = comp.joint.update(CELL, comp.joint[CELL] + 1)
            return 0, state.set(LABEL, SubjState(comp.self_, joint, comp.other))

    found = lint_action(SneakyAction(conc), states)
    assert "FCSL012" in codes(found)
    assert "FCSL010" not in codes(found)


def test_fcsl013_dead_action(conc, states):
    class NeverAction(BumpAction):
        name = "ct.never"

        def safe(self, state, *args):
            return False

    assert codes(lint_action(NeverAction(conc), states)) == {"FCSL013"}


def test_fcsl014_anonymous_action(conc, states):
    from repro.core.action import Action

    class Unnamed(Action):  # keeps the Action base default name
        def safe(self, state, *args):
            return False

        def step(self, state, *args):
            return None, state

    assert "FCSL014" in codes(lint_action(Unnamed(conc), states))


def test_heapshim_records_only_installed_mutations(conc):
    rec, reads = instrument_state(spy_state(conc))
    joint = rec.joint_of(LABEL)
    joint.free(SPY)  # derived and discarded
    post = rec.set(
        LABEL,
        SubjState(0, joint.update(CELL, 1), rec[LABEL].other),
    )
    log = effective_log(post, reads=reads)
    assert log.touched == frozenset((CELL,))
    # equality/hashing are inherited: instrumented states compare equal
    assert rec == spy_state(conc)


# -- spec rules (FCSL020-022) -----------------------------------------------------------------


def test_param_is_read_bytecode_probe():
    assert param_is_read(lambda r, s2, s1: s1 is not None, 2)
    assert not param_is_read(lambda r, s2, s1: s2 is not None, 2)
    # closures defined inside the body count
    assert param_is_read(lambda r, s2, s1: (lambda: s1)(), 2)
    # non-introspectable callables are conservatively "read"
    assert param_is_read(len, 2)


def test_fcsl021_unread_snapshot(states):
    spec = Spec("snap", pre=lambda s: True, post=lambda r, s2, s1: True)
    assert codes(lint_spec(spec, states)) == {"FCSL021"}


def test_fcsl022_vacuous_precondition(states):
    spec = Spec(
        "vacuous", pre=lambda s: False, post=lambda r, s2, s1: s1 == s2
    )
    assert codes(lint_spec(spec, states)) == {"FCSL022"}


def test_healthy_spec_is_clean(states):
    spec = Spec(
        "fine",
        pre=lambda s: LABEL in s,
        post=lambda r, s2, s1: s2.self_of(LABEL) >= s1.self_of(LABEL),
    )
    assert lint_spec(spec, states) == []


def test_fcsl020_brute_forced_self_framed(states):
    framed, evidence = probe_self_framed(lambda s: s.self_of(LABEL) == 0, states)
    assert framed and evidence > 0
    opaque = AutoAssertion(
        name="my-contribution-zero",
        predicate=lambda s: s.self_of(LABEL) == 0,
        shape="opaque",
    )
    assert codes(lint_auto_assertions([opaque], states)) == {"FCSL020"}
    declared = AutoAssertion(
        name="my-contribution-zero",
        predicate=opaque.predicate,
        shape="self-framed",
    )
    assert lint_auto_assertions([declared], states) == []


def test_probe_self_framed_rejects_joint_dependence(states):
    framed, __ = probe_self_framed(
        lambda s: s.joint_of(LABEL)[CELL] == 0, states
    )
    assert not framed


# -- program rules (FCSL030-033) --------------------------------------------------------------


def test_fcsl030_actless_loop():
    spin = ffix(
        lambda loop: lambda: bind(ret(None), lambda __: loop()),
        label="noop-spin",
    )
    found = lint_prog(spin(), name="spin")
    assert codes(found) == {"FCSL030"}
    assert "noop-spin" in found[0].message


def test_actful_loop_is_clean(conc):
    bump = BumpAction(conc)
    spin = ffix(
        lambda loop: lambda: bind(act(bump), lambda v: ret(v) if v else loop()),
        label="bump-spin",
    )
    assert lint_prog(spin(), ambient_labels={LABEL}, name="spin") == []


def test_fcsl031_aliased_par(conc):
    branch = act(BumpAction(conc))
    assert "FCSL031" in codes(lint_prog(par(branch, branch), name="both"))
    clean = par(act(BumpAction(conc)), act(BumpAction(conc)))
    assert lint_prog(clean, name="both") == []


def test_fcsl032_hide_collision(conc):
    prog = hide(
        conc,
        donate_heap=lambda h: (h, EMPTY),
        initial_self=0,
        body=ret(None),
    )
    assert "FCSL032" in codes(
        lint_prog(prog, ambient_labels={LABEL, "pv"}, name="h")
    )
    assert lint_prog(prog, ambient_labels={"pv"}, name="h") == []


def test_fcsl033_unscoped_action(conc):
    prog = act(BumpAction(conc))
    found = lint_prog(prog, ambient_labels={"pv"}, name="loose")
    assert codes(found) == {"FCSL033"}
    # hide-installed labels extend the scope
    hidden = hide(
        conc, donate_heap=lambda h: (h, EMPTY), initial_self=0, body=prog
    )
    assert lint_prog(hidden, ambient_labels={"pv"}, name="scoped") == []


def test_walk_act_calls_sees_through_binds(conc):
    bump = BumpAction(conc)
    read = BumpAction(conc)
    read.name = "ct.read"
    prog = bind(act(bump), lambda __: par(act(read), ret(None)))
    # Continuations are probed with several values, so nodes behind the
    # bind may be visited more than once — but every action is seen.
    assert {c.action for c in walk_act_calls(prog)} == {bump, read}


# -- PCM rules (FCSL040-044) ------------------------------------------------------------------


class BrokenPCM(PCM):
    """Subtraction: non-commutative, non-associative, unit only on the right."""

    name = "broken"

    @property
    def unit(self) -> int:
        return 0

    def join(self, a: Any, b: Any) -> int:
        return a - b

    def valid(self, x: Any) -> bool:
        return isinstance(x, int)

    def sample(self):
        return (0, 1, 2)


class TinyPCM(BrokenPCM):
    name = "tiny"

    def sample(self):
        return (0,)


def test_fcsl040_non_commutative_join():
    found = lint_pcm(BrokenPCM())
    assert {"FCSL040", "FCSL041", "FCSL042"} <= codes(found)


def test_fcsl043_degenerate_sample():
    assert "FCSL043" in codes(lint_pcm(TinyPCM()))


def test_healthy_pcm_is_clean(conc):
    assert lint_pcm(conc.pcms()[LABEL]) == []

"""The CLI exit-code contract: lint, race and verify agree.

All three subcommands share one mapping — 0 all clean / verified, 1
findings (diagnostic past the severity threshold, failed verdict), 2
usage (unknown program, malformed flag), 3 infrastructure (the analysis
crashed, a program was quarantined, the sweep degraded).  CI and
scripting depend on the distinction: a 1 is a defect in the code under
analysis, a 3 is a defect in the analyzer.
"""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.analysis.diagnostics import Diagnostic


def _error_diag() -> Diagnostic:
    return Diagnostic("FCSL045", "synthetic rmw race", subject="fake", obj="a;b")


def _warning_diag() -> Diagnostic:
    return Diagnostic("FCSL046", "synthetic stale read", subject="fake", obj="a")


# -- usage errors: exit 2 ---------------------------------------------------------------


@pytest.mark.parametrize("cmd", ["lint", "race"])
def test_unknown_program_is_usage_error(cmd, capsys):
    assert main([cmd, "--program", "No such program"]) == 2
    assert "No such program" in capsys.readouterr().err


def test_verify_unknown_program_is_usage_error(capsys):
    assert main(["verify", "--program", "No such program"]) == 2


def test_verify_bad_fault_spec_is_usage_error(capsys):
    assert main(["verify", "--inject", "not-a-spec"]) == 2


# -- findings vs clean vs infra (patched sweeps: the real registry is clean
# and must stay that way, so severity paths are driven synthetically) ------------------


@pytest.fixture
def patched(monkeypatch):
    def patch(cmd: str, fn) -> None:
        name = {"lint": "lint_registry", "race": "race_registry"}[cmd]
        monkeypatch.setattr(f"repro.analysis.{name}", fn)

    return patch


@pytest.mark.parametrize("cmd", ["lint", "race"])
def test_clean_sweep_exits_zero(cmd, patched, capsys):
    patch = patched
    patch(cmd, lambda names=None: [])
    assert main([cmd]) == 0
    tool = {"lint": "fcsl-lint", "race": "fcsl-race"}[cmd]
    assert f"{tool}: clean" in capsys.readouterr().out


@pytest.mark.parametrize("cmd", ["lint", "race"])
def test_error_finding_exits_one(cmd, patched, capsys):
    patched(cmd, lambda names=None: [_error_diag()])
    assert main([cmd]) == 1
    assert "FCSL045" in capsys.readouterr().out


@pytest.mark.parametrize("cmd", ["lint", "race"])
def test_warning_needs_strict_to_fail(cmd, patched, capsys):
    patched(cmd, lambda names=None: [_warning_diag()])
    assert main([cmd]) == 0
    assert main([cmd, "--strict"]) == 1


@pytest.mark.parametrize("cmd", ["lint", "race"])
def test_analysis_crash_is_infra(cmd, patched, capsys):
    def boom(names=None):
        raise RuntimeError("synthetic analyzer bug")

    patched(cmd, boom)
    assert main([cmd]) == 3
    assert "internal error" in capsys.readouterr().err


# -- verify mirrors the same contract via SweepResult.exit_code() ----------------------


class _FakeSweep:
    def __init__(self, code: int):
        self._code = code

    def exit_code(self) -> int:
        return self._code

    def to_dict(self) -> dict:
        return {"outcomes": []}

    def render(self) -> str:
        return "fake sweep"


@pytest.mark.parametrize("code", [0, 1, 3])
def test_verify_propagates_sweep_exit_code(code, monkeypatch, capsys):
    monkeypatch.setattr(
        "repro.engine.run_sweep", lambda **kwargs: _FakeSweep(code)
    )
    assert main(["verify"]) == code


# -- the real registry is clean end-to-end --------------------------------------------


def test_race_clean_on_real_registry(capsys):
    """Zero false positives: the race rules on the actual case studies."""
    assert main(["race", "--format", "json"]) == 0
    out = capsys.readouterr().out
    assert '"tool": "fcsl-race"' in out

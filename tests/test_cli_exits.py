"""The CLI exit-code contract: lint, race, live, verify, profile and
explain agree.

The subcommands share one mapping — 0 all clean / verified / nothing to
explain, 1 findings (diagnostic past the severity threshold, failed
verdict, counterexample witness), 2 usage (unknown program, malformed
flag), 3 infrastructure (the analysis crashed, a program was
quarantined, the sweep degraded).  CI and scripting depend on the
distinction: a 1 is a defect in the code under analysis, a 3 is a
defect in the analyzer.
"""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.analysis.diagnostics import Diagnostic


def _error_diag() -> Diagnostic:
    return Diagnostic("FCSL045", "synthetic rmw race", subject="fake", obj="a;b")


def _warning_diag() -> Diagnostic:
    return Diagnostic("FCSL046", "synthetic stale read", subject="fake", obj="a")


# -- usage errors: exit 2 ---------------------------------------------------------------


@pytest.mark.parametrize("cmd", ["lint", "race", "live"])
def test_unknown_program_is_usage_error(cmd, capsys):
    assert main([cmd, "--program", "No such program"]) == 2
    assert "No such program" in capsys.readouterr().err


def test_verify_unknown_program_is_usage_error(capsys):
    assert main(["verify", "--program", "No such program"]) == 2


def test_verify_bad_fault_spec_is_usage_error(capsys):
    assert main(["verify", "--inject", "not-a-spec"]) == 2


def test_profile_unknown_program_is_usage_error(capsys):
    assert main(["profile", "--program", "No such program"]) == 2
    assert "No such program" in capsys.readouterr().err


def test_explain_unknown_program_is_usage_error(capsys):
    assert main(["explain", "No such program"]) == 2
    assert "No such program" in capsys.readouterr().err


# -- findings vs clean vs infra (patched sweeps: the real registry is clean
# and must stay that way, so severity paths are driven synthetically) ------------------


@pytest.fixture
def patched(monkeypatch):
    def patch(cmd: str, fn) -> None:
        name = {
            "lint": "lint_registry",
            "race": "race_registry",
            "live": "live_registry",
        }[cmd]
        monkeypatch.setattr(f"repro.analysis.{name}", fn)

    return patch


@pytest.mark.parametrize("cmd", ["lint", "race", "live"])
def test_clean_sweep_exits_zero(cmd, patched, capsys):
    patch = patched
    patch(cmd, lambda names=None: [])
    assert main([cmd]) == 0
    tool = {"lint": "fcsl-lint", "race": "fcsl-race", "live": "fcsl-live"}[cmd]
    assert f"{tool}: clean" in capsys.readouterr().out


@pytest.mark.parametrize("cmd", ["lint", "race", "live"])
def test_error_finding_exits_one(cmd, patched, capsys):
    patched(cmd, lambda names=None: [_error_diag()])
    assert main([cmd]) == 1
    assert "FCSL045" in capsys.readouterr().out


@pytest.mark.parametrize("cmd", ["lint", "race", "live"])
def test_warning_needs_strict_to_fail(cmd, patched, capsys):
    patched(cmd, lambda names=None: [_warning_diag()])
    assert main([cmd]) == 0
    assert main([cmd, "--strict"]) == 1


@pytest.mark.parametrize("cmd", ["lint", "race", "live"])
def test_analysis_crash_is_infra(cmd, patched, capsys):
    def boom(names=None):
        raise RuntimeError("synthetic analyzer bug")

    patched(cmd, boom)
    assert main([cmd]) == 3
    assert "internal error" in capsys.readouterr().err


# -- verify mirrors the same contract via SweepResult.exit_code() ----------------------


class _FakeSweep:
    def __init__(self, code: int):
        self._code = code

    def exit_code(self) -> int:
        return self._code

    def to_dict(self) -> dict:
        return {"outcomes": []}

    def render(self) -> str:
        return "fake sweep"


@pytest.mark.parametrize("code", [0, 1, 3])
def test_verify_propagates_sweep_exit_code(code, monkeypatch, capsys):
    monkeypatch.setattr(
        "repro.engine.run_sweep", lambda **kwargs: _FakeSweep(code)
    )
    assert main(["verify"]) == code


# -- profile mirrors verify (patched sweep; the tracing session is real) ---------------


@pytest.mark.parametrize("code", [0, 1, 3])
def test_profile_propagates_sweep_exit_code(code, monkeypatch, capsys):
    monkeypatch.setattr(
        "repro.engine.run_sweep", lambda **kwargs: _FakeSweep(code)
    )
    assert main(["profile"]) == code
    # a fake sweep emits no spans, but the hotspot table still renders
    assert "(no spans recorded)" in capsys.readouterr().out


# -- explain: 0 nothing to explain, 1 witnesses rendered, 3 verifier crash -------------


class _FakeReport:
    def __init__(self, ok: bool):
        self.ok = ok

    def pretty(self) -> str:
        return "fake failing report"


class _FakeInfo:
    """Just enough of ProgramInfo for _run_explain: name + run_verifier."""

    name = "fake"

    def __init__(self, verifier):
        self._verifier = verifier

    def run_verifier(self):
        return self._verifier()


def _patch_program(monkeypatch, verifier) -> None:
    monkeypatch.setattr(
        "repro.structures.registry.program",
        lambda name: _FakeInfo(verifier),
    )


def test_explain_clean_program_exits_zero(monkeypatch, capsys):
    _patch_program(monkeypatch, lambda: _FakeReport(ok=True))
    assert main(["explain", "fake"]) == 0
    assert "no witness to explain" in capsys.readouterr().out


def test_explain_failure_without_witness_exits_zero(monkeypatch, capsys):
    """A non-schedule failure (e.g. a shape check) has nothing to replay:
    explain reports that and defers to the plain report, exit 0."""
    _patch_program(monkeypatch, lambda: _FakeReport(ok=False))
    assert main(["explain", "fake"]) == 0
    out = capsys.readouterr().out
    assert "no witness to explain" in out
    assert "fake failing report" in out


def test_explain_recorded_witness_exits_one(monkeypatch, capsys):
    from repro.obs.witness import Witness, record

    def verifier():
        record(
            Witness(
                scenario="s",
                kind="postcondition",
                message="synthetic violation",
                meta={"unreplayable": True},
            )
        )
        return _FakeReport(ok=False)

    _patch_program(monkeypatch, verifier)
    assert main(["explain", "fake"]) == 1
    out = capsys.readouterr().out
    assert "counterexample witness" in out
    assert "synthetic violation" in out


def test_explain_verifier_crash_is_infra(monkeypatch, capsys):
    def boom():
        raise RuntimeError("synthetic verifier bug")

    _patch_program(monkeypatch, boom)
    assert main(["explain", "fake"]) == 3
    assert "crashed" in capsys.readouterr().err


# -- the real registry is clean end-to-end --------------------------------------------


def test_race_clean_on_real_registry(capsys):
    """Zero false positives: the race rules on the actual case studies."""
    assert main(["race", "--format", "json"]) == 0
    out = capsys.readouterr().out
    assert '"tool": "fcsl-race"' in out


def test_live_flags_demo_rows_on_real_registry(capsys):
    """The full liveness sweep exits 1 *by design*: the demo rows exist
    to keep the FCSL05x positive cases in-tree (two-lock deadlock cycle,
    unfair-lock fairness refutation)."""
    assert main(["live", "--format", "json"]) == 1
    out = capsys.readouterr().out
    assert '"tool": "fcsl-live"' in out
    assert "FCSL050" in out
    assert "FCSL056" in out


def test_live_clean_on_ticketed_lock(capsys):
    """Restricted to a paper case study, the sweep is error-free and the
    ticketed lock's FIFO fairness claim is mechanically confirmed."""
    assert main(["live", "--program", "Ticketed lock"]) == 0
    out = capsys.readouterr().out
    assert "FCSL059" in out
    assert "fairness-confirmed" in out

"""Tests for the automatic stability prover (§7's lemma-overloading item)."""

import pytest

from repro.core.autostab import (
    AutoAssertion,
    auto_check_stability,
    check_observable_monotone,
    conj,
    lower_bound,
    opaque,
    self_framed,
)
from repro.core.concurroid import check_concurroid, protocol_closure
from repro.heap import ptr

from .helpers import CELL, CounterConcurroid, counter_state


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=4)


@pytest.fixture()
def states(conc):
    return sorted(protocol_closure(conc, [counter_state(conc)]), key=repr)


@pytest.fixture()
def metatheory_ok(conc, states):
    assert check_concurroid(conc, states) == []
    return True


class TestMonotoneObservables:
    def test_counter_cell_is_monotone(self, conc, states):
        assert check_observable_monotone(conc, lambda s: s.joint_of("ct")[CELL], states) == []

    def test_other_contribution_is_monotone(self, conc, states):
        assert check_observable_monotone(conc, lambda s: s.other_of("ct"), states) == []

    def test_non_monotone_detected(self, conc, states):
        # cap - cell *decreases* along env bumps.
        issues = check_observable_monotone(
            conc, lambda s: 4 - s.joint_of("ct")[CELL], states
        )
        assert issues


class TestTactics:
    def test_self_framed_discharged_without_exploration(self, conc, states, metatheory_ok):
        assertions = [
            self_framed(f"self={a}", "ct", lambda v, a=a: v == a) for a in range(3)
        ]
        result = auto_check_stability(conc, states, assertions, metatheory_passed=True)
        assert result.ok
        assert result.explored == 0
        assert set(result.tactic_counts()) == {"self-framed"}

    def test_monotone_bounds_amortize_one_check(self, conc, states, metatheory_ok):
        cell = lambda s: s.joint_of("ct")[CELL]
        assertions = [lower_bound(f"cell>={c}", cell, c) for c in range(4)]
        result = auto_check_stability(conc, states, assertions, metatheory_passed=True)
        assert result.ok
        assert result.monotone_checks == 1  # one pass serves all four bounds
        assert result.explored == 0

    def test_non_monotone_bound_falls_back_and_fails(self, conc, states, metatheory_ok):
        # "cell <= 1" is genuinely unstable; the tactic must not discharge
        # it, and the fallback exploration must refute it.
        slack = lambda s: 4 - s.joint_of("ct")[CELL]
        result = auto_check_stability(
            conc,
            states,
            [lower_bound("cell<=1", slack, 3)],
            metatheory_passed=True,
        )
        assert not result.ok
        assert result.explored == 1

    def test_conjunction(self, conc, states, metatheory_ok):
        cell = lambda s: s.joint_of("ct")[CELL]
        combined = conj(
            "self=1 and cell>=1",
            self_framed("self=1", "ct", lambda v: v == 1),
            lower_bound("cell>=1", cell, 1),
        )
        result = auto_check_stability(conc, states, [combined], metatheory_passed=True)
        assert result.ok
        assert result.discharged_by["self=1 and cell>=1"] == "conjunction"

    def test_opaque_assertions_explored(self, conc, states, metatheory_ok):
        stable_opaque = opaque("cell is a nat", lambda s: s.joint_of("ct")[CELL] >= 0)
        result = auto_check_stability(conc, states, [stable_opaque], metatheory_passed=True)
        assert result.ok
        assert result.discharged_by["cell is a nat"] == "explored"

    def test_self_framed_needs_metatheory_voucher(self, conc, states):
        # Without the voucher the tactic refuses and falls back (and still
        # succeeds, since the assertion IS stable — just more slowly).
        assertion = self_framed("self=0", "ct", lambda v: v == 0)
        result = auto_check_stability(conc, states, [assertion], metatheory_passed=False)
        assert result.ok
        assert result.discharged_by["self=0"] == "explored"


class TestOnRealStructures:
    def test_span_stability_facts_automated(self):
        from repro.structures.spanning_tree import SpanTreeConcurroid
        from repro.structures.spanning_tree_verify import span_model_states

        conc = SpanTreeConcurroid()
        states = span_model_states(conc, max_nodes=2)
        assert check_concurroid(conc, states) == []

        marked = lambda s: s.self_of(conc.label) | s.other_of(conc.label)
        assertions = [
            self_framed("my marks fixed", "sp", lambda v: True),
            lower_bound(
                "node 1 stays marked",
                marked,
                frozenset((ptr(1),)),
                leq=lambda a, b: a <= b,
            ),
            lower_bound(
                "node 2 stays marked",
                marked,
                frozenset((ptr(2),)),
                leq=lambda a, b: a <= b,
            ),
        ]
        result = auto_check_stability(conc, states, assertions, metatheory_passed=True)
        assert result.ok
        assert result.monotone_checks == 1
        assert result.explored == 0

    def test_treiber_timestamp_bound_automated(self):
        from repro.structures.treiber_verify import model_states, model_structure

        model = model_structure()
        states = model_states(model)
        conc = model.concurroid
        assert check_concurroid(conc, states) == []

        last_ts = lambda s: model.treiber.total_history(s).last_timestamp()
        assertions = [lower_bound(f"ts>={k}", last_ts, k) for k in (0, 1, 2)]
        result = auto_check_stability(conc, states, assertions, metatheory_passed=True)
        assert result.ok
        assert result.monotone_checks == 1

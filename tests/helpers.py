"""Shared test fixtures: a minimal fine-grained counter concurroid.

The *toy counter* is the smallest protocol exercising the whole framework:
joint = one heap cell, self/other = nat contributions, coherence ties the
cell to the total, and a single ``bump`` transition increments both cell
and ``self`` — a lock-free fetch-and-add.  Tests use it to probe the core
machinery without the weight of the real case studies.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.core.action import Action
from repro.core.concurroid import Concurroid, Transition
from repro.core.state import State, SubjState, state_of
from repro.heap import Heap, Ptr, pts, ptr
from repro.pcm.base import PCM
from repro.pcm.natpcm import NatPCM

CELL = ptr(7)
LABEL = "ct"


class CounterConcurroid(Concurroid):
    """Fetch-and-add counter: cell contents = total contributions."""

    def __init__(self, label: str = LABEL, cap: int = 5):
        self._label = label
        self._cap = cap
        self._pcm = NatPCM(sample_bound=cap + 1)

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        if not isinstance(comp.joint, Heap) or CELL not in comp.joint:
            return False
        total = self._pcm.join(comp.self_, comp.other)
        return self._pcm.valid(total) and comp.joint[CELL] == total

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def requires(state: State, __: Any) -> bool:
            return state.joint_of(lbl)[CELL] < self._cap

        def effect(state: State, __: Any) -> State:
            def upd(comp: SubjState) -> SubjState:
                return SubjState(
                    comp.self_ + 1,
                    comp.joint.update(CELL, comp.joint[CELL] + 1),
                    comp.other,
                )

            return state.update(lbl, upd)

        return (Transition(f"{lbl}.bump", requires, effect),)

    def initial(self, self_n: int = 0, other_n: int = 0) -> SubjState:
        return SubjState(self_n, pts(CELL, self_n + other_n), other_n)


class BumpAction(Action):
    """Atomic fetch-and-add(1); returns the value read."""

    def __init__(self, conc: CounterConcurroid):
        super().__init__(conc)
        self._conc = conc
        self.name = f"{conc.label}.bump"

    def safe(self, state: State, *args: Any) -> bool:
        lbl = self._conc.label
        return (
            lbl in state
            and CELL in state.joint_of(lbl)
            and state.joint_of(lbl)[CELL] < self._conc._cap
        )

    def step(self, state: State, *args: Any) -> tuple[int, State]:
        lbl = self._conc.label
        comp = state[lbl]
        value = comp.joint[CELL]
        new = SubjState(comp.self_ + 1, comp.joint.update(CELL, value + 1), comp.other)
        return value, state.set(lbl, new)

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        return frozenset((CELL,))


class ReadCounterAction(Action):
    """Atomic read of the counter cell."""

    def __init__(self, conc: CounterConcurroid):
        super().__init__(conc)
        self._conc = conc
        self.name = f"{conc.label}.read"

    def safe(self, state: State, *args: Any) -> bool:
        lbl = self._conc.label
        return lbl in state and CELL in state.joint_of(lbl)

    def step(self, state: State, *args: Any) -> tuple[int, State]:
        return state.joint_of(self._conc.label)[CELL], state


def counter_state(conc: CounterConcurroid, self_n: int = 0, other_n: int = 0) -> State:
    return state_of(**{conc.label: conc.initial(self_n, other_n)})

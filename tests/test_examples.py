"""Smoke tests: every shipped example runs green end to end (slow)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout[-2000:] + proc.stderr[-2000:]
    assert proc.stdout.strip()

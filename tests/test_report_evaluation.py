"""End-to-end test of the full evaluation run (slow)."""

import pytest


@pytest.mark.slow
def test_full_evaluation_reproduces_everything():
    from repro.eval.report import run_evaluation

    report = run_evaluation()
    assert report.ok, report.issues
    text = report.render()
    assert "ALL ARTIFACTS REPRODUCED" in text
    assert "Flat combiner" in report.table1_text
    assert "matches paper Table 2 exactly" in report.table2_text
    assert "matches paper Figure 5 exactly" in report.figure5_text
    assert "stage 1:" in report.figure2_text

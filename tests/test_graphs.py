"""Unit tests for heap-represented graphs, paths, trees and fronts."""

import random

import pytest

from repro.graphs import (
    LEFT,
    RIGHT,
    GraphView,
    MarkedGraph,
    NotAGraphError,
    all_graph_views,
    connected,
    edge,
    edges,
    figure2_graph,
    front,
    graph_heap,
    is_graph,
    is_path,
    is_tree,
    maximal,
    max_tree2_holds,
    random_connected_graph,
    reachable,
    subgraph,
)
from repro.heap import NULL, pts, ptr


def diamond() -> GraphView:
    """1 -> (2, 3); 2 -> 4; 3 -> 4."""
    return GraphView(graph_heap({1: (2, 3), 2: (4, 0), 3: (4, 0), 4: (0, 0)}))


def chain() -> GraphView:
    """1 -> 2 -> 3."""
    return GraphView(graph_heap({1: (2, 0), 2: (3, 0), 3: (0, 0)}))


class TestGraphPredicate:
    def test_valid_graph(self):
        assert is_graph(figure2_graph())

    def test_empty_heap_is_graph(self):
        assert is_graph(graph_heap({}))

    def test_dangling_successor_rejected(self):
        with pytest.raises(NotAGraphError):
            graph_heap({1: (9, 0)})

    def test_non_triple_not_graph(self):
        assert not is_graph(pts(ptr(1), "junk"))

    def test_non_bool_mark_not_graph(self):
        assert not is_graph(pts(ptr(1), (1, NULL, NULL)))

    def test_undef_heap_not_graph(self):
        from repro.heap import UNDEF

        assert not is_graph(UNDEF)

    def test_graphview_rejects_non_graph(self):
        with pytest.raises(NotAGraphError):
            GraphView(pts(ptr(1), "junk"))


class TestAccessors:
    def test_cont_on_node(self):
        g = GraphView(graph_heap({1: (2, 0), 2: (0, 0)}, marked=frozenset({2})))
        assert g.cont(ptr(1)) == (False, ptr(2), NULL)
        assert g.mark(ptr(2))

    def test_defaults_off_domain(self):
        g = chain()
        assert g.cont(ptr(99)) == (False, NULL, NULL)
        assert not g.mark(ptr(99))
        assert g.edgl(ptr(99)) == NULL

    def test_child_by_side(self):
        g = diamond()
        assert g.child(ptr(1), LEFT) == ptr(2)
        assert g.child(ptr(1), RIGHT) == ptr(3)

    def test_marked_unmarked_partition(self):
        g = GraphView(graph_heap({1: (0, 0), 2: (0, 0)}, marked=frozenset({1})))
        assert g.marked_nodes() == {ptr(1)}
        assert g.unmarked_nodes() == {ptr(2)}

    def test_mark_node_sets_bit(self):
        g = chain()
        h2 = g.mark_node(ptr(2))
        assert GraphView(h2).mark(ptr(2))

    def test_mark_node_preserves_edges(self):
        g = chain()
        g2 = GraphView(g.mark_node(ptr(1)))
        assert g2.edgl(ptr(1)) == ptr(2)

    def test_null_edge_left(self):
        g = diamond()
        g2 = GraphView(g.null_edge(LEFT, ptr(1)))
        assert g2.edgl(ptr(1)) == NULL
        assert g2.edgr(ptr(1)) == ptr(3)

    def test_null_edge_right(self):
        g = diamond()
        g2 = GraphView(g.null_edge(RIGHT, ptr(1)))
        assert g2.edgr(ptr(1)) == NULL
        assert g2.edgl(ptr(1)) == ptr(2)


class TestEdgePath:
    def test_edge_present(self):
        assert edge(diamond(), ptr(1), ptr(2))

    def test_edge_absent(self):
        assert not edge(diamond(), ptr(2), ptr(3))

    def test_edge_to_null_false(self):
        assert not edge(chain(), ptr(3), NULL)

    def test_edge_from_non_node_false(self):
        assert not edge(chain(), ptr(9), ptr(1))

    def test_edges_enumeration(self):
        assert edges(chain()) == {(ptr(1), ptr(2)), (ptr(2), ptr(3))}

    def test_empty_path_ok(self):
        assert is_path(chain(), ptr(1), [])

    def test_valid_path(self):
        assert is_path(chain(), ptr(1), [ptr(2), ptr(3)])

    def test_broken_path(self):
        assert not is_path(chain(), ptr(1), [ptr(3)])

    def test_reachable(self):
        assert reachable(diamond(), ptr(1)) == {ptr(1), ptr(2), ptr(3), ptr(4)}
        assert reachable(diamond(), ptr(2)) == {ptr(2), ptr(4)}

    def test_reachable_from_non_node(self):
        assert reachable(chain(), ptr(42)) == frozenset()


class TestTree:
    def test_chain_is_tree(self):
        g = chain()
        assert is_tree(g, ptr(1), frozenset({ptr(1), ptr(2), ptr(3)}))

    def test_diamond_not_tree(self):
        g = diamond()
        assert not is_tree(g, ptr(1), frozenset({ptr(1), ptr(2), ptr(3), ptr(4)}))

    def test_subset_of_diamond_is_tree(self):
        g = diamond()
        assert is_tree(g, ptr(1), frozenset({ptr(1), ptr(2), ptr(4)}))

    def test_root_must_be_member(self):
        assert not is_tree(chain(), ptr(1), frozenset({ptr(2)}))

    def test_singleton_tree(self):
        assert is_tree(chain(), ptr(3), frozenset({ptr(3)}))

    def test_self_loop_not_tree(self):
        g = GraphView(graph_heap({1: (1, 0)}))
        assert not is_tree(g, ptr(1), frozenset({ptr(1)}))

    def test_cycle_not_tree(self):
        g = GraphView(graph_heap({1: (2, 0), 2: (1, 0)}))
        assert not is_tree(g, ptr(1), frozenset({ptr(1), ptr(2)}))

    def test_tree_nodes_must_be_graph_nodes(self):
        assert not is_tree(chain(), ptr(1), frozenset({ptr(1), ptr(42)}))


class TestFrontMaximal:
    def test_front_of_chain_prefix(self):
        g = chain()
        assert front(g, {ptr(1)}, {ptr(1), ptr(2)})

    def test_front_requires_subset(self):
        g = chain()
        assert not front(g, {ptr(1)}, {ptr(2)})

    def test_front_missing_successor(self):
        g = chain()
        assert not front(g, {ptr(1)}, {ptr(1)})

    def test_maximal_whole_graph(self):
        g = chain()
        assert maximal(g, {ptr(1), ptr(2), ptr(3)})

    def test_not_maximal_with_outgoing_edge(self):
        g = chain()
        assert not maximal(g, {ptr(1), ptr(2)})

    def test_maximal_after_nullify(self):
        g = GraphView(chain().null_edge(LEFT, ptr(2)))
        assert maximal(g, {ptr(1), ptr(2)})

    def test_connected(self):
        g = diamond()
        assert connected(g, ptr(1), g.nodes())
        assert not connected(g, ptr(2), g.nodes())


class TestMaxTree2Lemma:
    def test_holds_on_disjoint_subtrees(self):
        g = GraphView(graph_heap({1: (2, 3), 2: (0, 0), 3: (0, 0)}))
        assert max_tree2_holds(
            g, ptr(1), ptr(2), ptr(3), frozenset({ptr(2)}), frozenset({ptr(3)})
        )
        # And the conclusion really is a tree:
        assert is_tree(g, ptr(1), frozenset({ptr(1), ptr(2), ptr(3)}))

    def test_vacuous_when_not_maximal(self):
        # 2 -> 4 makes {2} non-maximal, so the lemma holds vacuously.
        g = GraphView(graph_heap({1: (2, 3), 2: (4, 0), 3: (0, 0), 4: (0, 0)}))
        assert max_tree2_holds(
            g, ptr(1), ptr(2), ptr(3), frozenset({ptr(2)}), frozenset({ptr(3)})
        )

    def test_exhaustive_on_two_node_graphs(self):
        # The finite-model discharge: the lemma must hold for every graph
        # on <= 2 nodes and every choice of roots/subtrees.
        from itertools import combinations

        for g in all_graph_views(2):
            nodes = sorted(g.nodes())
            subsets = [frozenset(c) for r in range(3) for c in combinations(nodes, r)]
            for x in nodes:
                for t1 in subsets:
                    for t2 in subsets:
                        y1, y2 = g.successors(x)
                        assert max_tree2_holds(g, x, y1, y2, t1, t2)


class TestSubgraph:
    def _mg(self, view, self_marked=frozenset(), other_marked=frozenset()):
        return MarkedGraph(view, frozenset(self_marked), frozenset(other_marked))

    def test_reflexive(self):
        s = self._mg(chain())
        assert subgraph(s, s)

    def test_marking_step_is_subgraph(self):
        g1 = chain()
        g2 = GraphView(g1.mark_node(ptr(1)))
        assert subgraph(self._mg(g1), self._mg(g2, self_marked={ptr(1)}))

    def test_nullify_of_marked_is_subgraph(self):
        g1 = GraphView(chain().mark_node(ptr(1)))
        g2 = GraphView(g1.null_edge(LEFT, ptr(1)))
        s1 = self._mg(g1, self_marked={ptr(1)})
        s2 = self._mg(g2, self_marked={ptr(1)})
        assert subgraph(s1, s2)

    def test_changing_unmarked_content_rejected(self):
        g1 = chain()
        g2 = GraphView(g1.null_edge(LEFT, ptr(1)))  # 1 is unmarked
        assert not subgraph(self._mg(g1), self._mg(g2))

    def test_unmarking_rejected(self):
        g1 = GraphView(chain().mark_node(ptr(1)))
        s1 = self._mg(g1, self_marked={ptr(1)})
        s2 = self._mg(chain())
        assert not subgraph(s1, s2)

    def test_edge_addition_rejected(self):
        g1 = GraphView(graph_heap({1: (0, 0), 2: (0, 0)}, marked=frozenset({1})))
        g2 = GraphView(graph_heap({1: (2, 0), 2: (0, 0)}, marked=frozenset({1})))
        assert not subgraph(self._mg(g1, self_marked={ptr(1)}), self._mg(g2, self_marked={ptr(1)}))

    def test_node_set_must_match(self):
        assert not subgraph(self._mg(chain()), self._mg(diamond()))


class TestRandomGraphs:
    def test_random_connected_graph_is_connected(self):
        rng = random.Random(7)
        for __ in range(25):
            h, root = random_connected_graph(6, rng)
            g = GraphView(h)
            assert connected(g, ptr(root), g.nodes())

    def test_random_connected_graph_unmarked(self):
        h, __ = random_connected_graph(4, random.Random(1))
        assert not GraphView(h).marked_nodes()

    def test_all_graphs_count(self):
        # 1 node: successors in {null, 1} for each of two slots = 4 graphs.
        assert sum(1 for __ in all_graph_views(1)) == 4
        # With marks: twice as many.
        assert sum(1 for __ in all_graph_views(1, include_marks=True)) == 8

"""Integration tests: the registry sweep, the verifier pre-pass, the CLI.

The sweep contract: every Table 1 case study has a lint target, and the
whole registry lints with no errors or warnings (the single FCSL021
*info* on Prod/Cons is a deliberate demonstration of the rule on real
code — its postcondition genuinely ignores the pre-state).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Severity,
    lint_registry,
    static_prepass,
    worst_severity,
)
from repro.analysis.runner import missing_targets
from repro.analysis.specs import probe_self_framed
from repro.analysis.targets import TARGET_BUILDERS, bounded_closure, target_for
from repro.core.stability import check_stability
from repro.core.verify import get_prepass, set_prepass
from repro.structures.registry import registry_programs

from .helpers import CELL, LABEL, CounterConcurroid, counter_state


# -- the registry sweep -----------------------------------------------------------------------


def test_every_registry_program_has_a_lint_target():
    assert missing_targets() == []
    names = {info.name for info in registry_programs()}
    assert set(TARGET_BUILDERS) == names


def test_registry_sweep_is_clean():
    diagnostics = lint_registry()
    worst = worst_severity(diagnostics)
    assert worst is None or worst < Severity.WARNING, [
        d.render() for d in diagnostics
    ]
    # The lone expected finding: Prod/Cons's unread pre-state snapshot.
    assert {d.code for d in diagnostics} <= {"FCSL021"}


def test_lint_registry_name_filter():
    assert lint_registry(names=["CAS-lock"]) == []
    with pytest.raises(KeyError):
        lint_registry(names=["No such program"])


def test_targets_mirror_verifier_models():
    target = target_for("CAS-lock")
    assert target.exhaustive and len(target.states) > 100
    assert target.actions and target.specs and target.programs and target.pcms


# -- the verifier pre-pass --------------------------------------------------------------------


@pytest.fixture()
def counter_family():
    conc = CounterConcurroid()
    states, exhaustive = bounded_closure(conc, [counter_state(conc)])
    assert exhaustive
    return conc, states


def test_prepass_discharges_self_framed_assertion(counter_family):
    conc, states = counter_family
    assertion = lambda s: s.self_of(LABEL) == 0  # noqa: E731
    baseline = check_stability(assertion, "self-zero", conc, states)
    assert baseline == []
    with static_prepass() as pp:
        skipped = check_stability(assertion, "self-zero", conc, states)
    assert skipped == baseline
    assert pp.consulted == 1 and pp.skipped == ["self-zero"]


def test_prepass_never_discharges_joint_dependent_assertion(counter_family):
    conc, states = counter_family
    assertion = lambda s: s.joint_of(LABEL)[CELL] == 0  # noqa: E731
    framed, __ = probe_self_framed(assertion, states)
    assert not framed
    baseline = check_stability(assertion, "cell-zero", conc, states)
    assert baseline  # genuinely unstable under env bumps
    with static_prepass() as pp:
        issues = check_stability(assertion, "cell-zero", conc, states)
    assert [str(i) for i in issues] == [str(i) for i in baseline]
    assert pp.skipped == []


def test_prepass_consumes_iterators_safely(counter_family):
    conc, states = counter_family
    assertion = lambda s: s.joint_of(LABEL)[CELL] == 0  # noqa: E731
    with static_prepass():
        issues = check_stability(assertion, "cell-zero", conc, iter(states))
    # The pre-pass materializes the family; the BFS still sees every state.
    assert issues == check_stability(assertion, "cell-zero", conc, states)


def test_prepass_installs_and_uninstalls():
    assert get_prepass() is None
    with static_prepass() as pp:
        assert get_prepass() is pp
    assert get_prepass() is None
    # ... even when the body raises.
    with pytest.raises(RuntimeError):
        with static_prepass():
            raise RuntimeError("boom")
    assert get_prepass() is None


def test_broken_prepass_never_fails_a_proof(counter_family):
    conc, states = counter_family

    class Exploding:
        skipped = []

        def discharges(self, *args):
            raise RuntimeError("bad prepass")

    set_prepass(Exploding())
    try:
        issues = check_stability(
            lambda s: s.self_of(LABEL) == 0, "self-zero", conc, states
        )
    finally:
        set_prepass(None)
    assert issues == []


def test_prepass_skips_are_reported():
    info = next(i for i in registry_programs() if i.name == "CAS-lock")
    with static_prepass():
        report = info.verifier()
    assert report.ok and report.prepass_skips >= 1
    assert "statically discharged" in report.pretty()
    baseline = info.verifier()
    assert baseline.prepass_skips == 0
    assert {o.name: o.ok for o in report.obligations} == {
        o.name: o.ok for o in baseline.obligations
    }


# -- the CLI ----------------------------------------------------------------------------------


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    from repro.__main__ import main

    rc = main(list(argv))
    return rc, capsys.readouterr().out


def test_cli_lint_exits_zero_and_renders_text(capsys):
    rc, out = run_cli(capsys, "lint")
    assert rc == 0
    assert "fcsl-lint:" in out


def test_cli_lint_json_format(capsys):
    rc, out = run_cli(capsys, "lint", "--format", "json", "--program", "Prod/Cons")
    assert rc == 0
    payload = json.loads(out)
    assert payload["tool"] == "fcsl-lint"
    assert [d["code"] for d in payload["diagnostics"]] == ["FCSL021"]


def test_cli_lint_select_filters_codes(capsys):
    rc, out = run_cli(capsys, "lint", "--select", "FCSL03", "--program", "Prod/Cons")
    assert rc == 0
    assert "clean" in out


def test_cli_lint_exit_codes_follow_severity(capsys, monkeypatch):
    import repro.analysis as analysis
    from repro.analysis.diagnostics import diag

    monkeypatch.setattr(
        analysis, "lint_registry", lambda names=None: [diag("FCSL010", "injected")]
    )
    rc, out = run_cli(capsys, "lint")
    assert rc == 1 and "FCSL010" in out

    monkeypatch.setattr(
        analysis, "lint_registry", lambda names=None: [diag("FCSL002", "injected")]
    )
    rc, __ = run_cli(capsys, "lint")
    assert rc == 0  # warnings don't fail by default...
    rc, __ = run_cli(capsys, "lint", "--strict")
    assert rc == 1  # ...unless --strict


def test_cli_lint_unknown_program_is_a_clean_error(capsys):
    from repro.__main__ import main

    rc = main(["lint", "--program", "No such program"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "unknown registry program" in captured.err
    assert "Traceback" not in captured.err

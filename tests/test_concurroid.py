"""Unit tests for concurroids, metatheory checking and protocol closure."""

import pytest

from repro.core.concurroid import (
    Transition,
    assert_metatheory,
    check_concurroid,
    protocol_closure,
)
from repro.core.errors import MetatheoryViolation
from repro.core.state import SubjState, state_of, subj

from .helpers import CELL, CounterConcurroid, counter_state


class TestCounterConcurroid:
    def test_coherent_initial(self):
        conc = CounterConcurroid()
        assert conc.coherent(counter_state(conc, 1, 2))

    def test_incoherent_when_cell_mismatch(self):
        conc = CounterConcurroid()
        s = counter_state(conc, 1, 2)
        bad = s.update(conc.label, lambda c: c.with_joint(c.joint.update(CELL, 99)))
        assert not conc.coherent(bad)

    def test_missing_label_incoherent(self):
        conc = CounterConcurroid()
        assert not conc.coherent(state_of(zz=subj(0, 0, 0)))

    def test_transition_bumps_self(self):
        conc = CounterConcurroid()
        s = counter_state(conc, 0, 0)
        (t,) = conc.transitions()
        successors = list(t.successors(s))
        assert len(successors) == 1
        __, s2 = successors[0]
        assert s2.self_of(conc.label) == 1
        assert s2.joint_of(conc.label)[CELL] == 1

    def test_transition_guard(self):
        conc = CounterConcurroid(cap=0)
        s = counter_state(conc, 0, 0)
        (t,) = conc.transitions()
        assert not list(t.successors(s))

    def test_env_moves_change_other(self):
        conc = CounterConcurroid()
        s = counter_state(conc, 1, 0)
        moves = list(conc.env_moves(s))
        assert len(moves) == 1
        s2 = moves[0]
        assert s2.self_of(conc.label) == 1  # my contribution untouched
        assert s2.other_of(conc.label) == 1
        assert s2.joint_of(conc.label)[CELL] == 2

    def test_label_property(self):
        assert CounterConcurroid().label == "ct"


class TestMetatheoryChecker:
    def test_counter_passes(self):
        conc = CounterConcurroid()
        states = protocol_closure(conc, [counter_state(conc)])
        assert check_concurroid(conc, states) == []

    def test_other_mutation_caught(self):
        class BadConcurroid(CounterConcurroid):
            def transitions(self):
                lbl = self.label

                def effect(state, __):
                    # Illegally bumps `other` instead of `self`.
                    def upd(comp):
                        return SubjState(
                            comp.self_,
                            comp.joint.update(CELL, comp.joint[CELL] + 1),
                            comp.other + 1,
                        )

                    return state.update(lbl, upd)

                return (Transition(f"{lbl}.bad", lambda s, p: True, effect),)

        conc = BadConcurroid()
        issues = check_concurroid(conc, [counter_state(conc)])
        assert any(i.condition == "other-preservation" for i in issues)

    def test_coherence_break_caught(self):
        class BadConcurroid(CounterConcurroid):
            def transitions(self):
                lbl = self.label

                def effect(state, __):
                    # Bumps the cell without recording a contribution.
                    return state.update(
                        lbl,
                        lambda c: c.with_joint(c.joint.update(CELL, c.joint[CELL] + 1)),
                    )

                return (Transition(f"{lbl}.bad", lambda s, p: True, effect),)

        conc = BadConcurroid()
        issues = check_concurroid(conc, [counter_state(conc)])
        assert any(i.condition == "coherence-preservation" for i in issues)

    def test_footprint_change_caught(self):
        from repro.heap import pts, ptr

        class BadConcurroid(CounterConcurroid):
            def transitions(self):
                lbl = self.label

                def effect(state, __):
                    # Grows the joint heap: footprint violation.
                    def upd(comp):
                        return SubjState(
                            comp.self_, comp.joint.join(pts(ptr(99), 0)), comp.other
                        )

                    return state.update(lbl, upd)

                return (Transition(f"{lbl}.bad", lambda s, p: True, effect),)

        conc = BadConcurroid()
        issues = check_concurroid(conc, [counter_state(conc)])
        assert any(i.condition == "footprint-preservation" for i in issues)

    def test_fork_join_closure_violation_caught(self):
        class NonClosedConcurroid(CounterConcurroid):
            def coherent(self, state):
                # Insists `self` is even: realigning an odd split breaks it.
                return super().coherent(state) and state.self_of(self.label) % 2 == 0

        conc = NonClosedConcurroid()
        issues = check_concurroid(conc, [counter_state(conc, 2, 0)])
        assert any(i.condition == "fork-join-closure" for i in issues)

    def test_assert_metatheory_raises(self):
        class BadConcurroid(CounterConcurroid):
            def coherent(self, state):
                return super().coherent(state) and state.self_of(self.label) % 2 == 0

        conc = BadConcurroid()
        with pytest.raises(MetatheoryViolation):
            assert_metatheory(conc, [counter_state(conc, 2, 0)])

    def test_incoherent_states_skipped(self):
        conc = CounterConcurroid()
        bad = counter_state(conc, 1, 0).update(
            conc.label, lambda c: c.with_joint(c.joint.update(CELL, 42))
        )
        assert check_concurroid(conc, [bad]) == []


class TestProtocolClosure:
    def test_closure_reaches_cap(self):
        conc = CounterConcurroid(cap=3)
        states = protocol_closure(conc, [counter_state(conc)])
        values = {s.joint_of(conc.label)[CELL] for s in states}
        assert values == {0, 1, 2, 3}

    def test_closure_includes_env_marked(self):
        conc = CounterConcurroid(cap=2)
        states = protocol_closure(conc, [counter_state(conc)])
        assert any(s.other_of(conc.label) > 0 for s in states)

    def test_closure_bound_raises(self):
        conc = CounterConcurroid(cap=1000)
        with pytest.raises(MetatheoryViolation):
            protocol_closure(conc, [counter_state(conc)], max_states=10)

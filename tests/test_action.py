"""Unit tests for atomic actions and the per-action metatheory checks."""

import pytest

from repro.core.action import assert_action_ok, check_action
from repro.core.concurroid import protocol_closure
from repro.core.errors import MetatheoryViolation
from repro.core.state import SubjState

from .helpers import CELL, BumpAction, CounterConcurroid, ReadCounterAction, counter_state


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=3)


@pytest.fixture()
def states(conc):
    return sorted(protocol_closure(conc, [counter_state(conc)]), key=repr)


class TestBumpAction:
    def test_step_returns_old_value(self, conc):
        s = counter_state(conc, 1, 1)
        value, s2 = BumpAction(conc).step(s)
        assert value == 2
        assert s2.joint_of(conc.label)[CELL] == 3
        assert s2.self_of(conc.label) == 2

    def test_safe_respects_cap(self, conc):
        s = counter_state(conc, 2, 1)  # cell = 3 = cap
        assert not BumpAction(conc).safe(s)

    def test_all_obligations_pass(self, conc, states):
        assert check_action(BumpAction(conc), states) == []

    def test_read_passes(self, conc, states):
        assert check_action(ReadCounterAction(conc), states) == []


class TestActionChecker:
    def test_erasure_violation_caught(self, conc, states):
        class SneakyBump(BumpAction):
            def footprint(self, state, *args):
                return frozenset()  # lies about touching the cell

        issues = check_action(SneakyBump(conc), states)
        assert any(i.condition == "erasure" for i in issues)

    def test_footprint_growth_caught(self, conc, states):
        from repro.heap import pts, ptr

        class GrowingAction(BumpAction):
            def step(self, state, *args):
                value, s2 = super().step(state, *args)
                lbl = self._conc.label
                grown = s2.update(
                    lbl, lambda c: c.with_joint(c.joint.join(pts(ptr(50), 0)))
                )
                return value, grown

        issues = check_action(GrowingAction(conc), states)
        # a non-allocating action must preserve the heap domain
        assert any(i.condition == "erasure" for i in issues)

    def test_other_mutation_caught(self, conc, states):
        class OtherBump(BumpAction):
            def step(self, state, *args):
                lbl = self._conc.label
                comp = state[lbl]
                new = SubjState(
                    comp.self_,
                    comp.joint.update(CELL, comp.joint[CELL] + 1),
                    comp.other + 1,
                )
                return comp.joint[CELL], state.set(lbl, new)

        issues = check_action(OtherBump(conc), states)
        assert any(i.condition == "other-preservation" for i in issues)

    def test_correspondence_violation_caught(self, conc, states):
        class DoubleBump(BumpAction):
            def step(self, state, *args):
                __, s1 = super().step(state, *args)
                if self.safe(s1, *args):
                    return 0, super().step(s1, *args)[1]  # two transitions at once
                return 0, s1

        issues = check_action(DoubleBump(conc), states)
        assert any(i.condition == "transition-correspondence" for i in issues)

    def test_locality_violation_caught(self, conc, states):
        class PeekingRead(ReadCounterAction):
            def step(self, state, *args):
                # Result leaks the environment's contribution.
                return state.other_of(self._conc.label), state

        issues = check_action(PeekingRead(conc), states)
        assert any(i.condition == "locality" for i in issues)

    def test_exception_reported_as_totality(self, conc, states):
        class CrashingBump(BumpAction):
            def step(self, state, *args):
                raise RuntimeError("boom")

        issues = check_action(CrashingBump(conc), states)
        assert any(i.condition == "totality" for i in issues)

    def test_assert_raises(self, conc, states):
        class CrashingBump(BumpAction):
            def step(self, state, *args):
                raise RuntimeError("boom")

        with pytest.raises(MetatheoryViolation):
            assert_action_ok(CrashingBump(conc), states)

    def test_unsafe_states_skipped(self, conc):
        s = counter_state(conc, 3, 0)  # at cap: bump unsafe, nothing to check
        assert check_action(BumpAction(conc), [s]) == []

"""Tests for entanglement, Priv, World and the hide constructor."""

import pytest

from repro.core import World
from repro.core.concurroid import Transition, protocol_closure
from repro.core.entangle import Entangled, Priv, entangle
from repro.core.errors import ProgramError
from repro.core.prog import HideProg, act, hide, ret, seq
from repro.core.state import State, SubjState, state_of, subj
from repro.heap import EMPTY, Heap, pts, ptr
from repro.semantics import initial_config, run_deterministic

from .helpers import CELL, BumpAction, CounterConcurroid, counter_state


class TestPriv:
    def test_coherence(self):
        priv = Priv("pv")
        good = state_of(pv=SubjState(pts(ptr(1), 0), EMPTY, EMPTY))
        assert priv.coherent(good)

    def test_overlapping_heaps_incoherent(self):
        priv = Priv("pv")
        bad = state_of(pv=SubjState(pts(ptr(1), 0), EMPTY, pts(ptr(1), 1)))
        assert not priv.coherent(bad)

    def test_nonempty_joint_incoherent(self):
        priv = Priv("pv")
        bad = state_of(pv=SubjState(EMPTY, pts(ptr(1), 0), EMPTY))
        assert not priv.coherent(bad)

    def test_env_moves_only_touch_other(self):
        priv = Priv("pv", value_domain=(0, 1))
        s = state_of(pv=SubjState(pts(ptr(1), 0), EMPTY, pts(ptr(2), 0)))
        moves = list(priv.env_moves(s))
        assert moves
        for succ in moves:
            assert succ.self_of("pv") == s.self_of("pv")
            assert succ.joint_of("pv") == s.joint_of("pv")
        assert any(succ.other_of("pv") != s.other_of("pv") for succ in moves)

    def test_alloc_transition_respects_bounds(self):
        priv = Priv("pv", max_cells=1, max_addr=2)
        s = state_of(pv=SubjState(pts(ptr(1), 0), EMPTY, EMPTY))
        names = [t.name for t in priv.transitions()]
        alloc = next(t for t in priv.transitions() if t.name.endswith("alloc"))
        assert not list(alloc.enabled_params(s))  # already at max_cells

    def test_alloc_freshness_is_global(self):
        # A pointer in a sibling label's joint must not be re-allocated.
        priv = Priv("pv", max_cells=2, max_addr=5)
        conc = CounterConcurroid()
        s = State(
            {
                "pv": SubjState(pts(ptr(1), 0), EMPTY, EMPTY),
                "ct": conc.initial(),  # joint holds CELL = ptr(7)... use low addr
            }
        )
        alloc = next(t for t in priv.transitions() if t.name.endswith("alloc"))
        for __, succ in alloc.successors(s):
            new = succ.self_of("pv").dom() - s.self_of("pv").dom()
            assert new and all(p != ptr(7) for p in new)


class TestEntangled:
    def test_label_union(self):
        e = entangle(Priv("pv"), CounterConcurroid())
        assert set(e.labels) == {"pv", "ct"}

    def test_label_collision_rejected(self):
        with pytest.raises(ValueError):
            entangle(Priv("x"), Priv("x"))

    def test_coherence_is_conjunction(self):
        e = entangle(Priv("pv"), CounterConcurroid())
        conc = CounterConcurroid()
        s = State(
            {
                "pv": SubjState(EMPTY, EMPTY, EMPTY),
                "ct": conc.initial(1, 2),
            }
        )
        assert e.coherent(s)
        broken = s.update("ct", lambda c: c.with_joint(c.joint.update(CELL, 99)))
        assert not e.coherent(broken)

    def test_flattening(self):
        inner = entangle(Priv("pv"), CounterConcurroid())
        outer = entangle(inner, CounterConcurroid(label="ct2"))
        assert len(outer.parts) == 3

    def test_connectors_disable_footprint_guarantee(self):
        t = Transition("noop", lambda s, p: False, lambda s, p: s)
        with_conn = entangle(Priv("pv"), connectors=[t])
        without = entangle(Priv("pv"))
        assert not with_conn.preserves_footprint
        assert without.preserves_footprint

    def test_find_by_label(self):
        e = entangle(Priv("pv"), CounterConcurroid())
        assert e.find("ct").label == "ct"
        with pytest.raises(KeyError):
            e.find("zz")


class TestWorld:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            World((Priv("pv"), Priv("pv")))

    def test_pcm_lookup(self):
        w = World((CounterConcurroid(),))
        assert w.pcm_of("ct").name == "nat(+)"
        with pytest.raises(KeyError):
            w.pcm_of("zz")

    def test_closed_labels_suppress_env(self):
        conc = CounterConcurroid()
        open_world = World((conc,))
        closed_world = World((conc,), closed_labels=frozenset({"ct"}))
        s = counter_state(conc)
        assert list(open_world.env_moves(s))
        assert not list(closed_world.env_moves(s))

    def test_install_uninstall(self):
        w = World((Priv("pv"),))
        conc = CounterConcurroid()
        w2 = w.install(conc, closed=True)
        assert "ct" in w2.labels()
        assert w2.is_closed(conc)
        w3 = w2.uninstall(conc)
        assert "ct" not in w3.labels()


class TestHide:
    def _world(self):
        return World((Priv("pv"),))

    def test_hide_runs_body_and_reclaims(self):
        conc = CounterConcurroid()
        # Donate the counter cell out of the private heap.
        init = state_of(pv=SubjState(pts(CELL, 0) + pts(ptr(9), "keep"), EMPTY, EMPTY))

        prog = hide(
            conc,
            donate_heap=lambda h: (h.restrict({CELL}), h.remove_all({CELL})),
            initial_self=0,
            body=seq(act(BumpAction(conc)), act(BumpAction(conc)), ret("done")),
        )
        final = run_deterministic(initial_config(self._world(), init, prog))
        assert final.result == "done"
        view = final.view_for(0)
        assert view.labels() == {"pv"}
        assert view.self_of("pv")[CELL] == 2  # mutations visible after reclaim
        assert view.self_of("pv")[ptr(9)] == "keep"

    def test_hidden_label_shielded_from_env(self):
        conc = CounterConcurroid()
        init = state_of(pv=SubjState(pts(CELL, 0), EMPTY, EMPTY))
        prog = hide(
            conc,
            donate_heap=lambda h: (h, EMPTY),
            initial_self=0,
            body=act(BumpAction(conc)),
        )
        config = initial_config(self._world(), init, prog)
        # After normalization the hidden label exists but is closed: no
        # environment step may touch it (Priv steps remain possible).
        from repro.semantics.interp import env_successors

        for succ in env_successors(config):
            assert succ.joints["ct"] == config.joints["ct"]
            assert succ.env_selfs["ct"] == config.env_selfs["ct"]

    def test_bad_decoration_rejected(self):
        conc = CounterConcurroid()
        init = state_of(pv=SubjState(pts(CELL, 0), EMPTY, EMPTY))
        prog = hide(
            conc,
            donate_heap=lambda h: (h, h),  # overlapping split!
            initial_self=0,
            body=ret(None),
        )
        with pytest.raises(ProgramError):
            initial_config(self._world(), init, prog)

    def test_label_collision_rejected(self):
        conc = CounterConcurroid()
        world = World((Priv("pv"), CounterConcurroid()))
        init = State(
            {
                "pv": SubjState(pts(CELL, 0), EMPTY, EMPTY),
                "ct": CounterConcurroid().initial(),
            }
        )
        prog = hide(
            conc,
            donate_heap=lambda h: (h, EMPTY),
            initial_self=0,
            body=ret(None),
        )
        with pytest.raises(ProgramError):
            initial_config(world, init, prog)

    def test_nested_hide(self):
        c1 = CounterConcurroid(label="c1")
        c2 = CounterConcurroid(label="c2")
        init = state_of(pv=SubjState(pts(CELL, 0), EMPTY, EMPTY))
        inner = hide(
            c2,
            donate_heap=lambda h: (h.restrict({CELL}), h.remove_all({CELL})),
            initial_self=0,
            body=act(BumpAction(c2)),
        )
        outer = hide(
            c1,
            donate_heap=lambda h: (EMPTY, h),  # donate nothing...
            initial_self=0,
            body=inner,
        )
        # c1's coherence requires CELL in its joint -> donating nothing is
        # incoherent; use a counter whose joint can be empty instead.
        # Simpler: just nest two scopes over disjoint cells.
        init2 = state_of(
            pv=SubjState(pts(CELL, 0), EMPTY, EMPTY)
        )
        prog = hide(
            c1,
            donate_heap=lambda h: (h.restrict({CELL}), h.remove_all({CELL})),
            initial_self=0,
            body=seq(act(BumpAction(c1)), ret("ok")),
        )
        final = run_deterministic(initial_config(self._world(), init2, prog))
        assert final.result == "ok"

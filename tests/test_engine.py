"""Tests of the parallel cached verification engine (repro.engine).

Covers the ISSUE 2 acceptance surface: parallel/serial equivalence,
cache hit/invalidation/corruption behaviour, the serial degeneration of
``--jobs 1``, the CLI exit conventions, and the re-entrant pre-pass skip
accounting the engine depends on.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.verify import (
    ObligationResult,
    ReportBuilder,
    VerificationReport,
    set_prepass,
)
from repro.engine import (
    ObligationCache,
    program_fingerprint,
    resolve_programs,
    run_sweep,
    sweep,
)
from repro.structures.registry import ProgramInfo

#: Fast registry rows: enough for equivalence without minutes of wall time.
FAST_PROGRAMS = ("CAS-lock", "Ticketed lock", "CG increment")

ROOT = Path(__file__).resolve().parent.parent


def _verdicts(result):
    """Everything that must be identical across execution strategies."""
    return {
        o.name: (
            o.report.ok,
            {
                ob.name: (ob.ok, tuple(ob.issues), ob.prepass_skips)
                for ob in o.report.obligations
            },
            o.report.counts_by_category(),
        )
        for o in result.outcomes
    }


# -- a tiny synthetic case study for cache-behaviour tests ---------------------

FAKE_MODULE = "engine_cache_probe"

_CALLS: list[str] = []


def _fake_verifier(**kwargs) -> VerificationReport:
    _CALLS.append("run")
    builder = ReportBuilder("Fake")
    builder.obligation("trivial", "Libs", lambda: [])
    return builder.build()


@pytest.fixture()
def fake_program(tmp_path, monkeypatch):
    """A registry-shaped program whose single module lives in tmp_path."""
    module = tmp_path / f"{FAKE_MODULE}.py"
    module.write_text(
        textwrap.dedent(
            '''
            """Synthetic module backing the engine cache tests."""
            VALUE = 1
            '''
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib_invalidate()
    _CALLS.clear()
    info = ProgramInfo(
        name="Fake",
        concurroids={},
        modules=(FAKE_MODULE,),
        verifier=_fake_verifier,
    )
    yield info, module
    importlib_invalidate()


def importlib_invalidate():
    import importlib

    importlib.invalidate_caches()
    sys.modules.pop(FAKE_MODULE, None)


class TestCache:
    def test_cold_then_warm_hit(self, fake_program, tmp_path):
        info, __ = fake_program
        cache_dir = tmp_path / "cache"
        cold = sweep([info], jobs=1, cache_dir=cache_dir)
        assert not cold.outcome("Fake").cached
        assert _CALLS == ["run"]
        warm = sweep([info], jobs=1, cache_dir=cache_dir)
        assert warm.outcome("Fake").cached
        assert _CALLS == ["run"], "warm rerun must not re-verify"
        assert _verdicts(cold) == _verdicts(warm)

    def test_module_source_edit_invalidates(self, fake_program, tmp_path):
        info, module = fake_program
        cache_dir = tmp_path / "cache"
        before = program_fingerprint(info)
        sweep([info], jobs=1, cache_dir=cache_dir)
        module.write_text(module.read_text().replace("VALUE = 1", "VALUE = 2"))
        assert program_fingerprint(info) != before
        again = sweep([info], jobs=1, cache_dir=cache_dir)
        assert not again.outcome("Fake").cached
        assert _CALLS == ["run", "run"]

    def test_kwargs_change_invalidates(self, fake_program):
        from dataclasses import replace

        info, __ = fake_program
        rebudgeted = replace(info, verifier_kwargs={"env_budget": 3})
        assert program_fingerprint(info) != program_fingerprint(rebudgeted)

    def test_corrupted_cache_falls_back_to_recompute(self, fake_program, tmp_path):
        info, __ = fake_program
        cache_dir = tmp_path / "cache"
        sweep([info], jobs=1, cache_dir=cache_dir)
        path = ObligationCache(cache_dir).path_for("Fake")
        path.write_text("{ this is not json")
        again = sweep([info], jobs=1, cache_dir=cache_dir)
        assert not again.outcome("Fake").cached
        assert _CALLS == ["run", "run"]
        # ...and the entry is healed for the next run.
        assert json.loads(path.read_text())["program"] == "Fake"
        healed = sweep([info], jobs=1, cache_dir=cache_dir)
        assert healed.outcome("Fake").cached

    def test_no_cache_never_touches_disk(self, fake_program, tmp_path):
        info, __ = fake_program
        cache_dir = tmp_path / "cache"
        sweep([info], jobs=1, cache=False, cache_dir=cache_dir, journal=False)
        assert not cache_dir.exists()

    def test_no_cache_writes_journal_but_no_entries(self, fake_program, tmp_path):
        # cache=False still journals (resume must work with the cache
        # off) but must never write cache *entries*.
        info, __ = fake_program
        cache_dir = tmp_path / "cache"
        result = sweep([info], jobs=1, cache=False, cache_dir=cache_dir)
        assert Path(result.journal_path).is_file()
        assert list(cache_dir.glob("*.json")) == []

    def test_colliding_program_names_get_distinct_files(self, tmp_path):
        # "CAS-lock" and "CAS lock" slugify to the same readable stem;
        # without the name digest one would evict the other's entry.
        cache = ObligationCache(tmp_path / "cache")
        assert cache.path_for("CAS-lock") != cache.path_for("CAS lock")
        assert cache.path_for("Fake!") != cache.path_for("fake?")

    def test_store_failure_cleans_up_its_temp_file(self, fake_program, tmp_path, monkeypatch):
        info, __ = fake_program
        cache_dir = tmp_path / "cache"
        result = sweep([info], jobs=1, cache=False)
        report = result.outcome("Fake").report
        cache = ObligationCache(cache_dir)

        def torn_replace(src, dst):
            raise OSError("disk full")

        import os as os_mod

        monkeypatch.setattr(os_mod, "replace", torn_replace)
        with pytest.raises(OSError):
            cache.store("Fake", "fp", report)
        leftovers = [p.name for p in cache_dir.iterdir()]
        assert not any(".tmp." in name for name in leftovers), leftovers

    def test_store_failure_does_not_kill_the_sweep(self, fake_program, tmp_path, monkeypatch):
        info, __ = fake_program
        cache_dir = tmp_path / "cache"

        def no_store(self, *args, **kwargs):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(ObligationCache, "store", no_store)
        result = sweep([info], jobs=1, cache_dir=cache_dir)
        assert result.ok
        assert any("cache store failed" in w for w in result.warnings)

    def test_clear_removes_only_cache_entries(self, fake_program, tmp_path):
        info, __ = fake_program
        cache_dir = tmp_path / "cache"
        # journal=False: the journal dir is clear()'s business too and is
        # covered below — this test isolates the entry/foreign-file rule.
        sweep([info], jobs=1, cache_dir=cache_dir, journal=False)
        foreign = cache_dir / "notes.json"
        foreign.write_text(json.dumps({"todo": "keep me"}))
        invalid = cache_dir / "broken.json"
        invalid.write_text("{ not json")
        cache = ObligationCache(cache_dir)
        assert cache.clear() == 1
        assert foreign.exists()
        assert invalid.exists()
        assert not cache.path_for("Fake").exists()

    def test_clear_also_removes_corrupt_and_journal_dirs(self, fake_program, tmp_path):
        from repro.engine.journal import JOURNAL_DIRNAME

        info, __ = fake_program
        cache_dir = tmp_path / "cache"
        sweep([info], jobs=1, cache_dir=cache_dir)  # entry + journal
        cache = ObligationCache(cache_dir)
        corrupt = cache.corrupt_dir
        corrupt.mkdir(parents=True, exist_ok=True)
        (corrupt / "old-entry.json.1").write_text("{ quarantined")
        (corrupt / "old-entry.json.2").write_text("{ quarantined again")
        journal = cache_dir / JOURNAL_DIRNAME
        journal_files = [p for p in journal.rglob("*") if p.is_file()]
        assert journal_files, "sweep should have journaled"
        # 1 entry + 2 quarantined + the journal files, all counted.
        assert cache.clear() == 1 + 2 + len(journal_files)
        assert not corrupt.exists()
        assert not journal.exists()
        # Idempotent: nothing of ours is left.
        assert cache.clear() == 0

    def test_report_round_trips_through_dict(self):
        report = VerificationReport(
            "demo",
            [
                ObligationResult("a", "Libs", True, [], 0.25, prepass_skips=2),
                ObligationResult("b", "Main", False, ["bad"], 1.5),
            ],
        )
        clone = VerificationReport.from_dict(report.to_dict())
        assert clone.program == report.program
        assert [o.to_dict() for o in clone.obligations] == [
            o.to_dict() for o in report.obligations
        ]


class TestSweep:
    def test_jobs_1_degenerates_to_serial(self, fake_program, monkeypatch):
        import multiprocessing

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("jobs=1 must not create a process pool")

        monkeypatch.setattr(multiprocessing, "Pool", boom)
        info, __ = fake_program
        result = sweep([info], jobs=1, cache=False)
        assert result.jobs == 1
        assert result.ok

    def test_unknown_program_raises_keyerror_listing_known(self):
        with pytest.raises(KeyError) as exc:
            resolve_programs(["No such thing"])
        assert "No such thing" in str(exc.value)
        assert "CAS-lock" in str(exc.value)

    @pytest.mark.slow
    def test_parallel_equals_serial_on_three_case_studies(self):
        serial = run_sweep(names=list(FAST_PROGRAMS), jobs=1, cache=False)
        parallel = run_sweep(names=list(FAST_PROGRAMS), jobs=3, cache=False)
        assert serial.jobs == 1
        assert parallel.jobs == 3
        assert _verdicts(serial) == _verdicts(parallel)
        assert serial.ok and parallel.ok

    @pytest.mark.slow
    def test_registry_cache_round_trip(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_sweep(names=["CG increment"], jobs=1, cache_dir=cache_dir)
        warm = run_sweep(names=["CG increment"], jobs=1, cache_dir=cache_dir)
        assert warm.hits == 1
        assert _verdicts(cold) == _verdicts(warm)
        # Replayed wall time is file I/O, not verification.
        assert warm.outcome("CG increment").seconds < cold.outcome("CG increment").seconds


class TestScopedSkipAccounting:
    """Regression: skip attribution must be scoped, not global-delta."""

    class _AlwaysDischarges:
        def __init__(self):
            self.skipped = []
            self.consulted = 0

        def discharges(self, assertion, name, conc, states):
            self.consulted += 1
            self.skipped.append(name)
            return True

    @pytest.fixture()
    def prepass(self):
        pp = self._AlwaysDischarges()
        set_prepass(pp)
        yield pp
        set_prepass(None)

    @staticmethod
    def _skip_one(name):
        from repro.core.stability import check_stability

        issues = check_stability(lambda s: True, name, None, [object()])
        assert issues == []

    def test_nested_obligations_attribute_to_innermost(self, prepass):
        builder = ReportBuilder("demo")

        def outer():
            self._skip_one("outer-assert")
            inner = builder.obligation(
                "inner", "Stab", lambda: self._skip_one("inner-assert") or []
            )
            # The buggy global-delta accounting charged the outer
            # obligation with the inner one's skip as well (delta = 2).
            assert inner.prepass_skips == 1
            return []

        result = builder.obligation("outer", "Stab", outer)
        assert result.prepass_skips == 1
        assert prepass.skipped == ["outer-assert", "inner-assert"]

    def test_skips_outside_any_obligation_are_not_lost_track_of(self, prepass):
        # No obligation in flight: recording is a no-op, not a crash.
        self._skip_one("floating")
        assert prepass.skipped == ["floating"]

    def test_sequential_obligations_each_count_their_own(self, prepass):
        builder = ReportBuilder("demo")
        first = builder.obligation(
            "one", "Stab", lambda: self._skip_one("a") or []
        )
        second = builder.obligation(
            "two",
            "Stab",
            lambda: (self._skip_one("b"), self._skip_one("c")) and [],
        )
        assert first.prepass_skips == 1
        assert second.prepass_skips == 2


class TestCLI:
    def test_unknown_program_exits_2_with_stderr_message(self, capsys):
        from repro.__main__ import main

        code = main(["verify", "--program", "Bogus", "--no-cache"])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro-verify" in err
        assert "Bogus" in err

    def test_lint_and_verify_agree_on_unknown_program_exit(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "--program", "Bogus"]) == 2
        assert main(["verify", "--program", "Bogus", "--no-cache"]) == 2

    @pytest.mark.slow
    def test_verify_json_output(self, capsys, tmp_path):
        from repro.__main__ import main

        code = main(
            [
                "verify",
                "--program",
                "CG increment",
                "--jobs",
                "1",
                "--format",
                "json",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["programs"][0]["program"] == "CG increment"
        assert payload["programs"][0]["cached"] is False

    def test_eval_main_returns_exit_code(self, monkeypatch, capsys):
        # Regression: eval used to raise SystemExit from deep inside the
        # report module, leaving ``python -m repro``'s return unreachable.
        import repro.eval.report as report_mod

        stub = report_mod.EvaluationReport(issues=["synthetic failure"])
        monkeypatch.setattr(
            report_mod, "run_evaluation", lambda **kwargs: stub
        )
        assert report_mod.main() == 1
        stub_ok = report_mod.EvaluationReport()
        monkeypatch.setattr(
            report_mod, "run_evaluation", lambda **kwargs: stub_ok
        )
        assert report_mod.main() == 0
        from repro.__main__ import main

        assert main(["eval", "--jobs", "1", "--no-cache"]) == 0


class TestStableDigest:
    def test_equal_structures_equal_digests_despite_distinct_ids(self):
        from repro.core.prog import act, par
        from repro.core.world import World
        from repro.semantics.interp import initial_config

        from .helpers import BumpAction, CounterConcurroid, counter_state

        def build():
            conc = CounterConcurroid(cap=3)
            world = World((conc,))
            prog = par(act(BumpAction(conc)), act(BumpAction(conc)))
            return initial_config(world, counter_state(conc), prog)

        one, two = build(), build()
        # position_key embeds ids of the (distinct) action instances...
        assert one.position_key() != two.position_key()
        # ...but the stable digest is content-addressed.
        assert one.stable_digest() == two.stable_digest()

    def test_digest_stable_across_processes(self):
        import os
        import subprocess

        script = (
            "from repro.semantics.interp import stable_digest;"
            "print(stable_digest((1, 'x', {'a': (2, 3)}, frozenset({4, 5}))))"
        )
        runs = set()
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONPATH"] = str(ROOT / "src")
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
                cwd=str(ROOT),
            )
            runs.add(proc.stdout.strip())
        assert len(runs) == 1

    def test_digest_distinguishes_different_states(self):
        from repro.semantics.interp import stable_digest

        assert stable_digest((1, 2)) != stable_digest((2, 1))

"""Tests of the interpreter: subjective views, forking, joining, actions."""

import pytest

from repro.core.errors import CrashError, ProgramError
from repro.core.prog import act, bind, ffix, par, ret, seq
from repro.core.world import World
from repro.semantics.explore import run_deterministic
from repro.semantics.interp import do_action, initial_config, normalize

from .helpers import CELL, BumpAction, CounterConcurroid, ReadCounterAction, counter_state


@pytest.fixture()
def conc():
    return CounterConcurroid(cap=10)


@pytest.fixture()
def world(conc):
    return World((conc,))


def bump_prog(conc):
    return act(BumpAction(conc))


class TestBasics:
    def test_ret_program(self, world, conc):
        cfg = initial_config(world, counter_state(conc), ret(42))
        assert cfg.done
        assert cfg.result == 42

    def test_bind_chains(self, world, conc):
        prog = bind(ret(1), lambda x: ret(x + 1))
        cfg = initial_config(world, counter_state(conc), prog)
        assert cfg.result == 2

    def test_seq_returns_last(self, world, conc):
        cfg = initial_config(world, counter_state(conc), seq(ret(1), ret(2), ret(3)))
        assert cfg.result == 3

    def test_single_action(self, world, conc):
        cfg = initial_config(world, counter_state(conc), bump_prog(conc))
        assert not cfg.done
        cfg2 = do_action(cfg, 0)
        assert cfg2.done
        assert cfg2.result == 0
        assert cfg2.joints[conc.label][CELL] == 1

    def test_view_reflects_env(self, world, conc):
        cfg = initial_config(world, counter_state(conc, 1, 2), ret(None))
        view = cfg.view_for(0)
        assert view.self_of(conc.label) == 1
        assert view.other_of(conc.label) == 2

    def test_deterministic_run(self, world, conc):
        prog = seq(bump_prog(conc), bump_prog(conc), act(ReadCounterAction(conc)))
        final = run_deterministic(initial_config(world, counter_state(conc), prog))
        assert final.result == 2

    def test_action_crash_on_unsafe(self, world, conc):
        small = CounterConcurroid(cap=0)
        w = World((small,))
        cfg = initial_config(w, counter_state(small), act(BumpAction(small)))
        with pytest.raises(CrashError):
            do_action(cfg, 0)


class TestForkJoin:
    def test_par_returns_pair(self, world, conc):
        prog = par(ret("l"), ret("r"))
        cfg = initial_config(world, counter_state(conc), prog)
        assert cfg.result == ("l", "r")

    def test_children_start_with_unit(self, world, conc):
        probe = {}

        class Probe(ReadCounterAction):
            def step(self, state, *args):
                probe["self"] = state.self_of(self._conc.label)
                probe["other"] = state.other_of(self._conc.label)
                return super().step(state, *args)

        prog = par(act(Probe(conc)), ret(None))
        cfg = initial_config(world, counter_state(conc, 3, 0), prog)
        run_deterministic(cfg)
        assert probe["self"] == 0  # child owns nothing yet
        assert probe["other"] == 3  # parent's contribution is its `other`

    def test_join_folds_contributions(self, world, conc):
        prog = par(bump_prog(conc), bump_prog(conc))
        final = run_deterministic(initial_config(world, counter_state(conc, 1, 0), prog))
        view = final.view_for(0)
        assert view.self_of(conc.label) == 3  # 1 + two children's bumps
        assert final.joints[conc.label][CELL] == 3

    def test_sibling_contribution_visible_as_other(self, world, conc):
        seen = []

        class Probe(ReadCounterAction):
            def step(self, state, *args):
                seen.append(state.other_of(self._conc.label))
                return super().step(state, *args)

        # Left bumps first (deterministic scheduler picks lowest tid),
        # then right observes the sibling's contribution in `other`.
        prog = par(bump_prog(conc), act(Probe(conc)))
        run_deterministic(initial_config(world, counter_state(conc), prog))
        assert seen == [1]

    def test_nested_par(self, world, conc):
        prog = par(par(ret(1), ret(2)), ret(3))
        cfg = initial_config(world, counter_state(conc), prog)
        assert cfg.result == ((1, 2), 3)


class TestRecursion:
    def test_ffix_countdown(self, world, conc):
        def gen(loop):
            def body(n):
                if n == 0:
                    return ret("done")
                return bind(act(BumpAction(conc)), lambda __: loop(n - 1))

            return body

        countdown = ffix(gen)
        final = run_deterministic(initial_config(world, counter_state(conc), countdown(3)))
        assert final.result == "done"
        assert final.joints[conc.label][CELL] == 3

    def test_pure_divergence_detected(self, world, conc):
        diverge = ffix(lambda loop: lambda: loop())
        with pytest.raises(ProgramError):
            initial_config(world, counter_state(conc), diverge())


class TestSignatures:
    def test_shared_signature_stable_under_pure_steps(self, world, conc):
        cfg = initial_config(world, counter_state(conc), act(ReadCounterAction(conc)))
        sig = cfg.shared_signature()
        cfg2 = do_action(cfg, 0)
        assert cfg2.shared_signature() == sig

    def test_shared_signature_changes_on_bump(self, world, conc):
        cfg = initial_config(world, counter_state(conc), bump_prog(conc))
        assert do_action(cfg, 0).shared_signature() != cfg.shared_signature()

    def test_pending_action_identity(self, world, conc):
        cfg = initial_config(world, counter_state(conc), bump_prog(conc))
        assert cfg.pending_action(0) is not None
        assert cfg.pending_action(99) is None

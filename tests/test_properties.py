"""Property-based tests (hypothesis) for the core algebraic substrates.

The PCM laws, heap laws, graph lemmas and history invariants are the
facts the whole framework leans on; here they are tested over randomly
generated structures, far beyond the curated samples the verifier uses.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    GraphView,
    connected,
    front,
    graph_heap,
    is_tree,
    max_tree2_holds,
    maximal,
    reachable,
    subgraph,
)
from repro.graphs.lemmas import MarkedGraph
from repro.heap import EMPTY, Heap, heap_of, pts, ptr
from repro.pcm.histories import HistEntry, History, HistoryPCM
from repro.pcm.mutex import MutexPCM
from repro.pcm.natpcm import NatPCM
from repro.pcm.product import ProductPCM
from repro.pcm.setpcm import SetPCM

# -- strategies ----------------------------------------------------------------------


def small_heaps() -> st.SearchStrategy[Heap]:
    return st.dictionaries(
        st.integers(min_value=1, max_value=8).map(ptr),
        st.integers(min_value=0, max_value=3),
        max_size=5,
    ).map(heap_of)


def small_sets() -> st.SearchStrategy[frozenset]:
    return st.frozensets(st.integers(min_value=0, max_value=6), max_size=4)


def small_graphs(n: int = 5) -> st.SearchStrategy[GraphView]:
    def build(seed: int) -> GraphView:
        rng = random.Random(seed)
        size = rng.randint(1, n)
        adjacency = {
            node: (rng.randint(0, size), rng.randint(0, size))
            for node in range(1, size + 1)
        }
        marked = frozenset(
            node for node in range(1, size + 1) if rng.random() < 0.3
        )
        return GraphView(graph_heap(adjacency, marked))

    return st.integers(min_value=0, max_value=10_000).map(build)


def histories() -> st.SearchStrategy[History]:
    entry = st.tuples(st.integers(0, 3), st.integers(0, 3)).map(
        lambda p: HistEntry(p[0], p[1])
    )
    return st.dictionaries(st.integers(min_value=1, max_value=9), entry, max_size=5).map(
        History
    )


# -- heap laws --------------------------------------------------------------------------


class TestHeapProperties:
    @given(small_heaps(), small_heaps())
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(small_heaps(), small_heaps(), small_heaps())
    def test_join_associative(self, a, b, c):
        assert a.join(b.join(c)) == a.join(b).join(c)

    @given(small_heaps())
    def test_unit(self, h):
        assert h.join(EMPTY) == h

    @given(small_heaps(), small_heaps())
    def test_valid_join_implies_disjoint(self, a, b):
        if a.join(b).is_valid:
            assert not (a.dom() & b.dom())

    @given(small_heaps())
    def test_restrict_remove_partition(self, h):
        some = frozenset(list(h.dom())[: len(h) // 2])
        assert h.restrict(some).join(h.remove_all(some)) == h

    @given(small_heaps())
    def test_free_shrinks_domain(self, h):
        for p in h.dom():
            assert h.free(p).dom() == h.dom() - {p}

    @given(small_heaps())
    def test_alloc_fresh_and_disjoint(self, h):
        p, h2 = h.alloc("v")
        assert p not in h
        assert h2.free(p) == h


# -- PCM laws over random elements ----------------------------------------------------------


class TestPCMProperties:
    @given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50))
    def test_nat_assoc_comm(self, a, b, c):
        pcm = NatPCM()
        assert pcm.join(a, b) == pcm.join(b, a)
        assert pcm.join(a, pcm.join(b, c)) == pcm.join(pcm.join(a, b), c)

    @given(small_sets(), small_sets())
    def test_set_join_valid_iff_disjoint(self, a, b):
        pcm = SetPCM()
        assert pcm.valid(pcm.join(a, b)) == (not (a & b))

    @given(small_sets())
    def test_set_splits_recombine(self, x):
        pcm = SetPCM()
        for left, right in pcm.splits(x):
            assert pcm.join(left, right) == x

    @given(st.integers(0, 12))
    def test_nat_splits_recombine(self, x):
        pcm = NatPCM()
        assert all(a + b == x for a, b in pcm.splits(x))
        assert len(list(pcm.splits(x))) == x + 1

    @given(histories(), histories())
    def test_history_join_commutative(self, a, b):
        pcm = HistoryPCM()
        assert pcm.join(a, b) == pcm.join(b, a)

    @given(histories())
    def test_history_splits_recombine(self, h):
        pcm = HistoryPCM()
        for left, right in pcm.splits(h):
            assert pcm.join(left, right) == h

    @given(st.sampled_from(list(MutexPCM().sample())), st.integers(0, 5))
    def test_product_validity_componentwise(self, m, n):
        pcm = ProductPCM(MutexPCM(), NatPCM())
        assert pcm.valid((m, n))


# -- graph lemmas over random graphs -----------------------------------------------------------


class TestGraphProperties:
    @settings(max_examples=60)
    @given(small_graphs())
    def test_reachable_closed_under_edges(self, g):
        for root in g.nodes():
            reach = reachable(g, root)
            for x in reach:
                for y in g.successors(x):
                    if y and y in g:
                        assert y in reach

    @settings(max_examples=60)
    @given(small_graphs())
    def test_whole_node_set_is_maximal(self, g):
        assert maximal(g, g.nodes())

    @settings(max_examples=60)
    @given(small_graphs())
    def test_front_monotone_in_target(self, g):
        nodes = sorted(g.nodes())
        if not nodes:
            return
        t = frozenset(nodes[:1])
        if front(g, t, frozenset(nodes[:2])):
            assert front(g, t, g.nodes())

    @settings(max_examples=60)
    @given(small_graphs())
    def test_singleton_tree_iff_no_self_loop(self, g):
        for x in g.nodes():
            expected = x not in g.successors(x)
            assert is_tree(g, x, frozenset((x,))) == expected

    @settings(max_examples=40)
    @given(small_graphs(4))
    def test_max_tree2_universal(self, g):
        from itertools import combinations

        nodes = sorted(g.nodes())
        subsets = [frozenset(c) for r in range(3) for c in combinations(nodes, r)]
        for x in nodes:
            y1, y2 = g.successors(x)
            for t1 in subsets[:6]:
                for t2 in subsets[:6]:
                    assert max_tree2_holds(g, x, y1, y2, t1, t2)

    @settings(max_examples=60)
    @given(small_graphs())
    def test_marking_step_preserves_subgraph(self, g):
        marked = g.marked_nodes()
        s1 = MarkedGraph(g, frozenset(), marked)
        for x in sorted(g.unmarked_nodes()):
            g2 = GraphView(g.mark_node(x))
            s2 = MarkedGraph(g2, frozenset((x,)), marked)
            assert subgraph(s1, s2)

    @settings(max_examples=60)
    @given(small_graphs())
    def test_connected_downward_closed_under_reachability(self, g):
        for root in sorted(g.nodes())[:2]:
            reach = reachable(g, root)
            assert connected(g, root, reach)


# -- history invariants ---------------------------------------------------------------------------


class TestHistoryProperties:
    @given(histories())
    def test_continuity_implies_dense_timestamps(self, h):
        if h.continuous_from(0):
            assert sorted(h.timestamps()) == list(range(1, len(h) + 1))

    @given(st.lists(st.integers(0, 3), max_size=5))
    def test_replay_chain_is_continuous(self, values):
        entries = {}
        state = 0
        for i, v in enumerate(values, start=1):
            entries[i] = HistEntry(state, v)
            state = v
        h = History(entries)
        assert h.continuous_from(0)
        assert h.final_state(0) == state

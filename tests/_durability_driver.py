"""Subprocess driver for the durability chaos tests.

Runs a small synthetic sweep (fast module-level verifiers, no real case
studies) with journaling into a caller-chosen cache directory, and
prints the bits the test asserts on as one JSON object.  Invoked as::

    python tests/_durability_driver.py CACHE_DIR [--resume] \
        [--faults SPEC] [--split] [--jobs N]

The test SIGKILLs this process mid-sweep via an injected ``sigkill``
fault, re-invokes it with ``--resume``, and compares the output against
an uninterrupted run — so everything emitted here must be deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.verify import ReportBuilder  # noqa: E402
from repro.engine import sweep  # noqa: E402
from repro.structures.registry import ProgramInfo  # noqa: E402


def _ok_verifier(**kwargs):
    builder = ReportBuilder(kwargs.get("label", "ok"))
    builder.obligation("trivial", "Libs", lambda: [])
    builder.obligation("main", "Main", lambda: [])
    return builder.build()


def _failing_verifier(**kwargs):
    builder = ReportBuilder(kwargs.get("label", "failing"))
    builder.obligation("good", "Libs", lambda: [])
    builder.obligation(
        "bad", "Main", lambda: ["postcondition violated: x == 0"]
    )
    return builder.build()


def _mk(name: str, verifier=_ok_verifier) -> ProgramInfo:
    return ProgramInfo(
        name=name,
        concurroids={},
        modules=(),
        verifier=verifier,
        verifier_kwargs={"label": name},
    )


#: Deterministic trio: two clean programs around one failing one, so the
#: resumed sweep must reproduce a *mixed* verdict set, not just "all ok".
PROGRAMS = (
    _mk("Alpha"),
    _mk("Failing", _failing_verifier),
    _mk("Gamma"),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("cache_dir")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--faults", default=None)
    parser.add_argument("--split", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    result = sweep(
        PROGRAMS,
        jobs=args.jobs,
        cache=False,
        cache_dir=args.cache_dir,
        prepass=False,
        faults=args.faults,
        resume=args.resume,
        split_obligations=args.split,
    )
    verdicts = {
        o.name: {
            "status": o.status,
            "obligations": {
                ob.name: [ob.ok, list(ob.issues), len(ob.witnesses)]
                for ob in (o.report.obligations if o.report else [])
            },
        }
        for o in result.outcomes
    }
    print(
        json.dumps(
            {
                "exit_code": result.exit_code(),
                "verdicts": verdicts,
                "replayed_units": result.replayed,
                "interrupted": result.interrupted,
                "warnings": result.warnings,
                "journal": result.journal_path,
            },
            sort_keys=True,
        )
    )
    return result.exit_code()


if __name__ == "__main__":
    sys.exit(main())

"""The POR soundness gate: reduced search ≡ unreduced search.

Partial-order reduction may only prune redundant interleavings — for
every representative Main scenario of every registry program
(:mod:`repro.analysis.scenarios`), exploring with ``por=True`` must
produce the same verdict and the same terminal set (results + final
shared states) as the exhaustive search, and never explore more.

Where the static analysis can't certify independence (family caps,
instance blow-ups, unknown pending keys) the oracle fails open and the
two searches coincide exactly; where it can, the equality below is the
evidence the ample-set construction is sound on this framework's actual
models, not just on paper.
"""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import (
    POR_SCENARIOS,
    por_scenarios,
    run_scenario,
    terminal_signature,
)


def test_every_registry_program_has_a_scenario():
    """Adding a 12th case study must force a POR gate scenario for it."""
    from repro.structures.registry import all_programs

    covered = {s.program for s in POR_SCENARIOS}
    missing = [info.name for info in all_programs() if info.name not in covered]
    assert not missing, f"registry programs without a POR gate scenario: {missing}"


@pytest.mark.parametrize("scenario", POR_SCENARIOS, ids=[s.key for s in POR_SCENARIOS])
def test_por_preserves_verdict_and_terminals(scenario):
    base = run_scenario(scenario, por=False)
    reduced = run_scenario(scenario, por=True)

    # Same verdict (violation-freeness) and same truncation behaviour.
    assert (not base.violations) == (not reduced.violations)
    assert bool(base.truncated) == bool(reduced.truncated)

    # Same terminal set: every result and final shared state the full
    # search reaches, the reduced search reaches too — and vice versa.
    assert terminal_signature(base) == terminal_signature(reduced)

    # Reduction is a reduction: never more configurations, and the
    # pruned count accounts exactly for any difference in expansions.
    assert reduced.explored <= base.explored
    if not reduced.por_active:
        assert reduced.explored == base.explored
        assert reduced.por_pruned == 0


def test_reduction_happens_somewhere():
    """At least one registry scenario genuinely shrinks (else the oracle
    is dead weight and the A/B flag measures nothing)."""
    wins = []
    for scenario in por_scenarios(["Pair snapshot"]):
        base = run_scenario(scenario, por=False)
        reduced = run_scenario(scenario, por=True)
        if reduced.explored < base.explored:
            wins.append((scenario.key, base.explored, reduced.explored))
    assert wins, "POR reduced no pair-snapshot scenario"

"""Heap substrate: pointers and union-map heaps (paper §3.2)."""

from .heap import EMPTY, UNDEF, Heap, empty, heap_of, join_all, pts
from .pointers import NULL, Ptr, fresh_ptr, ptr, ptrs

__all__ = [
    "EMPTY",
    "UNDEF",
    "Heap",
    "empty",
    "heap_of",
    "join_all",
    "pts",
    "NULL",
    "Ptr",
    "fresh_ptr",
    "ptr",
    "ptrs",
]

"""Union-map style heaps.

Heaps are finite maps from (non-null) pointers to values, with *disjoint
union* ``\\+`` as the PCM join.  Following mathcomp's union-maps (which the
paper's implementation reuses, see §3.2), the carrier includes a single
undefined heap ``UNDEF`` that absorbs joins: joining two heaps with
overlapping domains yields ``UNDEF``, and ``valid h`` distinguishes proper
heaps from it.  This mirrors the Coq development where ``valid h`` appears
as the first conjunct of the ``graph`` predicate.

Heaps are immutable; all operations return new heaps.  Values must be
hashable (the case studies store booleans, pointers and small tuples).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from .pointers import NULL, Ptr, fresh_ptr


class Heap:
    """An immutable finite map from pointers to values, or the undefined heap.

    Use :func:`empty`, :func:`pts`, :func:`heap_of` and :meth:`join` to
    build heaps; ``h1.join(h2)`` is the paper's ``h1 \\+ h2``.
    """

    __slots__ = ("_items", "_hash", "_is_valid")

    def __init__(self, items: Mapping[Ptr, Any] | None = None, *, _valid: bool = True):
        if not _valid:
            self._items: dict[Ptr, Any] = {}
            self._is_valid = False
        else:
            items = dict(items or {})
            for p in items:
                if not isinstance(p, Ptr):
                    raise TypeError(f"heap domain must contain Ptr, got {p!r}")
                if p == NULL:
                    raise ValueError("null pointer cannot be in a heap domain")
            self._items = items
            self._is_valid = True
        self._hash: int | None = None

    # -- basic observations -------------------------------------------------

    @property
    def is_valid(self) -> bool:
        """``valid h`` — true for every heap except ``UNDEF``."""
        return self._is_valid

    def dom(self) -> frozenset[Ptr]:
        """The domain of the heap (empty for ``UNDEF``)."""
        return frozenset(self._items)

    def __contains__(self, p: Ptr) -> bool:
        return self._is_valid and p in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Ptr]:
        return iter(self._items)

    def items(self) -> Iterator[tuple[Ptr, Any]]:
        return iter(self._items.items())

    def get(self, p: Ptr, default: Any = None) -> Any:
        return self._items.get(p, default)

    def __getitem__(self, p: Ptr) -> Any:
        if not self._is_valid:
            raise KeyError("read from the undefined heap")
        return self._items[p]

    @property
    def is_empty(self) -> bool:
        return self._is_valid and not self._items

    # -- PCM structure -------------------------------------------------------

    def join(self, other: "Heap") -> "Heap":
        """Disjoint union ``self \\+ other``; ``UNDEF`` on domain overlap."""
        if not isinstance(other, Heap):
            raise TypeError(f"cannot join Heap with {other!r}")
        if not self._is_valid or not other._is_valid:
            return UNDEF
        if self._items.keys() & other._items.keys():
            return UNDEF
        merged = dict(self._items)
        merged.update(other._items)
        return Heap(merged)

    def __add__(self, other: "Heap") -> "Heap":
        return self.join(other)

    # -- updates (all return fresh heaps) -------------------------------------

    def free(self, p: Ptr) -> "Heap":
        """``free p h`` — the heap with ``p`` deallocated (§3.2)."""
        if not self._is_valid:
            return UNDEF
        if p not in self._items:
            return self
        rest = dict(self._items)
        del rest[p]
        return Heap(rest)

    def update(self, p: Ptr, value: Any) -> "Heap":
        """Strong update of an *existing* pointer; ``UNDEF`` if absent.

        Heap mutation in the case studies never changes the footprint
        (the concurroid metatheory requires footprint preservation), so an
        update of a dangling pointer is a fault, modelled by ``UNDEF``.
        """
        if not self._is_valid or p not in self._items:
            return UNDEF
        updated = dict(self._items)
        updated[p] = value
        return Heap(updated)

    def alloc(self, value: Any) -> tuple[Ptr, "Heap"]:
        """Extend the heap with a fresh pointer storing ``value``."""
        if not self._is_valid:
            raise ValueError("cannot allocate in the undefined heap")
        p = fresh_ptr(self._items)
        extended = dict(self._items)
        extended[p] = value
        return p, Heap(extended)

    def restrict(self, doms: Iterable[Ptr]) -> "Heap":
        """The sub-heap with domain ``dom(self) ∩ doms``."""
        if not self._is_valid:
            return UNDEF
        keep = set(doms)
        return Heap({p: v for p, v in self._items.items() if p in keep})

    def remove_all(self, doms: Iterable[Ptr]) -> "Heap":
        """The sub-heap with ``doms`` removed from the domain."""
        if not self._is_valid:
            return UNDEF
        drop = set(doms)
        return Heap({p: v for p, v in self._items.items() if p not in drop})

    # -- equality ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Heap):
            return NotImplemented
        if self._is_valid != other._is_valid:
            return False
        return self._items == other._items

    def __hash__(self) -> int:
        if self._hash is None:
            if not self._is_valid:
                self._hash = hash("Heap.UNDEF")
            else:
                self._hash = hash(frozenset(self._items.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._is_valid:
            return "Heap(UNDEF)"
        if not self._items:
            return "Heap(empty)"
        cells = ", ".join(
            f"{p!r} :-> {v!r}" for p, v in sorted(self._items.items(), key=lambda kv: kv[0].addr)
        )
        return f"Heap({cells})"


#: The undefined heap — absorbing element of ``\+``.
UNDEF = Heap(_valid=False)

#: The empty heap — unit of ``\+``.
EMPTY = Heap({})


def empty() -> Heap:
    """The empty heap (PCM unit)."""
    return EMPTY


def pts(p: Ptr, value: Any) -> Heap:
    """The singleton heap ``p :-> value``."""
    if p == NULL:
        raise ValueError("cannot form a singleton heap at null")
    return Heap({p: value})


def heap_of(cells: Mapping[Ptr, Any]) -> Heap:
    """Build a heap from a mapping of cells."""
    return Heap(cells)


def join_all(heaps: Iterable[Heap]) -> Heap:
    """Iterated disjoint union; the empty iterable yields the empty heap."""
    acc = EMPTY
    for h in heaps:
        acc = acc.join(h)
    return acc

"""Pointers for the heap model.

The paper represents graphs and concurrent data structures in a heap whose
domain is a set of pointers, with a distinguished ``null`` pointer that is
never in the domain of any heap.  We model pointers as immutable wrappers
around positive integers; ``NULL`` wraps 0 and is falsy, so idioms like
``if x:`` read naturally in ported code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, order=True)
class Ptr:
    """A heap pointer.  ``Ptr(0)`` is the null pointer."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"pointer address must be non-negative, got {self.addr}")

    @property
    def is_null(self) -> bool:
        return self.addr == 0

    def __bool__(self) -> bool:
        return self.addr != 0

    def __repr__(self) -> str:
        return "null" if self.addr == 0 else f"p{self.addr}"


#: The null pointer.  Never a member of any heap domain.
NULL = Ptr(0)


def ptr(addr: int) -> Ptr:
    """Construct a pointer from a raw address (0 yields ``NULL``)."""
    return Ptr(addr)


def ptrs(*addrs: int) -> tuple[Ptr, ...]:
    """Construct several pointers at once: ``ptrs(1, 2, 3)``."""
    return tuple(Ptr(a) for a in addrs)


def fresh_ptr(used: Iterable[Ptr]) -> Ptr:
    """Return a pointer not in ``used`` (and not null).

    Deterministic: always the smallest unused positive address, so tests
    and replayed schedules allocate identically.
    """
    taken = {p.addr for p in used}
    addr = 1
    while addr in taken:
        addr += 1
    return Ptr(addr)

"""The coarse-grained memory allocator (§4.1, Table 1 row "CG allocator").

"Whereas separation logic always assumes allocation as a primitive
operation, [in FCSL] allocation is definable": ``alloc`` spins on
``try_alloc``, which *transfers* a pointer from a lock-protected pool into
the calling thread's private heap.  The transfer crosses concurroid
boundaries, so it is implemented as a **connector transition** of the
entanglement ``entangle (Priv pv) ALock`` — the "channel-like transitions
[by which] concurroids exchange heap ownership" of §4.1.

Components:

* the pool lives as the resource of a :class:`~.locks.caslock.CASLock`
  (``ALock``); its resource invariant says every free cell is zeroed
  (deallocated memory is scrubbed before returning to the pool);
* connectors ``take`` (pool → private heap, enabled for the lock holder)
  and ``put`` (private heap → pool, also holder-only, cell must be 0);
* ``try_alloc`` = ``try_acquire; (take; release)?`` returning an optional
  pointer; ``alloc`` = the paper's spin loop; ``dealloc`` zeroes the cell,
  then acquires and puts it back.

The transfer actions are erasure-clean: the global real heap is unchanged
(only its logical ownership moves), which the action checker verifies.

The allocator is a client of the *abstract* lock interface for its
acquire/release discipline, and of ``Priv`` for the receiving heap —
exactly the Priv + 3L row of Table 2.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core.action import Action
from ..core.concurroid import Transition
from ..core.entangle import Priv, entangle
from ..core.prog import Prog, act, bind, ffix, ret, seq
from ..core.state import State, SubjState, state_of
from ..heap import EMPTY, Heap, Ptr, heap_of, pts, ptr
from ..pcm.base import UnitPCM
from .locks.caslock import CASLock, make_cas_lock

ALLOC_LABEL = "al"
PRIV_LABEL = "pv"
ALLOC_LOCK_PTR = ptr(100)


def pool_invariant(resource: Heap, __: Any) -> bool:
    """Free cells are zeroed — deallocation must scrub before returning."""
    return all(v == 0 for ___, v in resource.items())


def make_alloc_lock() -> CASLock:
    """``ALock``: the lock guarding the free pool."""
    return make_cas_lock(
        ALLOC_LABEL,
        ALLOC_LOCK_PTR,
        UnitPCM(),
        pool_invariant,
        crit_values=(0,),
    )


class AllocatorStructure:
    """The entangled allocator: ``entangle (Priv pv) ALock`` + connectors.

    Parametric in the lock (any :class:`~.locks.interface.AbstractLock`
    over the ``al`` label works — the Table 2 ``3L`` interchangeability).
    """

    def __init__(self, lock: "AbstractLock | None" = None, priv_values: tuple = (0,)):
        self.lock = lock or make_alloc_lock()
        self.priv = Priv(PRIV_LABEL, value_domain=priv_values, max_cells=2, max_addr=2)
        self.concurroid = entangle(
            self.priv,
            self.lock.concurroid,
            connectors=self._connectors(),
        )
        self.take_action = TakeCellAction(self)
        self.put_action = PutCellAction(self)

    # -- connector transitions (the heap-exchange channel of §4.1) -------------

    def _connectors(self) -> tuple[Transition, ...]:
        lock = self.lock

        def pool_cells(state: State) -> list[Ptr]:
            return sorted(lock.resource(state).dom(), key=lambda q: q.addr)

        def take_params(state: State) -> Iterator[Ptr]:
            yield from pool_cells(state)

        def take_requires(state: State, p: Ptr) -> bool:
            if ALLOC_LABEL not in state or PRIV_LABEL not in state:
                return False
            if not lock.holds(state):
                return False
            return p in lock.resource(state)

        def take_effect(state: State, p: Ptr) -> State:
            value = state.joint_of(ALLOC_LABEL)[p]
            out = state.update(
                ALLOC_LABEL, lambda c: c.with_joint(c.joint.free(p))
            )
            return out.update(
                PRIV_LABEL, lambda c: c.with_self(c.self_.join(pts(p, value)))
            )

        def put_params(state: State) -> Iterator[Ptr]:
            if PRIV_LABEL in state:
                heap = state.self_of(PRIV_LABEL)
                yield from sorted(heap.dom(), key=lambda q: q.addr)

        def put_requires(state: State, p: Ptr) -> bool:
            if ALLOC_LABEL not in state or PRIV_LABEL not in state:
                return False
            if not lock.holds(state):
                return False
            mine = state.self_of(PRIV_LABEL)
            return p in mine and mine[p] == 0  # scrubbed cells only

        def put_effect(state: State, p: Ptr) -> State:
            out = state.update(PRIV_LABEL, lambda c: c.with_self(c.self_.free(p)))
            return out.update(
                ALLOC_LABEL, lambda c: c.with_joint(c.joint.join(pts(p, 0)))
            )

        return (
            Transition("al.take", take_requires, take_effect, take_params),
            Transition("al.put", put_requires, put_effect, put_params),
        )

    # -- programs -----------------------------------------------------------------

    def try_alloc(self) -> Prog:
        """``try_alloc : unit -> option ptr`` — one locked attempt.

        Acquires through the abstract interface (so any lock works),
        takes a cell if one is free, releases; ``None`` on an empty pool.
        """
        return seq(
            self.lock.acquire(),
            bind(
                act(self.take_action),
                lambda p: bind(
                    self.lock.release(lambda aux: aux), lambda __: ret(p)
                ),
            ),
        )

    def alloc(self) -> Prog:
        """The paper's spin loop: retry ``try_alloc`` until a pointer comes."""
        spin = ffix(
            lambda loop: lambda: bind(
                self.try_alloc(),
                lambda res: ret(res) if res is not None else loop(),
            ),
            label="alloc",
        )
        return spin()

    def dealloc(self, p: Ptr) -> Prog:
        """Scrub the cell, then return it to the pool under the lock."""
        return seq(
            act(WritePrivAction(self), p, 0),
            self.lock.acquire(),
            act(self.put_action, p),
            self.lock.release(lambda aux: aux),
            ret(None),
        )

    # -- states ----------------------------------------------------------------------

    def initial_state(
        self,
        pool: tuple[int, ...] = (101, 102),
        my_heap: Heap = EMPTY,
        env_heap: Heap = EMPTY,
    ) -> State:
        pool_heap = heap_of({ptr(a): 0 for a in pool})
        return state_of(
            **{
                PRIV_LABEL: SubjState(my_heap, EMPTY, env_heap),
                ALLOC_LABEL: self.lock.concurroid.initial(pool_heap),
            }
        )


class TakeCellAction(Action):
    """Atomically move one pool cell into the private heap (holder only).

    Returns the pointer, or ``None`` when the pool is empty.  Operationally
    a no-op on the global real heap — pure ownership transfer.
    """

    def __init__(self, alloc: AllocatorStructure):
        super().__init__(alloc.concurroid)
        self._alloc = alloc
        self.name = "al.take"

    def safe(self, state: State, *args: Any) -> bool:
        if ALLOC_LABEL not in state or PRIV_LABEL not in state:
            return False
        return self._alloc.lock.holds(state)

    def step(self, state: State, *args: Any) -> tuple[Optional[Ptr], State]:
        joint = state.joint_of(ALLOC_LABEL)
        cells = sorted(self._alloc.lock.resource(state).dom(), key=lambda q: q.addr)
        if not cells:
            return None, state
        p = cells[0]
        value = joint[p]
        out = state.update(ALLOC_LABEL, lambda c: c.with_joint(c.joint.free(p)))
        out = out.update(
            PRIV_LABEL, lambda c: c.with_self(c.self_.join(pts(p, value)))
        )
        return p, out


class PutCellAction(Action):
    """Atomically return a scrubbed private cell to the pool (holder only)."""

    def __init__(self, alloc: AllocatorStructure):
        super().__init__(alloc.concurroid)
        self._alloc = alloc
        self.name = "al.put"

    def safe(self, state: State, p: Ptr) -> bool:
        if ALLOC_LABEL not in state or PRIV_LABEL not in state:
            return False
        if not self._alloc.lock.holds(state):
            return False
        mine = state.self_of(PRIV_LABEL)
        return p in mine and mine[p] == 0

    def step(self, state: State, p: Ptr) -> tuple[None, State]:
        out = state.update(PRIV_LABEL, lambda c: c.with_self(c.self_.free(p)))
        out = out.update(
            ALLOC_LABEL, lambda c: c.with_joint(c.joint.join(pts(p, 0)))
        )
        return None, out


class WritePrivAction(Action):
    """Write a cell of one's own private heap (used to scrub on dealloc)."""

    def __init__(self, alloc: AllocatorStructure):
        super().__init__(alloc.concurroid)
        self._alloc = alloc
        self.name = "pv.write"

    def safe(self, state: State, p: Ptr, value: Any) -> bool:
        return PRIV_LABEL in state and p in state.self_of(PRIV_LABEL)

    def step(self, state: State, p: Ptr, value: Any) -> tuple[None, State]:
        return None, state.update(
            PRIV_LABEL, lambda c: c.with_self(c.self_.update(p, value))
        )

    def footprint(self, state: State, p: Ptr, value: Any) -> frozenset[Ptr]:
        return frozenset((p,))


# -- verification (Table 1 row "CG allocator") -----------------------------------------------

def alloc_spec(alloc: AllocatorStructure):
    """``{pv_self = h} alloc {exists v, pv_self = r :-> v \\+ h}`` (§4.1)."""
    from ..core.spec import Spec

    def pre(s: State) -> bool:
        return alloc.lock.quiescent(s)

    def post(r: Any, s2: State, s1: State) -> bool:
        if not isinstance(r, Ptr):
            return False
        h1, h2 = s1.self_of(PRIV_LABEL), s2.self_of(PRIV_LABEL)
        if r in h1 or r not in h2:
            return False
        return h2.free(r) == h1 and alloc.lock.quiescent(s2)

    return Spec("alloc_tp", pre, post)


def dealloc_spec(alloc: AllocatorStructure, p: Ptr):
    """``{p :-> v \\+ h = pv_self} dealloc p {pv_self = h}``."""
    from ..core.spec import Spec

    def pre(s: State) -> bool:
        return alloc.lock.quiescent(s) and p in s.self_of(PRIV_LABEL)

    def post(r: Any, s2: State, s1: State) -> bool:
        h1, h2 = s1.self_of(PRIV_LABEL), s2.self_of(PRIV_LABEL)
        return p not in h2 and h1.free(p) == h2 and alloc.lock.quiescent(s2)

    return Spec(f"dealloc_tp({p!r})", pre, post)


def verify_cg_allocator(*, env_budget: int = 1) -> "VerificationReport":
    """Discharge every obligation for the CG allocator.

    Conc/Acts cover the *entanglement connectors* — the one piece of new
    protocol this structure introduces beyond the lock library (the paper
    folds these under its lock infrastructure, hence its "-" entries; see
    EXPERIMENTS.md).
    """
    from ..core.action import check_action
    from ..core.concurroid import check_concurroid, protocol_closure
    from ..core.prog import par
    from ..core.spec import Scenario, Spec
    from ..core.stability import check_stability
    from ..core.verify import ReportBuilder, check_triple, triple_issues
    from ..core.world import World

    alloc = AllocatorStructure()
    builder = ReportBuilder("CG allocator")

    initials = [
        alloc.initial_state(pool=()),
        alloc.initial_state(pool=(101,)),
        alloc.initial_state(pool=(101, 102)),
        alloc.initial_state(pool=(101,), my_heap=pts(ptr(103), 0)),
    ]
    states = sorted(
        protocol_closure(alloc.concurroid, initials, max_states=50_000), key=repr
    )

    def pool_lemmas() -> list:
        issues = []
        if not pool_invariant(pts(ptr(101), 0), None):
            issues.append("zeroed pool cell rejected")
        if pool_invariant(pts(ptr(101), 7), None):
            issues.append("dirty pool cell accepted")
        return issues

    builder.obligation("pool-invariant-lemmas", "Libs", pool_lemmas)

    builder.obligation(
        "entangled-allocator-metatheory",
        "Conc",
        lambda: check_concurroid(alloc.concurroid, states),
    )
    builder.obligation(
        "take-action", "Acts", lambda: check_action(alloc.take_action, states)
    )
    builder.obligation(
        "put-action",
        "Acts",
        lambda: check_action(alloc.put_action, states, [(ptr(101),), (ptr(103),)]),
    )
    builder.obligation(
        "private-cell-stable",
        "Stab",
        lambda: check_stability(
            lambda s: ptr(103) in s.self_of(PRIV_LABEL),
            "p in pv_self",
            alloc.concurroid,
            states,
        ),
    )

    world = World((alloc.concurroid,))
    builder.obligation(
        "alloc-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                alloc_spec(alloc),
                [
                    Scenario(alloc.initial_state(pool=(101, 102)), alloc.alloc(), label="alloc/2"),
                    Scenario(alloc.initial_state(pool=(101,)), alloc.alloc(), label="alloc/1"),
                ],
                max_steps=30,
                env_budget=env_budget,
            )
        ),
    )
    builder.obligation(
        "dealloc-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                dealloc_spec(alloc, ptr(103)),
                [
                    Scenario(
                        alloc.initial_state(pool=(101,), my_heap=pts(ptr(103), 1)),
                        alloc.dealloc(ptr(103)),
                        label="dealloc",
                    )
                ],
                max_steps=30,
                env_budget=env_budget,
            )
        ),
    )

    def par_alloc_post(r: Any, s2: State, s1: State) -> bool:
        p1, p2 = r
        return (
            isinstance(p1, Ptr)
            and isinstance(p2, Ptr)
            and p1 != p2  # distinct cells: ownership transfer is exclusive
            and p1 in s2.self_of(PRIV_LABEL)
            and p2 in s2.self_of(PRIV_LABEL)
        )

    builder.obligation(
        "par-alloc-distinct-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                Spec("par-alloc", lambda s: True, par_alloc_post),
                [
                    Scenario(
                        alloc.initial_state(pool=(101, 102)),
                        par(alloc.alloc(), alloc.alloc()),
                        label="par-alloc",
                    )
                ],
                max_steps=50,
                env_budget=0,
            )
        ),
    )

    return builder.build()

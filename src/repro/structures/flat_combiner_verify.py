"""Verification of the flat combiner (Table 1 row "Flat combiner" — the
largest and slowest row in the paper, and here too).

The distinctive obligations:

* ``Stab`` — the *helping* stability facts: once I have registered, my
  slot holds either my request or a response to it (the environment may
  flip req→resp by helping me, but can never steal or corrupt my slot);
  collected receipts persist.
* ``Main`` — ``flat_combine`` satisfies its spec **with interference
  enabled**, which includes schedules where the environment takes the
  combiner lock and executes my request: the result is still ascribed to
  me.  A dedicated obligation asserts that at least one explored terminal
  was actually helped (the combiner-side worked, not just the self-serve
  path).  The higher-order reuse is witnessed by running the same
  verification over a second sequential structure (a counter).
"""

from __future__ import annotations

from typing import Any

from ..core.action import check_action
from ..core.concurroid import check_concurroid, protocol_closure
from ..core.prog import par
from ..core.spec import Scenario, Spec
from ..core.stability import check_stability
from ..core.state import State
from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
from ..core.world import World
from ..heap import ptr
from ..pcm.histories import hist
from ..pcm.laws import check_all_laws
from ..semantics.interp import initial_config
from .flat_combiner import (
    FlatCombiner,
    FlatCombinerConcurroid,
    flat_combine_spec,
    initial_state,
    seq_counter,
    seq_stack,
)

SLOT_A = ptr(72)
SLOT_B = ptr(73)


def model_concurroid() -> FlatCombinerConcurroid:
    return FlatCombinerConcurroid(
        seq_stack(), slots=(SLOT_A, SLOT_B), max_ops=2, arg_domain=(1,)
    )


def scenario_concurroid(max_ops: int = 3) -> FlatCombinerConcurroid:
    return FlatCombinerConcurroid(
        seq_stack(), slots=(SLOT_A, SLOT_B), max_ops=max_ops, arg_domain=(0, 1)
    )


def verify_flat_combiner(*, env_budget: int = 2) -> VerificationReport:
    """Discharge every obligation for the flat combiner."""
    builder = ReportBuilder("Flat combiner")

    mconc = model_concurroid()
    mfc = FlatCombiner(mconc)

    builder.obligation(
        "fc-pcm-laws",
        "Libs",
        lambda: check_all_laws(mconc.pcms()[mconc.label]),
    )

    def seq_sanity() -> list[str]:
        issues = []
        st = seq_stack()
        if st.run("push", (), 1) != (None, (1,)):
            issues.append("seq stack push broken")
        if st.run("pop", (1, 0), None) != (1, (0,)):
            issues.append("seq stack pop broken")
        if st.run("pop", (), None) != (None, ()):
            issues.append("seq stack pop-empty broken")
        return issues

    builder.obligation("sequential-structure-lemmas", "Libs", seq_sanity)

    states = sorted(
        protocol_closure(mconc, [initial_state(mconc)], max_states=120_000), key=repr
    )

    builder.obligation(
        "flatcombine-metatheory", "Conc", lambda: check_concurroid(mconc, states)
    )

    slot_args = [(SLOT_A,), (SLOT_B,)]
    for action, args in (
        (mfc.try_acquire_slot, slot_args),
        (mfc.register, [(SLOT_A, "push", 1), (SLOT_A, "pop", None)]),
        (mfc.read_slot, slot_args),
        (mfc.try_combine_lock, [()]),
        (mfc.help, slot_args),
        (mfc.combine_unlock, [()]),
        (mfc.collect, slot_args),
        (mfc.release_slot, slot_args),
    ):
        builder.obligation(
            f"action-{action.name}",
            "Acts",
            lambda action=action, args=args: check_action(action, states, args),
        )

    # Stab: the helping facts.
    def my_request_served(s: State) -> bool:
        comp = s[mconc.label]
        if SLOT_A not in mconc.slots_of(comp.self_):
            return True  # vacuous before registration
        cell = comp.joint[SLOT_A]
        return cell[0] in ("idle", "req", "resp")

    builder.obligation(
        "my-slot-only-progresses",
        "Stab",
        lambda: check_stability(
            my_request_served, "own slot req/resp", mconc, states
        ),
    )
    builder.obligation(
        "slot-ownership-stable",
        "Stab",
        lambda: check_stability(
            lambda s: SLOT_A in mconc.slots_of(s[mconc.label].self_),
            "slot is mine",
            mconc,
            states,
        ),
    )
    builder.obligation(
        "collected-receipt-persists",
        "Stab",
        lambda: check_stability(
            lambda s: 1 in mconc.my_contrib(s),
            "receipt@1 is mine",
            mconc,
            states,
        ),
    )

    # Main: the flat_combine triple, with the environment allowed to help.
    conc = scenario_concurroid()
    fc = FlatCombiner(conc)
    world = World((conc,))

    builder.obligation(
        "flat_combine-push-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                flat_combine_spec(conc, "push", 1),
                [Scenario(initial_state(conc), fc.flat_combine(SLOT_A, "push", 1), label="fc push")],
                max_steps=40,
                env_budget=env_budget,
            )
        ),
    )
    builder.obligation(
        "flat_combine-pop-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                flat_combine_spec(conc, "pop", None),
                [
                    Scenario(
                        initial_state(conc),
                        fc.flat_combine(SLOT_A, "pop", None),
                        label="fc pop empty",
                    ),
                    Scenario(
                        initial_state(conc, other_hist=hist((1, (), (1,)))),
                        fc.flat_combine(SLOT_A, "pop", None),
                        label="fc pop nonempty",
                    ),
                ],
                max_steps=40,
                env_budget=env_budget,
            )
        ),
    )

    def par_post(r: Any, s2: State, s1: State) -> bool:
        __, popped = r
        h2 = conc.my_contrib(s2)
        pushes = [e for ___, e in h2.items() if len(e.after) > len(e.before)]
        pops = [e for ___, e in h2.items() if len(e.after) < len(e.before)]
        if len(pushes) != 1:
            return False
        if popped is None:
            return not pops  # pop on empty is receipt-free
        return len(pops) == 1 and pops[0].before[0] == popped

    # The wait loop alternates two actions (read_slot, try_combine_lock),
    # which the single-action stutter pruning cannot collapse, so the
    # exhaustive sweep is depth-bounded (all schedules up to 36 visible
    # steps — terminating two-thread runs need ~20) and complemented by a
    # broad randomized sweep below.
    builder.obligation(
        "par-flat_combine-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                Spec("fc push || fc pop", lambda s: True, par_post),
                [
                    Scenario(
                        initial_state(conc),
                        par(
                            fc.flat_combine(SLOT_A, "push", 1),
                            fc.flat_combine(SLOT_B, "pop", None),
                        ),
                        label="fc push || fc pop",
                    )
                ],
                max_steps=36,
                env_budget=0,
                max_configs=300_000,
            )
        ),
    )

    def randomized_and_helping() -> list[str]:
        """Randomized schedule sweep for push‖pop: every run must satisfy
        the pairwise post, and at least one run must be *genuinely helped*
        — a ``help`` action executed by a thread on the other thread's
        slot (detected from the trace)."""
        import random

        from ..semantics.explore import run_random

        rng = random.Random(2015)
        helped = False
        for run in range(150):
            config = initial_config(
                world,
                initial_state(conc),
                par(
                    fc.flat_combine(SLOT_A, "push", 1),
                    fc.flat_combine(SLOT_B, "pop", None),
                ),
            )
            final, violations = run_random(config, rng, max_steps=500)
            if violations:
                return [str(v) for v in violations[:3]]
            if final is None:
                return [f"randomized run {run} did not terminate"]
            if not par_post(final.result, final.view_for(0), initial_state(conc)):
                return [f"randomized run {run} violates the pairwise post"]
            slot_owner: dict = {}
            for event in final.trace or ():
                if event.kind != "act":
                    continue
                if event.detail.endswith("try_acquire_slot") and event.result:
                    slot_owner[event.args[0]] = event.tid
                if event.detail.endswith(".help"):
                    owner = slot_owner.get(event.args[0])
                    if owner is not None and owner != event.tid:
                        helped = True
        if not helped:
            return ["no randomized schedule exercised helping"]
        return []

    builder.obligation("randomized-sweep-and-helping", "Main", randomized_and_helping)

    # Higher-order reuse: the same construction over a different
    # sequential structure verifies with zero new obligations.
    counter_conc = FlatCombinerConcurroid(
        seq_counter(), slots=(SLOT_A,), max_ops=2, arg_domain=(1,)
    )
    counter_fc = FlatCombiner(counter_conc)
    builder.obligation(
        "fc-counter-instance-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                World((counter_conc,)),
                flat_combine_spec(counter_conc, "add", 1),
                [
                    Scenario(
                        initial_state(counter_conc),
                        counter_fc.flat_combine(SLOT_A, "add", 1),
                        label="fc-counter add",
                    )
                ],
                max_steps=40,
                env_budget=1,
            )
        ),
    )

    return builder.build()

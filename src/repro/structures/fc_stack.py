"""The FC-stack (§4.2/§6): the flat combiner instantiated with a stack.

"In our Coq implementation, we instantiated the FC structure with a
sequential stack, showing that the result has the same spec as a
concurrent stack implementation."  That is precisely what this module
does: push/pop through ``flat_combine`` carry the same history-shaped
specs as the Treiber stack's (:mod:`repro.structures.treiber`) —
one fresh ``s ==> v·s`` entry per push, one ``v·s ==> s`` entry per pop —
even though the operation may physically be run by a *different* thread
(the combiner).

A pure client of the FlatCombine library: no new concurroid, no new
actions, no new stability lemmas — the "-" row of Table 1.
"""

from __future__ import annotations

from typing import Any

from ..core.prog import Prog
from ..core.spec import Spec
from ..core.state import State
from ..core.world import World
from ..heap import Ptr, ptr
from .flat_combiner import (
    FlatCombiner,
    FlatCombinerConcurroid,
    initial_state,
    seq_stack,
)

#: Publication slots for up to three client threads.
SLOTS = (ptr(72), ptr(73), ptr(74))


class FCStack:
    """A concurrent stack whose engine is the flat combiner."""

    def __init__(self, *, max_ops: int = 3, slots: tuple[Ptr, ...] = SLOTS[:2]):
        self.concurroid = FlatCombinerConcurroid(
            seq_stack(), slots=slots, max_ops=max_ops, arg_domain=(0, 1)
        )
        self.fc = FlatCombiner(self.concurroid)
        self.slots = slots

    def push(self, slot: Ptr, value: Any) -> Prog:
        return self.fc.flat_combine(slot, "push", value)

    def pop(self, slot: Ptr) -> Prog:
        return self.fc.flat_combine(slot, "pop", None)

    def world(self) -> World:
        return World((self.concurroid,))

    def initial_state(self, **kwargs) -> State:
        return initial_state(self.concurroid, **kwargs)

    # -- the Treiber-shaped specs -----------------------------------------------------

    def push_spec(self, value: Any) -> Spec:
        """Same shape as ``treiber.push_spec``: one fresh ``s ==> v·s``
        entry ascribed to the caller."""
        conc = self.concurroid

        def pre(s: State) -> bool:
            full = conc.full_history(s)
            return full is not None and len(full) < conc.max_ops

        def post(r: Any, s2: State, s1: State) -> bool:
            h1, h2 = conc.my_contrib(s1), conc.my_contrib(s2)
            fresh = h2.timestamps() - h1.timestamps()
            if len(fresh) != 1:
                return False
            (ts,) = fresh
            entry = h2[ts]
            return entry.after == (value,) + entry.before

        return Spec(f"fc_push_tp({value!r})", pre, post)

    def pop_spec(self) -> Spec:
        """Same shape as ``treiber.pop_spec``: pop-on-empty is receipt-free
        (no history entry), a successful pop owns one ``v·s ==> s`` entry."""
        conc = self.concurroid

        def pre(s: State) -> bool:
            full = conc.full_history(s)
            return full is not None and len(full) < conc.max_ops

        def post(r: Any, s2: State, s1: State) -> bool:
            h1, h2 = conc.my_contrib(s1), conc.my_contrib(s2)
            fresh = h2.timestamps() - h1.timestamps()
            if r is None:
                return not fresh
            if len(fresh) != 1:
                return False
            (ts,) = fresh
            entry = h2[ts]
            return entry.before and entry.before[0] == r and entry.after == entry.before[1:]

        return Spec("fc_pop_tp", pre, post)


# -- verification (Table 1 row "FC-stack") ----------------------------------------------------


def verify_fc_stack(*, env_budget: int = 2) -> "VerificationReport":
    """Discharge the FC-stack obligations — a pure client of the flat
    combiner (Libs + Main only, the "-" row of Table 1)."""
    from ..core.prog import par
    from ..core.spec import Scenario
    from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
    from .flat_combiner import seq_stack as make_seq

    builder = ReportBuilder("FC-stack")

    def seq_oracle() -> list:
        st = make_seq()
        issues = []
        if st.run("push", (), 1) != (None, (1,)):
            issues.append("sequential push oracle broken")
        if st.run("pop", (1,), None) != (1, ()):
            issues.append("sequential pop oracle broken")
        return issues

    builder.obligation("sequential-stack-oracle", "Libs", seq_oracle)

    stack = FCStack()
    builder.obligation(
        "fc-push-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                stack.world(),
                stack.push_spec(1),
                [Scenario(stack.initial_state(), stack.push(stack.slots[0], 1), label="fc push")],
                max_steps=60,
                env_budget=env_budget,
            )
        ),
    )
    builder.obligation(
        "fc-pop-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                stack.world(),
                stack.pop_spec(),
                [
                    Scenario(stack.initial_state(), stack.pop(stack.slots[0]), label="fc pop empty"),
                ],
                max_steps=60,
                env_budget=env_budget,
            )
        ),
    )

    def par_post(r, s2, s1):
        conc = stack.concurroid
        __, popped = r
        h2 = conc.my_contrib(s2)
        pushes = [e for ___, e in h2.items() if len(e.after) > len(e.before)]
        pops = [e for ___, e in h2.items() if len(e.after) < len(e.before)]
        if len(pushes) != 1:
            return False
        if popped is None:
            return not pops  # receipt-free empty pop
        return len(pops) == 1 and pops[0].before[0] == popped

    from ..core.spec import Spec

    builder.obligation(
        "fc-par-push-pop-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                stack.world(),
                Spec("fc push||pop", lambda s: True, par_post),
                [
                    Scenario(
                        stack.initial_state(),
                        par(stack.push(stack.slots[0], 1), stack.pop(stack.slots[1])),
                        label="fc push || fc pop",
                    )
                ],
                max_steps=80,
                env_budget=0,
                max_configs=300_000,
            )
        ),
    )
    return builder.build()

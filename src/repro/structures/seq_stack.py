"""The sequential stack — "obtained from Treiber stack via hiding" (§6).

The whole point of ``hide`` (§3.5) as a *language constructor*: wrapping
the concurrent Treiber stack (together with its allocator) in a hiding
scope shields it from all interference, so the concurrent history-based
specs collapse to ordinary sequential ones — push then pop returns the
pushed value, full stop — **without re-verifying any stack code**.

The hidden concurroid is the entanglement ``ALock ⋈ Treiber`` (with the
allocator-transfer and push connectors); its joints are carved out of the
hiding thread's private heap and returned on exit.  ``Priv`` stays
outside, as in Table 2's row (Priv, 3L, Treiber).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.entangle import Priv
from ..core.prog import HideProg, Prog, bind, ret, seq
from ..core.spec import Spec
from ..core.state import State, SubjState, state_of
from ..core.world import World
from ..heap import EMPTY, NULL, Heap, heap_of, ptr
from ..pcm.histories import History
from ..pcm.mutex import Mutex
from .allocator import ALLOC_LABEL, ALLOC_LOCK_PTR
from .treiber import PRIV_LABEL, TB_LABEL, TOP, TreiberStructure


class SeqStack:
    """A sequential stack: a Treiber stack run under ``hide``."""

    def __init__(self, pool: tuple[int, ...] = (101, 102, 103)):
        self._pool = pool
        self.structure = TreiberStructure(max_ops=2 * len(pool), pool=pool)
        #: The hidden protocol: everything the Treiber structure entangles
        #: except the thread-private Priv, which stays outside the scope.
        self.hidden = _strip_priv(self.structure)

    # -- the decoration (§3.5's Φ) -------------------------------------------------

    def donate(self, h: Heap) -> tuple[dict[str, Any], Heap]:
        """Carve the allocator (lock + pool) and the stack (TOP) regions
        out of the private heap; keep the rest."""
        al_cells = {ALLOC_LOCK_PTR} | {ptr(a) for a in self._pool}
        al_joint = h.restrict(al_cells)
        tb_joint = h.restrict({TOP})
        kept = h.remove_all(al_cells | {TOP})
        return {ALLOC_LABEL: al_joint, TB_LABEL: tb_joint}, kept

    def initial_selfs(self) -> dict[str, Any]:
        return {
            ALLOC_LABEL: (Mutex.NOT_OWN, ()),
            TB_LABEL: History(),
        }

    def scoped(self, body: Prog) -> HideProg:
        """``hide Φ, (NOT_OWN, ∅) { body }``."""
        return HideProg(
            self.hidden,
            donate=self.donate,
            initial_selfs=self.initial_selfs(),
            body=body,
            priv_label=PRIV_LABEL,
        )

    # -- sequential client programs ---------------------------------------------------

    def push(self, value: Any) -> Prog:
        return self.structure.push(value)

    def pop(self) -> Prog:
        return self.structure.pop()

    def run_ops(self, ops: Sequence[tuple[str, Any]]) -> HideProg:
        """Hide the stack and run a straight-line op sequence; returns the
        tuple of every ``pop`` result in order."""

        def build(remaining: tuple, acc: tuple) -> Prog:
            if not remaining:
                return ret(acc)
            (kind, arg), rest = remaining[0], remaining[1:]
            if kind == "push":
                return seq(self.push(arg), build(rest, acc))
            return bind(self.pop(), lambda v, rest=rest, acc=acc: build(rest, acc + (v,)))

        return self.scoped(build(tuple(ops), ()))

    # -- states & specs --------------------------------------------------------------------

    def initial_state(self, extra_heap: Heap = EMPTY) -> State:
        """Everything (lock bit, pool, TOP) sits in the private heap."""
        cells = {ALLOC_LOCK_PTR: False, TOP: NULL}
        cells.update({ptr(a): 0 for a in self._pool})
        return state_of(
            **{PRIV_LABEL: SubjState(heap_of(cells).join(extra_heap), EMPTY, EMPTY)}
        )

    def world(self) -> World:
        return World((Priv(PRIV_LABEL),))

    def sequential_spec(self, ops: Sequence[tuple[str, Any]]) -> Spec:
        """The *sequential* spec hiding buys us: pops return exactly what a
        list-model stack would return, deterministically."""
        expected = _simulate(ops)

        def pre(s: State) -> bool:
            h = s.self_of(PRIV_LABEL)
            return ALLOC_LOCK_PTR in h and TOP in h

        def post(r: Any, s2: State, s1: State) -> bool:
            # The private heap footprint is fully returned by unhide.
            return r == expected and s2.self_of(PRIV_LABEL).dom() == s1.self_of(PRIV_LABEL).dom()

        return Spec(f"seq_stack{tuple(ops)!r}", pre, post)


def _strip_priv(structure: TreiberStructure):
    """The hidden entanglement: the structure's concurroid without Priv."""
    from ..core.entangle import Entangled

    full = structure.concurroid
    parts = tuple(p for p in full.parts if PRIV_LABEL not in p.labels)
    return Entangled(*parts, connectors=full._connectors)


def _simulate(ops: Sequence[tuple[str, Any]]) -> tuple:
    stack: list = []
    pops = []
    for kind, arg in ops:
        if kind == "push":
            stack.insert(0, arg)
        else:
            pops.append(stack.pop(0) if stack else None)
    return tuple(pops)


# -- verification (Table 1 row "Seq. stack") --------------------------------------------------


def verify_seq_stack() -> "VerificationReport":
    """Discharge the sequential-stack obligations.

    A pure client row: the Treiber stack, the allocator and the locks were
    verified once; hiding converts their concurrent specs into the
    sequential ones checked here, so only ``Libs`` (the list-model
    simulation used as the oracle) and ``Main`` appear — the "-" entries
    of Table 1.
    """
    from itertools import product

    from ..core.spec import Scenario
    from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues

    builder = ReportBuilder("Seq. stack")

    def simulate_lemmas() -> list:
        issues = []
        if _simulate([("push", 1), ("pop", None)]) != (1,):
            issues.append("LIFO simulation broken")
        if _simulate([("pop", None)]) != (None,):
            issues.append("empty pop simulation broken")
        return issues

    builder.obligation("list-model-oracle", "Libs", simulate_lemmas)

    def sequential_triples() -> list[str]:
        issues: list[str] = []
        # Every op sequence of length <= 4 over pushes of {0,1} and pops.
        alphabet = [("push", 0), ("push", 1), ("pop", None)]
        for n in range(1, 5):
            for ops in product(alphabet, repeat=n):
                if sum(1 for k, __ in ops if k == "push") > 3:
                    continue  # the pool has three cells
                stack = SeqStack()
                scenario = Scenario(
                    stack.initial_state(), stack.run_ops(ops), label=f"ops={ops!r}"
                )
                outcomes = check_triple(
                    stack.world(),
                    stack.sequential_spec(ops),
                    [scenario],
                    max_steps=120,
                    env_budget=0,
                )
                issues.extend(triple_issues(outcomes))
                if len(issues) >= 5:
                    return issues
        return issues

    builder.obligation("sequential-op-sequences-triple", "Main", sequential_triples)
    return builder.build()

"""Verification of the spanning-tree construction (Table 1 row
"Spanning tree").

The obligations mirror the Coq development's proof layout:

* ``Libs`` — the graph lemmas of §3.2 (``max_tree2``, ``subgraph``
  reflexivity/transitivity), discharged over enumerated graph families;
* ``Conc`` — ``SpanTree`` metatheory over the protocol closure;
* ``Acts`` — ``trymark``/``read_child``/``nullify`` obligations
  (erasure-to-CAS, totality, correspondence, locality);
* ``Stab`` — stability of ``span_tp``'s pre, of node membership
  (``subgraph_steps``-style facts) and of self-marked sets;
* ``Main`` — ``span_tp`` exhaustively on all small graphs under
  adversarial interference, and ``span_root_tp`` (closed world, via
  ``hide``) exhaustively on small connected graphs plus randomized
  schedules on larger random connected graphs (including Figure 2's).
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Iterable

from ..core.concurroid import check_concurroid, protocol_closure
from ..core.action import check_action
from ..core.entangle import Priv
from ..core.spec import Scenario
from ..core.stability import check_stability
from ..core.state import State
from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
from ..core.world import World
from ..graphs.enumerate import all_graphs, random_connected_graph
from ..graphs.lemmas import max_tree2_holds, subgraph, subgraph_transitive
from ..graphs.paths import connected
from ..graphs.reprs import LEFT, RIGHT, GraphView, figure2_graph, graph_heap
from ..heap import NULL, Heap, Ptr, ptr
from ..semantics.explore import run_random
from ..semantics.interp import initial_config
from .spanning_tree import (
    PRIV_LABEL,
    SpanActions,
    SpanTreeConcurroid,
    closed_world_state,
    make_span,
    make_span_root,
    open_world_state,
    span_root_spec,
    span_spec,
)


def make_world(conc: SpanTreeConcurroid) -> World:
    return World((Priv(PRIV_LABEL), conc))


def root_world() -> World:
    """The closed-world setting: only ``Priv``; ``hide`` installs SpanTree."""
    return World((Priv(PRIV_LABEL),))


# -- model families ------------------------------------------------------------------------


def span_model_states(conc: SpanTreeConcurroid, max_nodes: int = 2) -> list[State]:
    """Protocol closure of all unmarked graphs on ``<= max_nodes`` nodes."""
    initials = []
    for n in range(max_nodes + 1):
        for h in all_graphs(n):
            initials.append(open_world_state(conc, h))
    return sorted(protocol_closure(conc, initials, max_states=50_000), key=repr)


def open_world_scenarios(conc: SpanTreeConcurroid, n: int) -> Iterable[tuple[Ptr, Scenario]]:
    """``span x`` scenarios on every marked graph of exactly ``n`` nodes,
    every subjective split of the marked set and every root choice."""
    actions = SpanActions(conc)
    span = make_span(actions)
    for h in all_graphs(n, include_marks=True):
        g = GraphView(h)
        marked = sorted(g.marked_nodes(), key=lambda p: p.addr)
        splits = []
        for r in range(len(marked) + 1):
            for picked in combinations(marked, r):
                splits.append((frozenset(picked), frozenset(marked) - frozenset(picked)))
        for self_m, other_m in splits:
            for x in [NULL] + sorted(g.nodes(), key=lambda p: p.addr):
                init = open_world_state(conc, h, self_m, other_m)
                yield x, Scenario(init, span(x), label=f"span {x!r} on {h!r}")


def connected_graph_family(max_nodes: int) -> list[tuple[Heap, Ptr]]:
    """All connected unmarked graphs (rooted at node 1) up to ``max_nodes``."""
    out: list[tuple[Heap, Ptr]] = []
    for n in range(1, max_nodes + 1):
        for h in all_graphs(n):
            g = GraphView(h)
            root = ptr(1)
            if connected(g, root, g.nodes()):
                out.append((h, root))
    return out


# -- the full verification -------------------------------------------------------------------


def verify_spanning_tree(
    *,
    exhaustive_nodes: int = 2,
    env_budget: int = 2,
    open_samples: int = 150,
    root_extra_graphs: int = 24,
    random_graphs: int = 6,
    random_graph_size: int = 6,
    random_schedules: int = 5,
    max_configs: int = 100_000,
    seed: int = 2015,
) -> VerificationReport:
    """Discharge every obligation for ``span`` and ``span_root``.

    The scenario families are exhaustive for tiny graphs and
    seeded-random-sampled beyond that (``open_samples`` bounds the
    open-world family; ``root_extra_graphs`` bounds how many 3-node
    connected graphs get the full interleaving treatment) — exhaustive
    exploration of a 7-thread ``span`` instance costs seconds per graph,
    and there are thousands of them.  Raise the knobs for a deeper
    (slower) sweep; ``open_samples >= 2187`` makes the open-world check
    fully exhaustive at 2 nodes (verified green in ~4 minutes).
    """
    conc = SpanTreeConcurroid()
    builder = ReportBuilder("Spanning tree")

    # ---- Libs: the graph lemmas of §3.2 -----------------------------------------
    builder.obligation("lemma-max_tree2", "Libs", _check_max_tree2)
    builder.obligation("lemma-subgraph-refl-trans", "Libs", _check_subgraph_lemmas)

    # ---- Conc: SpanTree metatheory ----------------------------------------------
    states = span_model_states(conc, max_nodes=exhaustive_nodes)
    builder.obligation(
        "spantree-metatheory", "Conc", lambda: check_concurroid(conc, states)
    )

    # ---- Acts: the three atomic actions ------------------------------------------
    actions = SpanActions(conc)
    node_args = [(ptr(1),), (ptr(2),)]
    side_args = [(ptr(1), LEFT), (ptr(1), RIGHT), (ptr(2), LEFT), (ptr(2), RIGHT)]
    builder.obligation(
        "trymark-action", "Acts", lambda: check_action(actions.trymark, states, node_args)
    )
    builder.obligation(
        "read_child-action", "Acts", lambda: check_action(actions.read_child, states, side_args)
    )
    builder.obligation(
        "nullify-action", "Acts", lambda: check_action(actions.nullify, states, side_args)
    )

    # ---- Stab: stability facts (the subgraph_steps consequences, §3.2) ------------
    builder.obligation(
        "node-membership-stable",
        "Stab",
        lambda: check_stability(
            lambda s: ptr(1) in s.joint_of(conc.label),
            "x in dom(joint)",
            conc,
            states,
        ),
    )
    builder.obligation(
        "self-marks-stable",
        "Stab",
        lambda: check_stability(
            lambda s: frozenset((ptr(1),)) <= s.self_of(conc.label),
            "#x <= self",
            conc,
            states,
        ),
    )
    builder.obligation(
        "subgraph-stable-under-env",
        "Stab",
        lambda: _check_subgraph_env_monotone(conc, states),
    )

    # ---- Main: span_tp (open world) ------------------------------------------------
    world = make_world(conc)

    def check_open() -> list[str]:
        issues: list[str] = []
        scenarios = list(open_world_scenarios(conc, exhaustive_nodes))
        if open_samples < len(scenarios):
            # Seeded shuffle: a plain stride would alias with the
            # generator's periodic structure (e.g. pick only x = null).
            random.Random(seed).shuffle(scenarios)
            scenarios = scenarios[:open_samples]
        for x, scenario in scenarios:
            outcomes = check_triple(
                world,
                span_spec(conc, x),
                [scenario],
                max_steps=40,
                env_budget=env_budget,
                max_configs=max_configs,
            )
            issues.extend(triple_issues(outcomes))
            if len(issues) >= 5:
                break
        return issues

    builder.obligation("span_tp-triple", "Main", check_open)

    # ---- Main: span_root_tp (closed world via hide) ---------------------------------
    def check_root_exhaustive() -> list[str]:
        issues: list[str] = []
        small = connected_graph_family(exhaustive_nodes)
        bigger = [
            wl
            for wl in connected_graph_family(exhaustive_nodes + 1)
            if wl not in small
        ]
        stride = max(1, len(bigger) // max(1, root_extra_graphs))
        workloads = small + bigger[::stride][:root_extra_graphs]
        for h, root in workloads:
            scenario = Scenario(
                closed_world_state(h),
                make_span_root(SpanActions(SpanTreeConcurroid()), root),
                label=f"span_root on {h!r}",
            )
            outcomes = check_triple(
                root_world(),
                span_root_spec(root),
                [scenario],
                max_steps=80,
                env_budget=0,
                max_configs=max_configs,
            )
            issues.extend(triple_issues(outcomes))
            if len(issues) >= 5:
                break
        return issues

    builder.obligation("span_root_tp-triple", "Main", check_root_exhaustive)

    def check_root_random() -> list[str]:
        issues: list[str] = []
        rng = random.Random(seed)
        workloads = [(figure2_graph(), ptr(1))]
        for __ in range(random_graphs):
            workloads.append(random_connected_graph(random_graph_size, rng))
        for h, root_id in workloads:
            root = root_id if isinstance(root_id, Ptr) else ptr(root_id)
            spec = span_root_spec(root)
            init = closed_world_state(h)
            if not spec.pre(init):
                issues.append(f"precondition fails for random workload {h!r}")
                continue
            for run in range(random_schedules):
                prog = make_span_root(SpanActions(SpanTreeConcurroid()), root)
                config = initial_config(root_world(), init, prog)
                final, violations = run_random(config, rng)
                issues.extend(str(v) for v in violations)
                if final is None:
                    issues.append(f"randomized run {run} did not terminate on {h!r}")
                elif not spec.check_post(final.result, final.view_for(0), init):
                    issues.append(f"randomized run {run}: postcondition fails on {h!r}")
                if len(issues) >= 5:
                    return issues
        return issues

    builder.obligation("span_root-randomized", "Main", check_root_random)

    return builder.build()


# -- lemma checks -------------------------------------------------------------------------------


def _check_max_tree2() -> list[str]:
    """Finite-model discharge of Lemma ``max_tree2`` on all 2-node graphs
    (with marks) and all subtree choices."""
    issues: list[str] = []
    for h in all_graphs(2, include_marks=True):
        g = GraphView(h)
        nodes = sorted(g.nodes(), key=lambda p: p.addr)
        subsets = [frozenset(c) for r in range(3) for c in combinations(nodes, r)]
        for x in nodes:
            y1, y2 = g.successors(x)
            for t1 in subsets:
                for t2 in subsets:
                    if not max_tree2_holds(g, x, y1, y2, t1, t2):
                        issues.append(f"max_tree2 fails at {h!r}, x={x!r}, t1={t1!r}, t2={t2!r}")
                        if len(issues) >= 3:
                            return issues
    return issues


def _check_subgraph_lemmas() -> list[str]:
    """Reflexivity on instances, and transitivity along mark/nullify steps."""
    from ..graphs.lemmas import MarkedGraph

    issues: list[str] = []
    base = GraphView(graph_heap({1: (2, 0), 2: (0, 0)}))
    s1 = MarkedGraph(base, frozenset(), frozenset())
    if not subgraph(s1, s1):
        issues.append("subgraph not reflexive")
    g2 = GraphView(base.mark_node(ptr(1)))
    s2 = MarkedGraph(g2, frozenset((ptr(1),)), frozenset())
    g3 = GraphView(g2.null_edge(LEFT, ptr(1)))
    s3 = MarkedGraph(g3, frozenset((ptr(1),)), frozenset())
    if not subgraph_transitive(s1, s2, s3):
        issues.append("subgraph not transitive along mark;nullify")
    return issues


def _check_subgraph_env_monotone(conc: SpanTreeConcurroid, states: list[State]) -> list[str]:
    """Lemma ``subgraph_steps``: environment steps of SpanTree only produce
    ``subgraph``-successors (the main stability workhorse of §3.2)."""
    issues: list[str] = []
    for s in states:
        if not conc.coherent(s):
            continue
        before = conc.as_marked_graph(s)
        for s2 in conc.env_moves(s):
            if not subgraph(before, conc.as_marked_graph(s2)):
                issues.append(f"env step breaks subgraph at {s!r} -> {s2!r}")
                if len(issues) >= 3:
                    return issues
    return issues

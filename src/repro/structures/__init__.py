"""The paper's case-study programs (Table 1) and their verifications.

Each module exposes the structure (concurroid, actions, programs, specs)
and a ``verify_*`` entry point; :mod:`repro.structures.registry` holds the
metadata behind Tables 1-2 and Figure 5.  Import the submodules directly —
e.g. ``from repro.structures.treiber import TreiberStructure`` — heavy
imports are intentionally not re-exported here.
"""

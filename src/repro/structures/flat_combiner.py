"""The flat combiner (§4.2, Hendler et al. [20]) — higher-order helping.

``flat_combine(f, v)`` *registers* a sequential operation ``f`` with
argument ``v`` in a publication slot instead of running it; some thread
becomes the **combiner** (by taking the combiner lock) and executes every
registered request on the shared sequential structure, depositing each
result — together with a *receipt* describing the operation's effect — in
the requester's slot.  The requester claims the receipt when it collects:
that is how "the result of the work ... is ascribed to the initially
assigned thread" (§1's helping pattern) without any action ever touching
another thread's ``self``.

The structure is **higher-order**: it is parametrized by an arbitrary
sequential data structure (:class:`SeqStructure` — any state-and-ops
bundle; ``f`` ranges over its operations), exactly as FCSL's FC is
parametrized by ``fc_R``.  Receipts are time-stamped history entries, so
the client-facing spec is::

    { fc_self = h }  flat_combine f v
    { exists entry (b ==> a):  f(b, v) = (w, a)  /\\  fc_self = h + entry }

— the paper's ``fc_R f v w g`` with ``g`` a one-entry history.

Protocol state per slot: ``free`` → ``idle`` (owned) → ``req f v`` →
``resp w receipt`` → ``idle`` → ``free``.  Coherence ties the sequential
structure's current state to the replay of *all* receipts: the collected
ones (``self • other``) joined with the pending ones still sitting in
``resp`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Mapping, Sequence

from ..core.action import Action
from ..core.concurroid import Concurroid, Transition
from ..core.prog import Prog, act, bind, ffix, ret, seq
from ..core.spec import Spec
from ..core.state import State, SubjState, state_of
from ..heap import Heap, Ptr, heap_of, ptr
from ..pcm.base import PCM
from ..pcm.histories import HistEntry, History, HistoryPCM
from ..pcm.mutex import Mutex, MutexPCM
from ..pcm.product import ProductPCM
from ..pcm.setpcm import SetPCM

FC_LABEL = "fc"
FC_LOCK = ptr(70)
DS_CELL = ptr(71)

#: Slot contents.
FREE = ("free",)
IDLE = ("idle",)


@dataclass(frozen=True)
class SeqStructure:
    """A sequential data structure: initial state + named operations.

    Each operation maps ``(state, argument) -> (result, new_state)``.
    This is the higher-order parameter of the flat combiner — any Python
    function of that shape is an admissible ``f``.
    """

    name: str
    initial: Hashable
    ops: Mapping[str, Callable[[Hashable, Any], tuple[Any, Hashable]]]

    def run(self, op: str, state: Hashable, arg: Any) -> tuple[Any, Hashable]:
        return self.ops[op](state, arg)

    def idle_ok(self, op: str, arg: Any, result: Any) -> bool:
        """Whether ``op`` can return ``result`` without changing *some*
        state — the witness for receipt-free (no-op) responses.  The
        default probes the initial state, which covers the common case
        (pop on an empty stack)."""
        try:
            r, after = self.run(op, self.initial, arg)
        except Exception:  # noqa: BLE001
            return False
        return r == result and after == self.initial


def seq_stack() -> SeqStructure:
    """The sequential stack the paper instantiates FC with (§4.2)."""

    def push(state: tuple, arg: Any) -> tuple[Any, tuple]:
        return None, (arg,) + state

    def pop(state: tuple, __: Any) -> tuple[Any, tuple]:
        if not state:
            return None, state
        return state[0], state[1:]

    return SeqStructure("seq-stack", (), {"push": push, "pop": pop})


def seq_counter() -> SeqStructure:
    """A second instance (fetch-and-add) showing the higher-order reuse."""

    def add(state: int, arg: int) -> tuple[int, int]:
        return state, state + arg

    return SeqStructure("seq-counter", 0, {"add": add})


class FlatCombinerConcurroid(Concurroid):
    """The ``FlatCombine`` concurroid."""

    def __init__(
        self,
        seq: SeqStructure,
        slots: Sequence[Ptr] = (ptr(72), ptr(73)),
        label: str = FC_LABEL,
        max_ops: int = 3,
        arg_domain: Sequence[Any] = (0, 1),
    ):
        self._seq = seq
        self._slots = tuple(slots)
        self._label = label
        self._max_ops = max_ops
        self._args = tuple(arg_domain)
        self._hist = HistoryPCM()
        self._pcm = ProductPCM(MutexPCM(), SetPCM(), HistoryPCM())

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    @property
    def seq(self) -> SeqStructure:
        return self._seq

    @property
    def slots(self) -> tuple[Ptr, ...]:
        return self._slots

    @property
    def max_ops(self) -> int:
        return self._max_ops

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    # -- projections ----------------------------------------------------------------

    @staticmethod
    def mutex_of(comp: Hashable) -> Mutex:
        return comp[0]

    @staticmethod
    def slots_of(comp: Hashable) -> frozenset:
        return comp[1]

    @staticmethod
    def hist_of(comp: Hashable) -> History:
        return comp[2]

    def ds_value(self, state: State) -> Hashable:
        return state.joint_of(self._label)[DS_CELL]

    def pending_receipts(self, state: State) -> dict[int, HistEntry]:
        """Receipts deposited in ``resp`` slots but not yet collected."""
        joint = state.joint_of(self._label)
        out: dict[int, HistEntry] = {}
        for p in self._slots:
            cell = joint[p]
            if cell[0] == "resp":
                __, ___, ts, entry = cell
                if ts is not None:
                    out[ts] = entry
        return out

    def full_history(self, state: State) -> History | None:
        """Collected plus pending receipts; ``None`` if they clash."""
        comp = state[self._label]
        total = self._hist.join(self.hist_of(comp.self_), self.hist_of(comp.other))
        if not self._hist.valid(total):
            return None
        pending = self.pending_receipts(state)
        if set(pending) & total.timestamps():
            return None
        merged = {ts: total[ts] for ts in total.timestamps()}
        merged.update(pending)
        return History(merged)

    def my_contrib(self, state: State) -> History:
        return self.hist_of(state.self_of(self._label))

    # -- coherence --------------------------------------------------------------------

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        joint = comp.joint
        if not isinstance(joint, Heap) or not joint.is_valid:
            return False
        expected_dom = frozenset((FC_LOCK, DS_CELL)) | frozenset(self._slots)
        if joint.dom() != expected_dom:
            return False
        if not isinstance(joint[FC_LOCK], bool):
            return False
        if not self._pcm.valid(self._pcm.join(comp.self_, comp.other)):
            return False
        held = (
            self.mutex_of(comp.self_) is Mutex.OWN
            or self.mutex_of(comp.other) is Mutex.OWN
        )
        if joint[FC_LOCK] != held:
            return False
        owned = self.slots_of(comp.self_) | self.slots_of(comp.other)
        if not owned <= frozenset(self._slots):
            return False
        for p in self._slots:
            cell = joint[p]
            if not isinstance(cell, tuple) or not cell:
                return False
            kind = cell[0]
            if kind == "free":
                if p in owned:
                    return False
            elif kind in ("idle", "req", "resp"):
                if p not in owned:
                    return False
                if kind == "req" and cell[1] not in self._seq.ops:
                    return False
            else:
                return False
        full = self.full_history(state)
        if full is None:
            return False
        if not full.continuous_from(self._seq.initial):
            return False
        return full.final_state(self._seq.initial) == self.ds_value(state)

    # -- transitions --------------------------------------------------------------------

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def upd(state: State, fn) -> State:
            return state.update(lbl, fn)

        # 1. acquire a free slot
        def acq_params(state: State) -> Iterator[Ptr]:
            joint = state.joint_of(lbl)
            for p in self._slots:
                if joint[p] == FREE:
                    yield p

        def acq_requires(state: State, p: Ptr) -> bool:
            return state.joint_of(lbl)[p] == FREE

        def acq_effect(state: State, p: Ptr) -> State:
            def go(c: SubjState) -> SubjState:
                m, s, h = c.self_
                return SubjState((m, s | {p}, h), c.joint.update(p, IDLE), c.other)

            return upd(state, go)

        # 2. register a request in an owned idle slot
        def reg_params(state: State) -> Iterator[tuple]:
            comp = state[lbl]
            # None is always an admissible argument (ops like pop take none).
            arg_domain = self._args + (None,)
            for p in self.slots_of(comp.self_):
                if comp.joint[p] == IDLE:
                    for op in sorted(self._seq.ops):
                        for a in arg_domain:
                            yield (p, op, a)

        def reg_requires(state: State, param: tuple) -> bool:
            p, op, __ = param
            comp = state[lbl]
            return (
                p in self.slots_of(comp.self_)
                and comp.joint[p] == IDLE
                and op in self._seq.ops
            )

        def reg_effect(state: State, param: tuple) -> State:
            p, op, a = param
            return upd(state, lambda c: c.with_joint(c.joint.update(p, ("req", op, a))))

        # 3. take the combiner lock
        def lock_requires(state: State, __: Any) -> bool:
            comp = state[lbl]
            return not comp.joint[FC_LOCK] and self.mutex_of(comp.self_) is Mutex.NOT_OWN

        def lock_effect(state: State, __: Any) -> State:
            def go(c: SubjState) -> SubjState:
                m, s, h = c.self_
                return SubjState(
                    (Mutex.OWN, s, h), c.joint.update(FC_LOCK, True), c.other
                )

            return upd(state, go)

        # 4. help one pending request (combiner only)
        def help_params(state: State) -> Iterator[Ptr]:
            joint = state.joint_of(lbl)
            for p in self._slots:
                if joint[p][0] == "req":
                    yield p

        def help_requires(state: State, p: Ptr) -> bool:
            comp = state[lbl]
            if self.mutex_of(comp.self_) is not Mutex.OWN:
                return False
            if comp.joint[p][0] != "req":
                return False
            __, op, a = comp.joint[p]
            before = self.ds_value(state)
            ___, after = self._seq.run(op, before, a)
            if after == before:
                return True  # no-op help consumes no history budget
            full = self.full_history(state)
            return full is not None and len(full) < self._max_ops

        def help_effect(state: State, p: Ptr) -> State:
            comp = state[lbl]
            __, op, a = comp.joint[p]
            before = self.ds_value(state)
            result, after = self._seq.run(op, before, a)
            if after == before:
                # No state change: respond without a receipt (like a failed
                # CAS, this is protocol-idle on the history).
                new_joint = comp.joint.update(p, ("resp", result, None, None))
                return upd(state, lambda c: c.with_joint(new_joint))
            ts = self.full_history(state).last_timestamp() + 1
            receipt = HistEntry(before, after)
            new_joint = comp.joint.update(DS_CELL, after).update(
                p, ("resp", result, ts, receipt)
            )
            return upd(state, lambda c: c.with_joint(new_joint))

        # 5. release the combiner lock
        def unlock_requires(state: State, __: Any) -> bool:
            return self.mutex_of(state[lbl].self_) is Mutex.OWN

        def unlock_effect(state: State, __: Any) -> State:
            def go(c: SubjState) -> SubjState:
                m, s, h = c.self_
                return SubjState(
                    (Mutex.NOT_OWN, s, h), c.joint.update(FC_LOCK, False), c.other
                )

            return upd(state, go)

        # 6. collect one's response, claiming the receipt
        def col_params(state: State) -> Iterator[Ptr]:
            comp = state[lbl]
            for p in self.slots_of(comp.self_):
                if comp.joint[p][0] == "resp":
                    yield p

        def col_requires(state: State, p: Ptr) -> bool:
            comp = state[lbl]
            return p in self.slots_of(comp.self_) and comp.joint[p][0] == "resp"

        def col_effect(state: State, p: Ptr) -> State:
            def go(c: SubjState) -> SubjState:
                m, s, h = c.self_
                __, ___, ts, receipt = c.joint[p]
                if ts is not None:
                    h = h.extend(ts, receipt)
                return SubjState((m, s, h), c.joint.update(p, IDLE), c.other)

            return upd(state, go)

        # 7. release an owned idle slot
        def rel_params(state: State) -> Iterator[Ptr]:
            comp = state[lbl]
            for p in self.slots_of(comp.self_):
                if comp.joint[p] == IDLE:
                    yield p

        def rel_requires(state: State, p: Ptr) -> bool:
            comp = state[lbl]
            return p in self.slots_of(comp.self_) and comp.joint[p] == IDLE

        def rel_effect(state: State, p: Ptr) -> State:
            def go(c: SubjState) -> SubjState:
                m, s, h = c.self_
                return SubjState((m, s - {p}, h), c.joint.update(p, FREE), c.other)

            return upd(state, go)

        return (
            Transition(f"{lbl}.acquire_slot", acq_requires, acq_effect, acq_params),
            Transition(f"{lbl}.register", reg_requires, reg_effect, reg_params),
            Transition(f"{lbl}.combine_lock", lock_requires, lock_effect),
            Transition(f"{lbl}.help", help_requires, help_effect, help_params),
            Transition(f"{lbl}.combine_unlock", unlock_requires, unlock_effect),
            Transition(f"{lbl}.collect", col_requires, col_effect, col_params),
            Transition(f"{lbl}.release_slot", rel_requires, rel_effect, rel_params),
        )

    # -- initial states --------------------------------------------------------------------

    def initial(
        self,
        self_hist: History | None = None,
        other_hist: History | None = None,
    ) -> SubjState:
        self_hist = self_hist if self_hist is not None else History()
        other_hist = other_hist if other_hist is not None else History()
        total = self._hist.join(self_hist, other_hist)
        ds = total.final_state(self._seq.initial)
        cells = {FC_LOCK: False, DS_CELL: ds}
        cells.update({p: FREE for p in self._slots})
        return SubjState(
            (Mutex.NOT_OWN, frozenset(), self_hist),
            heap_of(cells),
            (Mutex.NOT_OWN, frozenset(), other_hist),
        )


# -- atomic actions ----------------------------------------------------------------------------


class _FCAction(Action):
    def __init__(self, conc: FlatCombinerConcurroid, name: str):
        super().__init__(conc)
        self.fc = conc
        self.name = f"{conc.label}.{name}"


class TryAcquireSlotAction(_FCAction):
    """CAS a slot from free to owned; False if taken."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "try_acquire_slot")

    def safe(self, state: State, p: Ptr) -> bool:
        return self.fc.label in state and p in self.fc.slots

    def step(self, state: State, p: Ptr) -> tuple[bool, State]:
        comp = state[self.fc.label]
        if comp.joint[p] != FREE:
            return False, state
        m, s, h = comp.self_
        new = SubjState((m, s | {p}, h), comp.joint.update(p, IDLE), comp.other)
        return True, state.set(self.fc.label, new)

    def footprint(self, state: State, p: Ptr) -> frozenset[Ptr]:
        return frozenset((p,))


class RegisterAction(_FCAction):
    """Publish a request in one's own idle slot."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "register")

    def safe(self, state: State, p: Ptr, op: str, arg: Any) -> bool:
        if self.fc.label not in state:
            return False
        comp = state[self.fc.label]
        return (
            p in self.fc.slots_of(comp.self_)
            and comp.joint[p] == IDLE
            and op in self.fc.seq.ops
        )

    def step(self, state: State, p: Ptr, op: str, arg: Any) -> tuple[None, State]:
        return None, state.update(
            self.fc.label, lambda c: c.with_joint(c.joint.update(p, ("req", op, arg)))
        )

    def footprint(self, state: State, p: Ptr, op: str, arg: Any) -> frozenset[Ptr]:
        return frozenset((p,))


class ReadSlotAction(_FCAction):
    """Read one's slot (to see whether the combiner has helped)."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "read_slot")

    def safe(self, state: State, p: Ptr) -> bool:
        if self.fc.label not in state:
            return False
        comp = state[self.fc.label]
        return p in self.fc.slots_of(comp.self_)

    def step(self, state: State, p: Ptr) -> tuple[tuple, State]:
        return state.joint_of(self.fc.label)[p], state


class TryCombineLockAction(_FCAction):
    """CAS the combiner lock."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "try_combine_lock")

    def safe(self, state: State, *args: Any) -> bool:
        return self.fc.label in state

    def step(self, state: State, *args: Any) -> tuple[bool, State]:
        comp = state[self.fc.label]
        if comp.joint[FC_LOCK]:
            return False, state
        if self.fc.mutex_of(comp.self_) is Mutex.OWN:
            return False, state
        m, s, h = comp.self_
        new = SubjState(
            (Mutex.OWN, s, h), comp.joint.update(FC_LOCK, True), comp.other
        )
        return True, state.set(self.fc.label, new)

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        return frozenset((FC_LOCK,))


class HelpAction(_FCAction):
    """Execute one pending request as the combiner; no-op if the slot is
    not (or no longer) a request."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "help")

    def safe(self, state: State, p: Ptr) -> bool:
        if self.fc.label not in state or p not in self.fc.slots:
            return False
        comp = state[self.fc.label]
        if self.fc.mutex_of(comp.self_) is not Mutex.OWN:
            return False
        if comp.joint[p][0] != "req":
            return True  # no-op path
        __, op, a = comp.joint[p]
        before = self.fc.ds_value(state)
        ___, after = self.fc.seq.run(op, before, a)
        if after == before:
            return True  # receipt-free response, no budget needed
        full = self.fc.full_history(state)
        return full is not None and len(full) < self.fc.max_ops

    def step(self, state: State, p: Ptr) -> tuple[None, State]:
        comp = state[self.fc.label]
        if comp.joint[p][0] != "req":
            return None, state
        __, op, a = comp.joint[p]
        before = self.fc.ds_value(state)
        result, after = self.fc.seq.run(op, before, a)
        if after == before:
            new_joint = comp.joint.update(p, ("resp", result, None, None))
            return None, state.update(
                self.fc.label, lambda c: c.with_joint(new_joint)
            )
        ts = self.fc.full_history(state).last_timestamp() + 1
        receipt = HistEntry(before, after)
        new_joint = comp.joint.update(DS_CELL, after).update(
            p, ("resp", result, ts, receipt)
        )
        return None, state.update(self.fc.label, lambda c: c.with_joint(new_joint))

    def footprint(self, state: State, p: Ptr) -> frozenset[Ptr]:
        return frozenset((p, DS_CELL))


class CombineUnlockAction(_FCAction):
    """Release the combiner lock."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "combine_unlock")

    def safe(self, state: State, *args: Any) -> bool:
        if self.fc.label not in state:
            return False
        return self.fc.mutex_of(state[self.fc.label].self_) is Mutex.OWN

    def step(self, state: State, *args: Any) -> tuple[None, State]:
        comp = state[self.fc.label]
        m, s, h = comp.self_
        new = SubjState(
            (Mutex.NOT_OWN, s, h), comp.joint.update(FC_LOCK, False), comp.other
        )
        return None, state.set(self.fc.label, new)

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        return frozenset((FC_LOCK,))


class CollectAction(_FCAction):
    """Take the response from one's slot, claiming the receipt — the
    moment the helped work is *ascribed* to this thread."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "collect")

    def safe(self, state: State, p: Ptr) -> bool:
        if self.fc.label not in state:
            return False
        comp = state[self.fc.label]
        return p in self.fc.slots_of(comp.self_) and comp.joint[p][0] == "resp"

    def step(self, state: State, p: Ptr) -> tuple[Any, State]:
        comp = state[self.fc.label]
        __, result, ts, receipt = comp.joint[p]
        m, s, h = comp.self_
        if ts is not None:
            h = h.extend(ts, receipt)
        new = SubjState((m, s, h), comp.joint.update(p, IDLE), comp.other)
        return result, state.set(self.fc.label, new)

    def footprint(self, state: State, p: Ptr) -> frozenset[Ptr]:
        return frozenset((p,))


class ReleaseSlotAction(_FCAction):
    """Return one's idle slot to the free pool."""

    def __init__(self, conc: FlatCombinerConcurroid):
        super().__init__(conc, "release_slot")

    def safe(self, state: State, p: Ptr) -> bool:
        if self.fc.label not in state:
            return False
        comp = state[self.fc.label]
        return p in self.fc.slots_of(comp.self_) and comp.joint[p] == IDLE

    def step(self, state: State, p: Ptr) -> tuple[None, State]:
        comp = state[self.fc.label]
        m, s, h = comp.self_
        new = SubjState((m, s - {p}, h), comp.joint.update(p, FREE), comp.other)
        return None, state.set(self.fc.label, new)

    def footprint(self, state: State, p: Ptr) -> frozenset[Ptr]:
        return frozenset((p,))


class FlatCombiner:
    """The structure: concurroid + actions + the ``flat_combine`` program."""

    def __init__(self, conc: FlatCombinerConcurroid):
        self.concurroid = conc
        self.try_acquire_slot = TryAcquireSlotAction(conc)
        self.register = RegisterAction(conc)
        self.read_slot = ReadSlotAction(conc)
        self.try_combine_lock = TryCombineLockAction(conc)
        self.help = HelpAction(conc)
        self.combine_unlock = CombineUnlockAction(conc)
        self.collect = CollectAction(conc)
        self.release_slot = ReleaseSlotAction(conc)

    def _combine_all(self) -> Prog:
        """Help every slot in order (no-ops where there is no request)."""
        steps = [act(self.help, p) for p in self.concurroid.slots]
        return seq(*steps) if steps else ret(None)

    def flat_combine(self, slot: Ptr, op: str, arg: Any) -> Prog:
        """Acquire ``slot``, publish ``(op, arg)``, then wait — combining
        if the combiner lock is free — and collect the result."""

        def wait(loop) -> Prog:
            def dispatch(cell: tuple) -> Prog:
                if cell[0] == "resp":
                    return bind(
                        act(self.collect, slot),
                        lambda w: bind(
                            act(self.release_slot, slot), lambda __: ret(w)
                        ),
                    )
                return bind(
                    act(self.try_combine_lock),
                    lambda got: (
                        seq(self._combine_all(), act(self.combine_unlock), loop())
                        if got
                        else loop()
                    ),
                )

            return bind(act(self.read_slot, slot), dispatch)

        acquire_spin = ffix(
            lambda loop: lambda: bind(
                act(self.try_acquire_slot, slot),
                lambda got: ret(None) if got else loop(),
            ),
            label="fc.acquire_slot",
        )
        wait_loop = ffix(lambda loop: lambda: wait(loop), label="fc.wait")
        return seq(
            acquire_spin(),
            act(self.register, slot, op, arg),
            wait_loop(),
        )


def initial_state(conc: FlatCombinerConcurroid, **kwargs) -> State:
    return state_of(**{conc.label: conc.initial(**kwargs)})


# -- specification -------------------------------------------------------------------------------


def flat_combine_spec(conc: FlatCombinerConcurroid, op: str, arg: Any) -> Spec:
    """§4.2's spec: the caller ends up owning exactly one new receipt
    ``b ==> a`` with ``f(b, arg) = (w, a)`` — even when the work was done
    by another thread (helping).  A state-preserving execution (e.g. pop
    on an empty stack) is receipt-free: no fresh entry, and the result is
    witnessed by ``idle_ok``."""

    def pre(s: State) -> bool:
        full = conc.full_history(s)
        return full is not None and len(full) < conc.max_ops

    def post(w: Any, s2: State, s1: State) -> bool:
        h1, h2 = conc.my_contrib(s1), conc.my_contrib(s2)
        fresh = h2.timestamps() - h1.timestamps()
        if not fresh:
            return conc.seq.idle_ok(op, arg, w)
        if len(fresh) != 1:
            return False
        (ts,) = fresh
        entry = h2[ts]
        if entry.after == entry.before:
            return False  # no-ops must be receipt-free
        expected_result, expected_after = conc.seq.run(op, entry.before, arg)
        return w == expected_result and entry.after == expected_after

    return Spec(f"flat_combine_tp({op}, {arg!r})", pre, post)

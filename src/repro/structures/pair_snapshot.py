"""The atomic pair snapshot (§6, after Qadeer et al. [43] / Liang & Feng [34]).

Two shared cells ``X`` and ``Y``, each stored with a *version* counter.
Writers bump a cell's content and version in one RMW; ``read_pair``
obtains a consistent snapshot lock-free::

    read_pair() = loop {
        (cx, vx)  <- read X
        (cy, __)  <- read Y
        (__, vx') <- read X
        if vx == vx' then return (cx, cy) else retry
    }

If ``X``'s version did not change across the interval, ``X`` held ``cx``
throughout; in particular the pair ``(cx, cy)`` was *simultaneously*
present at the moment ``Y`` was read — a linearization point in the middle
of the interval, which is what makes this example interesting.

The spec follows the paper's history treatment ([47]): ``self``/``other``
are **time-stamped histories** whose entries record atomic changes of the
full abstract state ``(cx, cy, vx, vy)`` — contents *and* versions, so
idempotent content writes (which still bump the version) are first-class.
Coherence ties the heap to the replayed history; the fact justifying the
version check — versions only grow, and an unchanged version pins the
content — is checked in its stable form in the verification below.

``read_pair``'s postcondition: the returned pair occurred as the
pair-state at some timestamp between invocation and return, and the
reader's own history is unchanged (reading contributes nothing).

Table 2: this structure uses only its own ``ReadPair`` concurroid.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from ..core.action import Action
from ..core.concurroid import Concurroid, Transition
from ..core.prog import Prog, act, bind, ffix, ret
from ..core.spec import Spec
from ..core.state import State, SubjState, state_of
from ..heap import Heap, Ptr, heap_of, ptr
from ..pcm.base import PCM
from ..pcm.histories import History, HistEntry, HistoryPCM

RP_LABEL = "rp"
X = ptr(1)
Y = ptr(2)

#: A pair-state: the contents of (X, Y).
Pair = tuple

#: The full abstract state recorded in history entries: (cx, cy, vx, vy).
AbsState = tuple


class PairSnapshotConcurroid(Concurroid):
    """The ``ReadPair`` concurroid: versioned cells + write histories."""

    def __init__(
        self,
        label: str = RP_LABEL,
        initial_pair: Pair = (0, 0),
        value_domain: Sequence[Any] = (0, 1),
        max_writes: int = 3,
    ):
        self._label = label
        self._initial = (initial_pair[0], initial_pair[1], 0, 0)
        self._values = tuple(value_domain)
        #: Model bound on total writes (history length) for finite closure.
        self._max_writes = max_writes
        self._pcm = HistoryPCM()

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    @property
    def initial_abs(self) -> AbsState:
        return self._initial

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    # -- projections ----------------------------------------------------------------

    def cells(self, state: State) -> tuple[tuple, tuple]:
        joint = state.joint_of(self._label)
        return joint[X], joint[Y]

    def pair(self, state: State) -> Pair:
        (cx, __), (cy, ___) = self.cells(state)
        return (cx, cy)

    def abstract(self, state: State) -> AbsState:
        (cx, vx), (cy, vy) = self.cells(state)
        return (cx, cy, vx, vy)

    def total_history(self, state: State) -> History:
        comp = state[self._label]
        return self._pcm.join(comp.self_, comp.other)

    # -- coherence --------------------------------------------------------------------

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        joint = comp.joint
        if not isinstance(joint, Heap) or joint.dom() != frozenset((X, Y)):
            return False
        for p in (X, Y):
            cell = joint[p]
            if not (isinstance(cell, tuple) and len(cell) == 2):
                return False
        total = self._pcm.join(comp.self_, comp.other)
        if not self._pcm.valid(total):
            return False
        if not total.continuous_from(self._initial):
            return False
        return total.final_state(self._initial) == self.abstract(state)

    # -- transitions --------------------------------------------------------------------

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def write_params(state: State) -> Iterator[tuple[Ptr, Any]]:
            if len(self.total_history(state)) >= self._max_writes:
                return
            for target in (X, Y):
                for v in self._values:
                    yield (target, v)

        def write_requires(state: State, param: tuple[Ptr, Any]) -> bool:
            return len(self.total_history(state)) < self._max_writes

        def write_effect(state: State, param: tuple[Ptr, Any]) -> State:
            target, v = param

            def upd(comp: SubjState) -> SubjState:
                before = self.abstract(state)
                after = _write_abs(before, target, v)
                __, version = comp.joint[target]
                new_joint = comp.joint.update(target, (v, version + 1))
                ts = self.total_history(state).last_timestamp() + 1
                new_self = comp.self_.extend(ts, HistEntry(before, after))
                return SubjState(new_self, new_joint, comp.other)

            return state.update(lbl, upd)

        return (Transition(f"{lbl}.write", write_requires, write_effect, write_params),)

    # -- initial states --------------------------------------------------------------------

    def initial(
        self,
        self_hist: History | None = None,
        other_hist: History | None = None,
    ) -> SubjState:
        """A state whose heap replays the supplied (default empty) histories."""
        self_hist = self_hist if self_hist is not None else History()
        other_hist = other_hist if other_hist is not None else History()
        total = self._pcm.join(self_hist, other_hist)
        cx, cy, vx, vy = total.final_state(self._initial)
        joint = heap_of({X: (cx, vx), Y: (cy, vy)})
        return SubjState(self_hist, joint, other_hist)


# -- atomic actions ------------------------------------------------------------------------


class ReadCellAction(Action):
    """Read one versioned cell: returns ``(content, version)``; idle."""

    def __init__(self, conc: PairSnapshotConcurroid, target: Ptr):
        super().__init__(conc)
        self._conc = conc
        self._target = target
        self.name = f"{conc.label}.read_{'x' if target == X else 'y'}"

    def safe(self, state: State, *args: Any) -> bool:
        return self._conc.label in state and self._target in state.joint_of(self._conc.label)

    def step(self, state: State, *args: Any) -> tuple[tuple, State]:
        return state.joint_of(self._conc.label)[self._target], state


class WriteCellAction(Action):
    """One-RMW write: update content, bump version, extend own history."""

    def __init__(self, conc: PairSnapshotConcurroid, target: Ptr):
        super().__init__(conc)
        self._conc = conc
        self._target = target
        self.name = f"{conc.label}.write_{'x' if target == X else 'y'}"

    def safe(self, state: State, value: Any) -> bool:
        conc = self._conc
        if conc.label not in state:
            return False
        return len(conc.total_history(state)) < conc._max_writes

    def step(self, state: State, value: Any) -> tuple[None, State]:
        conc = self._conc
        comp = state[conc.label]
        before = conc.abstract(state)
        after = _write_abs(before, self._target, value)
        __, version = comp.joint[self._target]
        new_joint = comp.joint.update(self._target, (value, version + 1))
        ts = conc.total_history(state).last_timestamp() + 1
        new_self = comp.self_.extend(ts, HistEntry(before, after))
        return None, state.set(conc.label, SubjState(new_self, new_joint, comp.other))

    def footprint(self, state: State, value: Any) -> frozenset[Ptr]:
        return frozenset((self._target,))


class PairSnapshotActions:
    """Action bundle for one ``ReadPair`` instance."""

    def __init__(self, conc: PairSnapshotConcurroid):
        self.concurroid = conc
        self.read_x = ReadCellAction(conc, X)
        self.read_y = ReadCellAction(conc, Y)
        self.write_x = WriteCellAction(conc, X)
        self.write_y = WriteCellAction(conc, Y)


# -- the program ------------------------------------------------------------------------------


def make_read_pair(actions: PairSnapshotActions) -> Prog:
    """The optimistic snapshot loop."""

    def gen(loop):
        def body() -> Prog:
            return bind(
                act(actions.read_x),
                lambda x1: bind(
                    act(actions.read_y),
                    lambda y1: bind(
                        act(actions.read_x),
                        lambda x2: (
                            ret((x1[0], y1[0])) if x1[1] == x2[1] else loop()
                        ),
                    ),
                ),
            )

        return body

    return ffix(gen, label="read_pair")()


def write_prog(actions: PairSnapshotActions, target: Ptr, value: Any) -> Prog:
    action = actions.write_x if target == X else actions.write_y
    return act(action, value)


# -- specification -----------------------------------------------------------------------------


def _write_abs(before: AbsState, target: Ptr, value: Any) -> AbsState:
    cx, cy, vx, vy = before
    if target == X:
        return (value, cy, vx + 1, vy)
    return (cx, value, vx, vy + 1)


def pair_states_since(conc: PairSnapshotConcurroid, s1: State, s2: State) -> list[Pair]:
    """All pair-states the structure inhabited from ``s1`` to ``s2``:
    the state at invocation plus the ``after`` of every later entry."""
    k1 = conc.total_history(s1).last_timestamp()
    total2 = conc.total_history(s2)
    states = [conc.pair(s1)]
    for ts, entry in total2.items():
        if ts > k1:
            states.append(entry.after[:2])
    return states


def read_pair_spec(conc: PairSnapshotConcurroid) -> Spec:
    """``read_pair`` returns a pair that was simultaneously present at some
    moment during the call, and contributes no history entries itself."""

    def pre(s: State) -> bool:
        return True

    def post(r: Any, s2: State, s1: State) -> bool:
        if s2.self_of(conc.label) != s1.self_of(conc.label):
            return False
        return tuple(r) in set(pair_states_since(conc, s1, s2))

    return Spec("read_pair_tp", pre, post)


def write_spec(conc: PairSnapshotConcurroid, target: Ptr, value: Any) -> Spec:
    """A write adds exactly one entry to the writer's history, whose
    ``after`` shows the written value."""

    index = 0 if target == X else 1

    def pre(s: State) -> bool:
        return len(conc.total_history(s)) < conc._max_writes

    def post(r: Any, s2: State, s1: State) -> bool:
        h1, h2 = s1.self_of(conc.label), s2.self_of(conc.label)
        fresh = h2.timestamps() - h1.timestamps()
        if len(fresh) != 1:
            return False
        (ts,) = fresh
        return h2[ts].after[index] == value

    return Spec(f"write_tp({target!r}, {value!r})", pre, post)


def initial_state(conc: PairSnapshotConcurroid, **kwargs) -> State:
    return state_of(**{conc.label: conc.initial(**kwargs)})


# -- verification (Table 1 row "Pair snapshot") ------------------------------------------------


def verify_pair_snapshot(*, env_budget: int = 2) -> "VerificationReport":
    """Discharge every obligation for the pair snapshot."""
    from ..core.action import check_action
    from ..core.concurroid import check_concurroid, protocol_closure
    from ..core.prog import par
    from ..core.spec import Scenario
    from ..core.stability import check_stability
    from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
    from ..core.world import World
    from ..pcm.laws import check_all_laws

    conc = PairSnapshotConcurroid()
    actions = PairSnapshotActions(conc)
    builder = ReportBuilder("Pair snapshot")

    # Libs: history-PCM laws (the paper's [47] machinery).
    builder.obligation("history-pcm-laws", "Libs", lambda: check_all_laws(HistoryPCM()))

    states = sorted(
        protocol_closure(conc, [initial_state(conc)], max_states=50_000), key=repr
    )

    builder.obligation(
        "readpair-metatheory", "Conc", lambda: check_concurroid(conc, states)
    )

    for action, args in (
        (actions.read_x, [()]),
        (actions.read_y, [()]),
        (actions.write_x, [(0,), (1,)]),
        (actions.write_y, [(0,), (1,)]),
    ):
        builder.obligation(
            f"action-{action.name}",
            "Acts",
            lambda action=action, args=args: check_action(action, states, args),
        )

    # Stab: the key stability lemma behind the version check — having
    # *observed* (vx = v, cx = c), the stable residue is "either the version
    # is still v and the content still c, or the version has strictly
    # grown".  (The naive "vx = v -> cx = c" is unstable: it holds
    # vacuously at vx < v and the environment can then enter vx = v with
    # different content — the checker catches exactly that if tried.)
    def observed_version_pins(v: int, c: Any):
        def assertion(s: State) -> bool:
            (cx, vx), __ = conc.cells(s)
            return (vx == v and cx == c) or vx > v

        return assertion

    for v, c in ((0, 0), (1, 1), (2, 0)):
        builder.obligation(
            f"observed-version-pins-content(v={v}, c={c})",
            "Stab",
            lambda v=v, c=c: check_stability(
                observed_version_pins(v, c),
                f"(vx={v} /\\ cx={c}) \\/ vx>{v}",
                conc,
                states,
            ),
        )
    builder.obligation(
        "version-monotone",
        "Stab",
        lambda: check_stability(
            lambda s: conc.cells(s)[0][1] >= 1, "vx >= 1", conc, states
        ),
    )
    builder.obligation(
        "own-history-stable",
        "Stab",
        lambda: check_stability(
            lambda s: s.self_of(conc.label) == History(),
            "self history empty",
            conc,
            states,
        ),
    )

    # Main: read_pair under adversarial interference, plus writer triples
    # and a reader/writer race.
    world = World((conc,))
    builder.obligation(
        "read_pair-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                read_pair_spec(conc),
                [Scenario(initial_state(conc), make_read_pair(actions), label="read_pair")],
                max_steps=30,
                env_budget=env_budget,
            )
        ),
    )
    builder.obligation(
        "write-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                write_spec(conc, X, 1),
                [Scenario(initial_state(conc), write_prog(actions, X, 1), label="write x 1")],
                max_steps=10,
                env_budget=env_budget,
            )
        ),
    )

    def race_post(r: Any, s2: State, s1: State) -> bool:
        snapshot, __ = r
        return tuple(snapshot) in set(pair_states_since(conc, s1, s2))

    from ..core.spec import Spec as _Spec

    builder.obligation(
        "reader-writer-race-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                _Spec("race", lambda s: True, race_post),
                [
                    Scenario(
                        initial_state(conc),
                        par(make_read_pair(actions), write_prog(actions, X, 1)),
                        label="read_pair || write x",
                    ),
                    Scenario(
                        initial_state(conc),
                        par(
                            make_read_pair(actions),
                            par(write_prog(actions, X, 1), write_prog(actions, Y, 1)),
                        ),
                        label="read_pair || (write x || write y)",
                    ),
                ],
                max_steps=40,
                env_budget=1,
            )
        ),
    )

    return builder.build()

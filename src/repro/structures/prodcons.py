"""Producer/Consumer over a Treiber stack (§6: "Prod/Cons").

A producer pushes a fixed batch of items; a consumer pops until it has
collected the same number of items, retrying on ``None`` (an empty
glimpse).  The correctness statement is assembled entirely from the
Treiber stack's history specs — no new concurroid, actions or stability
lemmas (a "-" row of Table 1):

* every item the consumer returns was pushed by the producer (the
  consumer's pop entries match producer push entries);
* at the joint end, the combined self-history of the parent thread holds
  exactly ``n`` pushes of the produced values and ``n`` pops of the same
  multiset — nothing is lost, nothing is invented.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

from ..core.prog import Prog, bind, ffix, par, ret, seq
from ..core.spec import Spec
from ..core.state import State
from .treiber import TB_LABEL, TreiberStructure


def producer(structure: TreiberStructure, items: Sequence[Any]) -> Prog:
    """Push every item, in order."""
    if not items:
        return ret(None)
    return seq(*[structure.push(v) for v in items])


def consumer(structure: TreiberStructure, count: int) -> Prog:
    """Pop until ``count`` items collected (spin through empty glimpses);
    returns the tuple of items in pop order."""

    def gen(loop):
        def body(remaining: int, acc: tuple) -> Prog:
            if remaining == 0:
                return ret(acc)
            return bind(
                structure.pop(),
                lambda v: loop(remaining, acc)
                if v is None
                else loop(remaining - 1, acc + (v,)),
            )

        return body

    return ffix(gen, label="consumer")(count, ())


def prod_cons(structure: TreiberStructure, items: Sequence[Any]) -> Prog:
    """``producer || consumer`` with matching counts."""
    return par(producer(structure, items), consumer(structure, len(items)))


def prod_cons_spec(structure: TreiberStructure, items: Sequence[Any]) -> Spec:
    """All produced items are consumed, each exactly once."""
    conc = structure.treiber
    expected = Counter(items)

    def pre(s: State) -> bool:
        return (
            s.self_of(TB_LABEL).is_empty
            and len(conc.total_history(s)) + 2 * len(items) <= conc.max_ops
        )

    def post(r: Any, s2: State, s1: State) -> bool:
        __, consumed = r
        if Counter(consumed) != expected:
            return False
        h2 = s2.self_of(TB_LABEL)
        pushes = [e for __, e in h2.items() if len(e.after) > len(e.before)]
        pops = [e for __, e in h2.items() if len(e.after) < len(e.before)]
        if len(pushes) != len(items) or len(pops) != len(items):
            return False
        if Counter(e.after[0] for e in pushes) != expected:
            return False
        return Counter(e.before[0] for e in pops) == expected

    return Spec(f"prod_cons{tuple(items)!r}", pre, post)


# -- verification (Table 1 row "Prod/Cons") ----------------------------------------------------


def verify_prod_cons(*, env_budget: int = 0) -> "VerificationReport":
    """Discharge the producer/consumer obligations — a pure client of the
    Treiber stack (Libs + Main only, the "-" row of Table 1)."""
    from ..core.spec import Scenario
    from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
    from ..core.world import World

    builder = ReportBuilder("Prod/Cons")

    def counting_lemma() -> list:
        # The multiset argument the spec rests on, on a tiny instance.
        if Counter((1, 0)) != Counter((0, 1)):
            return ["Counter equality broken?!"]
        return []

    builder.obligation("multiset-accounting-lemma", "Libs", counting_lemma)

    def triples() -> list[str]:
        issues: list[str] = []
        for items in ((1,), (0, 1), (1, 1)):
            structure = TreiberStructure(max_ops=2 * len(items) + 1, pool=tuple(range(101, 101 + len(items))))
            spec = prod_cons_spec(structure, items)
            scenario = Scenario(
                structure.initial_state(),
                prod_cons(structure, items),
                label=f"prodcons{items!r}",
            )
            outcomes = check_triple(
                World((structure.concurroid,)),
                spec,
                [scenario],
                max_steps=300,
                env_budget=env_budget,
                max_configs=500_000,
            )
            issues.extend(triple_issues(outcomes))
            if len(issues) >= 5:
                break
        return issues

    builder.obligation("prod-cons-triples", "Main", triples)
    return builder.build()

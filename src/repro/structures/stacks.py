"""The abstract stack interface — the exercise the paper left open.

§6: "In principle, we could implement an abstract interface for stacks,
too, to unify the Treiber stack and the FC-stack, although, we didn't
carry out this exercise."  Here it is carried out: both stacks implement
:class:`AbstractStack`, whose contract is exactly the history-PCM specs —
a push ascribes one fresh ``s ==> v·s`` entry to the caller, a pop either
ascribes a ``v·s ==> s`` entry or witnesses emptiness — and a *single*
generic client (a producer/consumer, mirroring ``prodcons``) is verified
once against the interface and then runs, unchanged, over either
implementation.

Client threads address the stack through opaque *contexts* (Treiber needs
none; the flat combiner needs a publication slot), which is the only
impedance the unification has to absorb.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Any, Sequence

from ..core.prog import Prog, bind, ffix, par, ret, seq
from ..core.spec import Scenario, Spec
from ..core.state import State
from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
from ..core.world import World
from ..pcm.histories import History


class AbstractStack(ABC):
    """What a stack client may rely on, independent of the engine."""

    @abstractmethod
    def world(self) -> World:
        """The world (installed concurroids) the stack runs in."""

    @abstractmethod
    def initial_state(self) -> State:
        """A pristine (empty-stack) initial state."""

    @abstractmethod
    def contexts(self) -> Sequence[Any]:
        """Per-thread access contexts (e.g. FC publication slots).  A
        client using ``k`` concurrent threads takes ``contexts()[:k]``."""

    @abstractmethod
    def push(self, ctx: Any, value: Any) -> Prog:
        """Push ``value``; ascribes one ``s ==> v·s`` history entry."""

    @abstractmethod
    def pop(self, ctx: Any) -> Prog:
        """Pop; returns the value or ``None`` on an empty glimpse."""

    @abstractmethod
    def contrib_of(self, state: State) -> History:
        """The observing thread's history contribution."""

    @abstractmethod
    def op_budget(self) -> int:
        """How many operations the finite model supports."""

    # -- the interface-level specs (shared by all implementations) -------------

    def push_spec(self, value: Any) -> Spec:
        def pre(s: State) -> bool:
            return True

        def post(r: Any, s2: State, s1: State) -> bool:
            h1, h2 = self.contrib_of(s1), self.contrib_of(s2)
            fresh = h2.timestamps() - h1.timestamps()
            if len(fresh) != 1:
                return False
            (ts,) = fresh
            entry = h2[ts]
            return entry.after == (value,) + entry.before

        return Spec(f"stack.push({value!r})", pre, post)

    def pop_spec(self) -> Spec:
        def pre(s: State) -> bool:
            return True

        def post(r: Any, s2: State, s1: State) -> bool:
            h1, h2 = self.contrib_of(s1), self.contrib_of(s2)
            fresh = h2.timestamps() - h1.timestamps()
            if r is None:
                # Either no entry (Treiber saw null top) or an explicit
                # emptiness-witnessing idle entry (FC).
                return all(h2[ts].before == h2[ts].after == () for ts in fresh)
            if len(fresh) != 1:
                return False
            (ts,) = fresh
            entry = h2[ts]
            return entry.before and entry.before[0] == r and entry.after == entry.before[1:]

        return Spec("stack.pop", pre, post)


# -- implementations ------------------------------------------------------------------------------


class TreiberAsStack(AbstractStack):
    """The Treiber stack behind the interface (contexts are unused)."""

    def __init__(self, *, max_ops: int = 4, pool: tuple[int, ...] = (101, 102)):
        from .treiber import TreiberStructure

        self._structure = TreiberStructure(max_ops=max_ops, pool=pool)

    def world(self) -> World:
        return World((self._structure.concurroid,))

    def initial_state(self) -> State:
        return self._structure.initial_state()

    def contexts(self) -> Sequence[Any]:
        return (None, None, None)

    def push(self, ctx: Any, value: Any) -> Prog:
        return self._structure.push(value)

    def pop(self, ctx: Any) -> Prog:
        return self._structure.pop()

    def contrib_of(self, state: State) -> History:
        from .treiber import TB_LABEL

        return state.self_of(TB_LABEL)

    def op_budget(self) -> int:
        return self._structure.treiber.max_ops


class FCAsStack(AbstractStack):
    """The flat-combining stack behind the interface (contexts = slots)."""

    def __init__(self, *, max_ops: int = 4):
        from .fc_stack import FCStack, SLOTS

        self._stack = FCStack(max_ops=max_ops, slots=SLOTS[:3])

    def world(self) -> World:
        return self._stack.world()

    def initial_state(self) -> State:
        return self._stack.initial_state()

    def contexts(self) -> Sequence[Any]:
        return self._stack.slots

    def push(self, ctx: Any, value: Any) -> Prog:
        return self._stack.push(ctx, value)

    def pop(self, ctx: Any) -> Prog:
        return self._stack.pop(ctx)

    def contrib_of(self, state: State) -> History:
        return self._stack.concurroid.my_contrib(state)

    def op_budget(self) -> int:
        return self._stack.concurroid.max_ops


# -- the generic client, written once against the interface ----------------------------------------


def generic_producer(stack: AbstractStack, ctx: Any, items: Sequence[Any]) -> Prog:
    if not items:
        return ret(None)
    return seq(*[stack.push(ctx, v) for v in items])


def generic_consumer(stack: AbstractStack, ctx: Any, count: int) -> Prog:
    def gen(loop):
        def body(remaining: int, acc: tuple) -> Prog:
            if remaining == 0:
                return ret(acc)
            return bind(
                stack.pop(ctx),
                lambda v: loop(remaining, acc)
                if v is None
                else loop(remaining - 1, acc + (v,)),
            )

        return body

    return ffix(gen, label="generic-consumer")(count, ())


def generic_prod_cons(stack: AbstractStack, items: Sequence[Any]) -> Prog:
    ctx_p, ctx_c = stack.contexts()[:2]
    return par(
        generic_producer(stack, ctx_p, items),
        generic_consumer(stack, ctx_c, len(items)),
    )


def generic_prod_cons_spec(stack: AbstractStack, items: Sequence[Any]) -> Spec:
    expected = Counter(items)

    def pre(s: State) -> bool:
        return stack.contrib_of(s).is_empty

    def post(r: Any, s2: State, s1: State) -> bool:
        __, consumed = r
        if Counter(consumed) != expected:
            return False
        h2 = stack.contrib_of(s2)
        pushes = [e for __, e in h2.items() if len(e.after) > len(e.before)]
        pops = [e for __, e in h2.items() if len(e.after) < len(e.before)]
        if len(pushes) != len(items) or len(pops) != len(items):
            return False
        return Counter(e.after[0] for e in pushes) == expected

    return Spec(f"generic_prod_cons{tuple(items)!r}", pre, post)


# -- one verification, run over every implementation ------------------------------------------------


def verify_stack_interface(
    stack: AbstractStack,
    *,
    env_budget: int = 1,
    max_steps: int = 200,
    max_configs: int = 400_000,
) -> VerificationReport:
    """The interface contract, discharged for a given implementation.

    Pure interface-level reasoning: no Conc/Acts/Stab obligations — those
    belong to the implementations' own verifications (Table 1 rows
    "Treiber stack" and "Flat combiner").
    """
    name = type(stack).__name__
    builder = ReportBuilder(f"AbstractStack[{name}]")
    ctx = stack.contexts()[0]

    builder.obligation(
        "push-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                stack.world(),
                stack.push_spec(1),
                [Scenario(stack.initial_state(), stack.push(ctx, 1), label="push")],
                max_steps=60,
                env_budget=env_budget,
            )
        ),
    )
    builder.obligation(
        "pop-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                stack.world(),
                stack.pop_spec(),
                [Scenario(stack.initial_state(), stack.pop(ctx), label="pop empty")],
                max_steps=60,
                env_budget=env_budget,
            )
        ),
    )
    builder.obligation(
        "generic-prodcons-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                stack.world(),
                generic_prod_cons_spec(stack, (1,)),
                [
                    Scenario(
                        stack.initial_state(),
                        generic_prod_cons(stack, (1,)),
                        label="generic prodcons",
                    )
                ],
                max_steps=max_steps,
                env_budget=0,
                max_configs=max_configs,
            )
        ),
    )
    return builder.build()

"""The CAS-based spinlock (§6: "CAS-lock").

Protocol (concurroid ``CLock``): the joint heap holds a lock bit and the
protected resource cells.  The subjective components live in the PCM
``mutex × client``: the mutex half says who holds the lock, the client
half carries the lock-protected auxiliary contributions (e.g. "how much
this thread added to the counter" for the CG incrementor).

Coherence ties the physical bit to the auxiliary mutex (the bit is set iff
somebody owns the lock) and requires the client resource invariant
whenever the lock is free.  Transitions:

* ``lock`` — CAS the bit from free to held, taking mutex ownership;
* ``unlock`` — clear the bit, release ownership, and *simultaneously*
  publish a new client contribution that restores the invariant;
* ``crit`` — mutate a resource cell (enabled only for the lock holder).

The resource stays in the joint component, guarded by ``OWN``-ship; this
models the paper's exclusive access discipline without the heap-transfer
entanglement (which this repo exercises separately in the allocator's
connector, §4.1).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from ...core.action import Action
from ...core.concurroid import Concurroid, Transition
from ...core.prog import Prog, act, bind, ffix, ret
from ...core.state import State, SubjState
from ...heap import Heap, Ptr, pts
from ...pcm.base import PCM
from ...pcm.mutex import Mutex, MutexPCM
from ...pcm.product import ProductPCM
from .interface import AbstractLock, ResourceInvariant


class CASLockConcurroid(Concurroid):
    """The ``CLock`` concurroid."""

    def __init__(
        self,
        label: str,
        lock_ptr: Ptr,
        client_pcm: PCM,
        inv: ResourceInvariant,
        *,
        crit_values: Sequence[Any] = (0, 1),
        aux_candidates: Callable[[State], Iterable[Any]] | None = None,
    ):
        self._label = label
        self._lock_ptr = lock_ptr
        self._client = client_pcm
        self._inv = inv
        self._crit_values = tuple(crit_values)
        self._aux_candidates = aux_candidates or (lambda __: client_pcm.sample())
        self._pcm = ProductPCM(MutexPCM(), client_pcm)

    # -- structure ---------------------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    @property
    def lock_ptr(self) -> Ptr:
        return self._lock_ptr

    @property
    def client_pcm(self) -> PCM:
        return self._client

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    # -- projections ---------------------------------------------------------------

    def resource(self, state: State) -> Heap:
        joint = state.joint_of(self._label)
        return joint.free(self._lock_ptr)

    def bit(self, state: State) -> bool:
        return state.joint_of(self._label)[self._lock_ptr]

    def mutex_of(self, comp: Hashable) -> Mutex:
        return comp[0]

    def aux_of(self, comp: Hashable) -> Hashable:
        return comp[1]

    def client_total(self, state: State) -> Hashable:
        comp = state[self._label]
        return self._client.join(self.aux_of(comp.self_), self.aux_of(comp.other))

    # -- coherence -------------------------------------------------------------------

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        joint = comp.joint
        if not isinstance(joint, Heap) or not joint.is_valid:
            return False
        if self._lock_ptr not in joint or not isinstance(joint[self._lock_ptr], bool):
            return False
        if not self._pcm.valid(self._pcm.join(comp.self_, comp.other)):
            return False
        held = (
            self.mutex_of(comp.self_) is Mutex.OWN
            or self.mutex_of(comp.other) is Mutex.OWN
        )
        if joint[self._lock_ptr] != held:
            return False
        if not held and not self._inv(self.resource(state), self.client_total(state)):
            return False
        return True

    # -- transitions --------------------------------------------------------------------

    def transitions(self) -> Sequence[Transition]:
        lbl, lp = self._label, self._lock_ptr

        def lock_requires(state: State, __: Any) -> bool:
            comp = state[lbl]
            return not comp.joint[lp] and self.mutex_of(comp.self_) is Mutex.NOT_OWN

        def lock_effect(state: State, __: Any) -> State:
            def upd(comp: SubjState) -> SubjState:
                return SubjState(
                    (Mutex.OWN, self.aux_of(comp.self_)),
                    comp.joint.update(lp, True),
                    comp.other,
                )

            return state.update(lbl, upd)

        def unlock_params(state: State) -> Iterator[Any]:
            yield from self._aux_candidates(state)

        def unlock_requires(state: State, new_aux: Any) -> bool:
            comp = state[lbl]
            if self.mutex_of(comp.self_) is not Mutex.OWN:
                return False
            total = self._client.join(new_aux, self.aux_of(comp.other))
            if not self._client.valid(total):
                return False
            return self._inv(comp.joint.free(lp), total)

        def unlock_effect(state: State, new_aux: Any) -> State:
            def upd(comp: SubjState) -> SubjState:
                return SubjState(
                    (Mutex.NOT_OWN, new_aux),
                    comp.joint.update(lp, False),
                    comp.other,
                )

            return state.update(lbl, upd)

        def crit_params(state: State) -> Iterator[tuple[Ptr, Any]]:
            comp = state[lbl]
            for p in sorted(comp.joint.dom(), key=lambda q: q.addr):
                if p == lp:
                    continue
                for v in self._crit_values:
                    yield (p, v)

        def crit_requires(state: State, param: tuple[Ptr, Any]) -> bool:
            comp = state[lbl]
            p, __ = param
            return self.mutex_of(comp.self_) is Mutex.OWN and p in comp.joint and p != lp

        def crit_effect(state: State, param: tuple[Ptr, Any]) -> State:
            p, v = param
            return state.update(lbl, lambda c: c.with_joint(c.joint.update(p, v)))

        return (
            Transition(f"{lbl}.lock", lock_requires, lock_effect),
            Transition(f"{lbl}.unlock", unlock_requires, unlock_effect, unlock_params),
            Transition(f"{lbl}.crit", crit_requires, crit_effect, crit_params),
        )

    # -- initial states --------------------------------------------------------------------

    def initial(
        self,
        resource: Heap,
        self_aux: Hashable | None = None,
        other_aux: Hashable | None = None,
    ) -> SubjState:
        """A free-lock component with the given resource heap and auxes."""
        self_aux = self._client.unit if self_aux is None else self_aux
        other_aux = self._client.unit if other_aux is None else other_aux
        return SubjState(
            (Mutex.NOT_OWN, self_aux),
            pts(self._lock_ptr, False).join(resource),
            (Mutex.NOT_OWN, other_aux),
        )


# -- atomic actions ------------------------------------------------------------------------


class TryAcquireAction(Action):
    """CAS on the lock bit; takes mutex ownership on success."""

    def __init__(self, lock: "CASLock"):
        super().__init__(lock.concurroid)
        self._lock = lock
        self.name = f"{lock.concurroid.label}.try_acquire"

    def safe(self, state: State, *args: Any) -> bool:
        conc = self._lock.concurroid
        return conc.label in state and conc.lock_ptr in state.joint_of(conc.label)

    def step(self, state: State, *args: Any) -> tuple[Any, State]:
        conc = self._lock.concurroid
        comp = state[conc.label]
        if comp.joint[conc.lock_ptr]:
            return False, state
        if conc.mutex_of(comp.self_) is Mutex.OWN:
            return False, state  # re-entrant attempt: CAS fails (bit is off only if nobody owns)
        new = SubjState(
            (Mutex.OWN, conc.aux_of(comp.self_)),
            comp.joint.update(conc.lock_ptr, True),
            comp.other,
        )
        return True, state.set(conc.label, new)

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        return frozenset((self._lock.concurroid.lock_ptr,))


class ReleaseAction(Action):
    """Clear the bit and publish the new client contribution."""

    def __init__(self, lock: "CASLock", aux_of: Callable[[Any], Any]):
        super().__init__(lock.concurroid)
        self._lock = lock
        self._aux_of = aux_of
        self.name = f"{lock.concurroid.label}.release"

    def safe(self, state: State, *args: Any) -> bool:
        conc = self._lock.concurroid
        if conc.label not in state:
            return False
        comp = state[conc.label]
        if conc.mutex_of(comp.self_) is not Mutex.OWN:
            return False
        new_aux = self._aux_of(conc.aux_of(comp.self_))
        total = conc.client_pcm.join(new_aux, conc.aux_of(comp.other))
        if not conc.client_pcm.valid(total):
            return False
        return conc._inv(comp.joint.free(conc.lock_ptr), total)

    def step(self, state: State, *args: Any) -> tuple[Any, State]:
        conc = self._lock.concurroid
        comp = state[conc.label]
        new_aux = self._aux_of(conc.aux_of(comp.self_))
        new = SubjState(
            (Mutex.NOT_OWN, new_aux),
            comp.joint.update(conc.lock_ptr, False),
            comp.other,
        )
        return None, state.set(conc.label, new)

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        return frozenset((self._lock.concurroid.lock_ptr,))


class ReadResAction(Action):
    """Read a resource cell; requires holding the lock."""

    def __init__(self, lock: "CASLock"):
        super().__init__(lock.concurroid)
        self._lock = lock
        self.name = f"{lock.concurroid.label}.read"

    def safe(self, state: State, p: Ptr) -> bool:
        conc = self._lock.concurroid
        if conc.label not in state:
            return False
        comp = state[conc.label]
        return (
            conc.mutex_of(comp.self_) is Mutex.OWN
            and p in comp.joint
            and p != conc.lock_ptr
        )

    def step(self, state: State, p: Ptr) -> tuple[Any, State]:
        return state.joint_of(self._lock.concurroid.label)[p], state


class WriteResAction(Action):
    """Write a resource cell; requires holding the lock."""

    def __init__(self, lock: "CASLock"):
        super().__init__(lock.concurroid)
        self._lock = lock
        self.name = f"{lock.concurroid.label}.write"

    def safe(self, state: State, p: Ptr, value: Any) -> bool:
        conc = self._lock.concurroid
        if conc.label not in state:
            return False
        comp = state[conc.label]
        return (
            conc.mutex_of(comp.self_) is Mutex.OWN
            and p in comp.joint
            and p != conc.lock_ptr
        )

    def step(self, state: State, p: Ptr, value: Any) -> tuple[Any, State]:
        conc = self._lock.concurroid
        return None, state.update(conc.label, lambda c: c.with_joint(c.joint.update(p, value)))

    def footprint(self, state: State, p: Ptr, value: Any) -> frozenset[Ptr]:
        return frozenset((p,))


class CASLock(AbstractLock):
    """The abstract-lock instance backed by :class:`CASLockConcurroid`."""

    def __init__(self, concurroid: CASLockConcurroid):
        self._conc = concurroid
        self._try_acquire = TryAcquireAction(self)
        self._read = ReadResAction(self)
        self._write = WriteResAction(self)

    @property
    def concurroid(self) -> CASLockConcurroid:
        return self._conc

    @property
    def client_pcm(self) -> PCM:
        return self._conc.client_pcm

    def acquire(self) -> Prog:
        spin = ffix(
            lambda loop: lambda: bind(
                act(self._try_acquire), lambda got: ret(None) if got else loop()
            ),
            label=f"{self._conc.label}.acquire",
        )
        return spin()

    def release(self, aux_of: Callable[[Any], Any]) -> Prog:
        return act(ReleaseAction(self, aux_of))

    def read(self, p: Ptr) -> Prog:
        return act(self._read, p)

    def write(self, p: Ptr, value: Any) -> Prog:
        return act(self._write, p, value)

    def holds(self, state: State) -> bool:
        comp = state[self._conc.label]
        return self._conc.mutex_of(comp.self_) is Mutex.OWN

    def quiescent(self, state: State) -> bool:
        return not self.holds(state)

    def locked(self, state: State) -> bool:
        return self._conc.bit(state)

    def resource(self, state: State) -> Heap:
        return self._conc.resource(state)

    def client_self(self, state: State) -> Hashable:
        return self._conc.aux_of(state.self_of(self._conc.label))

    def client_total(self, state: State) -> Hashable:
        return self._conc.client_total(state)

    @property
    def try_acquire_action(self) -> TryAcquireAction:
        return self._try_acquire

    @property
    def read_action(self) -> ReadResAction:
        return self._read

    @property
    def write_action(self) -> WriteResAction:
        return self._write


def make_cas_lock(
    label: str,
    lock_ptr: Ptr,
    client_pcm: PCM,
    inv: ResourceInvariant,
    **kwargs: Any,
) -> CASLock:
    """Build a CAS lock over the given resource invariant."""
    return CASLock(CASLockConcurroid(label, lock_ptr, client_pcm, inv, **kwargs))

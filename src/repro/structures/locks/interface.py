"""The abstract lock interface (§6, Figure 5).

Both lock implementations — the CAS-based spinlock and the ticketed lock —
"instantiate a uniform abstract lock interface, and are used by
coarse-grained programs" (the CG incrementor and the CG allocator).  The
interface fixes what a client may rely on:

* a *resource*: a sub-heap of the lock's joint component, governed by a
  client-supplied **resource invariant** ``inv(resource_heap, total_aux)``
  that holds whenever the lock is free;
* a *client PCM* of auxiliary contributions, split subjectively;
* programs ``acquire()`` (spins until the calling thread holds the lock)
  and ``release(aux_of)`` (restores the invariant, publishing the thread's
  new contribution), plus ``read``/``write`` programs valid only while
  holding the lock.

Clients are written against this interface only — verifying them once
verifies them for every lock implementation (the ``3L`` interchangeability
of Table 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Hashable, Iterable

from ...core.concurroid import Concurroid
from ...core.prog import Prog
from ...core.state import State
from ...heap import Heap, Ptr
from ...pcm.base import PCM

#: ``inv(resource_heap, total_client_aux)`` — must hold when the lock is free.
ResourceInvariant = Callable[[Heap, Hashable], bool]


class AbstractLock(ABC):
    """What the CG clients (incrementor, allocator) see of a lock."""

    @property
    @abstractmethod
    def concurroid(self) -> Concurroid:
        """The lock's protocol (CLock or TLock in Table 2)."""

    @property
    @abstractmethod
    def client_pcm(self) -> PCM:
        """The PCM of client contributions."""

    @abstractmethod
    def acquire(self) -> Prog:
        """Spin until the calling thread holds the lock."""

    @abstractmethod
    def release(self, aux_of: Callable[[Any], Any]) -> Prog:
        """Release the lock, updating the calling thread's client-PCM
        contribution to ``aux_of(current_contribution)``.

        The update must restore the resource invariant — the release
        action is unsafe otherwise, and verification fails.
        """

    @abstractmethod
    def read(self, p: Ptr) -> Prog:
        """Read a resource cell (requires holding the lock)."""

    @abstractmethod
    def write(self, p: Ptr, value: Any) -> Prog:
        """Write a resource cell (requires holding the lock)."""

    @abstractmethod
    def holds(self, state: State) -> bool:
        """Whether the observing thread holds the lock in ``state``.

        NB: for a ticketed lock "not holds" is *unstable* — the environment
        advancing the queue can promote a waiting ticket to being served.
        Client pre/postconditions should use :meth:`quiescent` instead.
        """

    @abstractmethod
    def quiescent(self, state: State) -> bool:
        """Whether the observing thread makes *no claim* on the lock (no
        ownership, no queued tickets).  Stable under interference — the
        right client-side pre/postcondition (cf. §2.2.3)."""

    @abstractmethod
    def locked(self, state: State) -> bool:
        """Whether anyone holds the lock in ``state``."""

    @abstractmethod
    def resource(self, state: State) -> Heap:
        """The protected resource sub-heap."""

    @abstractmethod
    def client_self(self, state: State) -> Hashable:
        """The observing thread's client-PCM contribution."""

    @abstractmethod
    def client_total(self, state: State) -> Hashable:
        """``self • other`` in the client PCM."""

    # -- common spec building blocks -------------------------------------------

    def invariant_holds(self, state: State, inv: ResourceInvariant) -> bool:
        return inv(self.resource(state), self.client_total(state))


def critical_section(
    lock: AbstractLock,
    body: Prog,
    aux_of: Callable[[Any], Any],
) -> Prog:
    """``acquire; body; release`` — the coarse-grained bracket every client
    of the abstract interface uses."""
    from ...core.prog import bind, seq

    return seq(lock.acquire(), bind(body, lambda v: _release_then(lock, aux_of, v)))


def _release_then(lock: AbstractLock, aux_of: Callable[[Any], Any], value: Any) -> Prog:
    from ...core.prog import bind, ret

    return bind(lock.release(aux_of), lambda __: ret(value))


def aux_candidates_from(pcm: PCM) -> Callable[[State], Iterable[Any]]:
    """Default enumeration of post-release contributions for transition
    parameter spaces: the client PCM's own sample."""
    return lambda __: pcm.sample()

"""The ticketed lock (§6: "Ticketed lock", after Dinsdale-Young et al. [14]).

Protocol (concurroid ``TLock``): the joint heap holds two counters —
``next`` (the next ticket to dispense) and ``owner`` (the ticket currently
being served) — plus the protected resource cells.  The subjective
components live in ``tickets × client``: the first half is the *disjoint
set* of tickets drawn (and not yet used up) by the observing thread; the
paper lists disjoint sets as the ticketed lock's PCM.

Coherence: ``owner <= next`` and the drawn-but-unreleased tickets —
``self ∪ other`` — are exactly ``{owner, ..., next-1}``; when the queue is
empty (``owner = next``) the client resource invariant holds.

Transitions:

* ``draw`` — fetch-and-increment ``next``, adding the old value to the
  drawing thread's ticket set;
* ``release`` — a thread whose ticket is being served (``owner ∈ self``)
  increments ``owner``, retires the ticket, and publishes a new client
  contribution restoring the invariant (a *self-enabled* transition:
  only the holder of the served ticket can take it);
* ``crit`` — mutate a resource cell, enabled only while being served.

Acquisition is ``draw`` followed by spinning on ``read owner`` until the
served ticket is one's own.  ``max_queue`` bounds the queue length and
``max_tickets`` the total number of tickets ever dispensed, so the
finite-model checks stay finite (modelling bounds, not protocol changes:
the paper's proofs quantify over unbounded queues; ours sweep all queues
up to the bounds).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from ...core.action import Action
from ...core.concurroid import Concurroid, Transition
from ...core.prog import Prog, act, bind, ffix, ret
from ...core.state import State, SubjState
from ...heap import Heap, Ptr, pts
from ...pcm.base import PCM
from ...pcm.product import ProductPCM
from ...pcm.setpcm import SetPCM
from .interface import AbstractLock, ResourceInvariant


class TicketedLockConcurroid(Concurroid):
    """The ``TLock`` concurroid."""

    def __init__(
        self,
        label: str,
        next_ptr: Ptr,
        owner_ptr: Ptr,
        client_pcm: PCM,
        inv: ResourceInvariant,
        *,
        max_queue: int = 2,
        max_tickets: int = 4,
        crit_values: Sequence[Any] = (0, 1),
        aux_candidates: Callable[[State], Iterable[Any]] | None = None,
    ):
        if next_ptr == owner_ptr:
            raise ValueError("next and owner must be distinct cells")
        self._label = label
        self._next = next_ptr
        self._owner = owner_ptr
        self._client = client_pcm
        self._inv = inv
        self._max_queue = max_queue
        self._max_tickets = max_tickets
        self._crit_values = tuple(crit_values)
        self._aux_candidates = aux_candidates or (lambda __: client_pcm.sample())
        self._pcm = ProductPCM(SetPCM(), client_pcm)

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    @property
    def next_ptr(self) -> Ptr:
        return self._next

    @property
    def owner_ptr(self) -> Ptr:
        return self._owner

    @property
    def client_pcm(self) -> PCM:
        return self._client

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    # -- projections -------------------------------------------------------------

    def tickets_of(self, comp: Hashable) -> frozenset[int]:
        return comp[0]

    def aux_of(self, comp: Hashable) -> Hashable:
        return comp[1]

    def resource(self, state: State) -> Heap:
        return state.joint_of(self._label).free(self._next).free(self._owner)

    def counters(self, state: State) -> tuple[int, int]:
        joint = state.joint_of(self._label)
        return joint[self._owner], joint[self._next]

    def client_total(self, state: State) -> Hashable:
        comp = state[self._label]
        return self._client.join(self.aux_of(comp.self_), self.aux_of(comp.other))

    # -- coherence ------------------------------------------------------------------

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        joint = comp.joint
        if not isinstance(joint, Heap) or not joint.is_valid:
            return False
        for p in (self._next, self._owner):
            if p not in joint or not isinstance(joint[p], int):
                return False
        owner, nxt = joint[self._owner], joint[self._next]
        if not (0 <= owner <= nxt):
            return False
        if not self._pcm.valid(self._pcm.join(comp.self_, comp.other)):
            return False
        pending = self.tickets_of(comp.self_) | self.tickets_of(comp.other)
        if pending != frozenset(range(owner, nxt)):
            return False
        if owner == nxt and not self._inv(self.resource(state), self.client_total(state)):
            return False
        return True

    # -- transitions -------------------------------------------------------------------

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def draw_requires(state: State, __: Any) -> bool:
            owner, nxt = self.counters(state)
            return nxt - owner < self._max_queue and nxt < self._max_tickets

        def draw_effect(state: State, __: Any) -> State:
            def upd(comp: SubjState) -> SubjState:
                nxt = comp.joint[self._next]
                return SubjState(
                    (self.tickets_of(comp.self_) | {nxt}, self.aux_of(comp.self_)),
                    comp.joint.update(self._next, nxt + 1),
                    comp.other,
                )

            return state.update(lbl, upd)

        def release_params(state: State) -> Iterator[Any]:
            yield from self._aux_candidates(state)

        def release_requires(state: State, new_aux: Any) -> bool:
            comp = state[lbl]
            owner, __ = self.counters(state)
            if owner not in self.tickets_of(comp.self_):
                return False
            total = self._client.join(new_aux, self.aux_of(comp.other))
            if not self._client.valid(total):
                return False
            return self._inv(self.resource(state), total)

        def release_effect(state: State, new_aux: Any) -> State:
            def upd(comp: SubjState) -> SubjState:
                owner = comp.joint[self._owner]
                return SubjState(
                    (self.tickets_of(comp.self_) - {owner}, new_aux),
                    comp.joint.update(self._owner, owner + 1),
                    comp.other,
                )

            return state.update(lbl, upd)

        def crit_params(state: State) -> Iterator[tuple[Ptr, Any]]:
            comp = state[lbl]
            for p in sorted(comp.joint.dom(), key=lambda q: q.addr):
                if p in (self._next, self._owner):
                    continue
                for v in self._crit_values:
                    yield (p, v)

        def crit_requires(state: State, param: tuple[Ptr, Any]) -> bool:
            comp = state[lbl]
            owner, __ = self.counters(state)
            p, ___ = param
            return (
                owner in self.tickets_of(comp.self_)
                and p in comp.joint
                and p not in (self._next, self._owner)
            )

        def crit_effect(state: State, param: tuple[Ptr, Any]) -> State:
            p, v = param
            return state.update(lbl, lambda c: c.with_joint(c.joint.update(p, v)))

        return (
            Transition(f"{lbl}.draw", draw_requires, draw_effect),
            Transition(f"{lbl}.release", release_requires, release_effect, release_params),
            Transition(f"{lbl}.crit", crit_requires, crit_effect, crit_params),
        )

    # -- initial states ---------------------------------------------------------------------

    def initial(
        self,
        resource: Heap,
        self_aux: Hashable | None = None,
        other_aux: Hashable | None = None,
    ) -> SubjState:
        self_aux = self._client.unit if self_aux is None else self_aux
        other_aux = self._client.unit if other_aux is None else other_aux
        counters = pts(self._next, 0).join(pts(self._owner, 0))
        return SubjState(
            (frozenset(), self_aux),
            counters.join(resource),
            (frozenset(), other_aux),
        )


# -- atomic actions --------------------------------------------------------------------------


class DrawTicketAction(Action):
    """Fetch-and-increment of ``next``; returns the drawn ticket."""

    def __init__(self, lock: "TicketedLock"):
        super().__init__(lock.concurroid)
        self._lock = lock
        self.name = f"{lock.concurroid.label}.draw"

    def safe(self, state: State, *args: Any) -> bool:
        conc = self._lock.concurroid
        if conc.label not in state:
            return False
        owner, nxt = conc.counters(state)
        return nxt - owner < conc._max_queue and nxt < conc._max_tickets

    def step(self, state: State, *args: Any) -> tuple[int, State]:
        conc = self._lock.concurroid
        comp = state[conc.label]
        nxt = comp.joint[conc.next_ptr]
        new = SubjState(
            (conc.tickets_of(comp.self_) | {nxt}, conc.aux_of(comp.self_)),
            comp.joint.update(conc.next_ptr, nxt + 1),
            comp.other,
        )
        return nxt, state.set(conc.label, new)

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        return frozenset((self._lock.concurroid.next_ptr,))


class ReadOwnerAction(Action):
    """Read the currently-served ticket (the spin-wait read)."""

    def __init__(self, lock: "TicketedLock"):
        super().__init__(lock.concurroid)
        self._lock = lock
        self.name = f"{lock.concurroid.label}.read_owner"

    def safe(self, state: State, *args: Any) -> bool:
        conc = self._lock.concurroid
        return conc.label in state and conc.owner_ptr in state.joint_of(conc.label)

    def step(self, state: State, *args: Any) -> tuple[int, State]:
        conc = self._lock.concurroid
        return state.joint_of(conc.label)[conc.owner_ptr], state


class TicketReleaseAction(Action):
    """Increment ``owner``, retiring the served ticket and publishing the
    new client contribution."""

    def __init__(self, lock: "TicketedLock", aux_of: Callable[[Any], Any]):
        super().__init__(lock.concurroid)
        self._lock = lock
        self._aux_of = aux_of
        self.name = f"{lock.concurroid.label}.release"

    def safe(self, state: State, *args: Any) -> bool:
        conc = self._lock.concurroid
        if conc.label not in state:
            return False
        comp = state[conc.label]
        owner, __ = conc.counters(state)
        if owner not in conc.tickets_of(comp.self_):
            return False
        new_aux = self._aux_of(conc.aux_of(comp.self_))
        total = conc.client_pcm.join(new_aux, conc.aux_of(comp.other))
        if not conc.client_pcm.valid(total):
            return False
        return conc._inv(conc.resource(state), total)

    def step(self, state: State, *args: Any) -> tuple[None, State]:
        conc = self._lock.concurroid
        comp = state[conc.label]
        owner = comp.joint[conc.owner_ptr]
        new_aux = self._aux_of(conc.aux_of(comp.self_))
        new = SubjState(
            (conc.tickets_of(comp.self_) - {owner}, new_aux),
            comp.joint.update(conc.owner_ptr, owner + 1),
            comp.other,
        )
        return None, state.set(conc.label, new)

    def footprint(self, state: State, *args: Any) -> frozenset[Ptr]:
        return frozenset((self._lock.concurroid.owner_ptr,))


class TicketReadResAction(Action):
    """Read a resource cell while being served."""

    def __init__(self, lock: "TicketedLock"):
        super().__init__(lock.concurroid)
        self._lock = lock
        self.name = f"{lock.concurroid.label}.read"

    def safe(self, state: State, p: Ptr) -> bool:
        conc = self._lock.concurroid
        if conc.label not in state:
            return False
        comp = state[conc.label]
        owner, __ = conc.counters(state)
        return (
            owner in conc.tickets_of(comp.self_)
            and p in comp.joint
            and p not in (conc.next_ptr, conc.owner_ptr)
        )

    def step(self, state: State, p: Ptr) -> tuple[Any, State]:
        return state.joint_of(self._lock.concurroid.label)[p], state


class TicketWriteResAction(Action):
    """Write a resource cell while being served."""

    def __init__(self, lock: "TicketedLock"):
        super().__init__(lock.concurroid)
        self._lock = lock
        self.name = f"{lock.concurroid.label}.write"

    def safe(self, state: State, p: Ptr, value: Any) -> bool:
        conc = self._lock.concurroid
        if conc.label not in state:
            return False
        comp = state[conc.label]
        owner, __ = conc.counters(state)
        return (
            owner in conc.tickets_of(comp.self_)
            and p in comp.joint
            and p not in (conc.next_ptr, conc.owner_ptr)
        )

    def step(self, state: State, p: Ptr, value: Any) -> tuple[None, State]:
        conc = self._lock.concurroid
        return None, state.update(
            conc.label, lambda c: c.with_joint(c.joint.update(p, value))
        )

    def footprint(self, state: State, p: Ptr, value: Any) -> frozenset[Ptr]:
        return frozenset((p,))


class TicketedLock(AbstractLock):
    """The abstract-lock instance backed by :class:`TicketedLockConcurroid`.

    ``acquire`` is "draw a ticket, then spin reading ``owner`` until it
    equals the drawn ticket".
    """

    def __init__(self, concurroid: TicketedLockConcurroid):
        self._conc = concurroid
        self._draw = DrawTicketAction(self)
        self._read_owner = ReadOwnerAction(self)
        self._read = TicketReadResAction(self)
        self._write = TicketWriteResAction(self)

    @property
    def concurroid(self) -> TicketedLockConcurroid:
        return self._conc

    @property
    def client_pcm(self) -> PCM:
        return self._conc.client_pcm

    def acquire(self) -> Prog:
        def wait_for(ticket: int) -> Prog:
            spin = ffix(
                lambda loop: lambda: bind(
                    act(self._read_owner),
                    lambda served: ret(None) if served == ticket else loop(),
                ),
                label=f"{self._conc.label}.wait",
            )
            return spin()

        return bind(act(self._draw), wait_for)

    def release(self, aux_of: Callable[[Any], Any]) -> Prog:
        return act(TicketReleaseAction(self, aux_of))

    def read(self, p: Ptr) -> Prog:
        return act(self._read, p)

    def write(self, p: Ptr, value: Any) -> Prog:
        return act(self._write, p, value)

    def holds(self, state: State) -> bool:
        comp = state[self._conc.label]
        owner, __ = self._conc.counters(state)
        return owner in self._conc.tickets_of(comp.self_)

    def quiescent(self, state: State) -> bool:
        comp = state[self._conc.label]
        return not self._conc.tickets_of(comp.self_)

    def locked(self, state: State) -> bool:
        owner, nxt = self._conc.counters(state)
        return owner < nxt

    def resource(self, state: State) -> Heap:
        return self._conc.resource(state)

    def client_self(self, state: State) -> Hashable:
        return self._conc.aux_of(state.self_of(self._conc.label))

    def client_total(self, state: State) -> Hashable:
        return self._conc.client_total(state)

    @property
    def draw_action(self) -> DrawTicketAction:
        return self._draw

    @property
    def read_owner_action(self) -> ReadOwnerAction:
        return self._read_owner

    @property
    def read_action(self) -> TicketReadResAction:
        return self._read

    @property
    def write_action(self) -> TicketWriteResAction:
        return self._write


def make_ticketed_lock(
    label: str,
    next_ptr: Ptr,
    owner_ptr: Ptr,
    client_pcm: PCM,
    inv: ResourceInvariant,
    **kwargs: Any,
) -> TicketedLock:
    """Build a ticketed lock over the given resource invariant."""
    return TicketedLock(
        TicketedLockConcurroid(label, next_ptr, owner_ptr, client_pcm, inv, **kwargs)
    )

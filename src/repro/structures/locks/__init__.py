"""Lock implementations behind the abstract lock interface (Figure 5)."""

from .caslock import CASLock, CASLockConcurroid, make_cas_lock
from .interface import AbstractLock, critical_section

__all__ = ["CASLock", "CASLockConcurroid", "make_cas_lock", "AbstractLock", "critical_section"]

"""Verification of the two lock implementations (Table 1 rows "CAS-lock"
and "Ticketed lock").

Both locks are verified against the same abstract-interface obligations,
instantiated with a one-cell counter resource (the resource invariant ties
the cell to the total client contribution):

* ``Conc`` — lock concurroid metatheory over the protocol closure;
* ``Acts`` — every atomic action of the lock;
* ``Stab`` — the assertions clients rely on: "I do not hold the lock",
  "my contribution is a", and (for the holder) "I hold it and the
  resource is mine to mutate";
* ``Main`` — mutual exclusion and invariant restoration, checked by
  exhaustively exploring two parallel acquire/mutate/release clients
  under interference.  Mutual exclusion is *structural*: a state with two
  owners is incoherent (``OWN • OWN`` / overlapping ticket sets are
  invalid PCM elements), so any violating interleaving would abort the
  exploration.
"""

from __future__ import annotations

from typing import Callable

from ...core.action import check_action
from ...core.concurroid import check_concurroid, protocol_closure
from ...core.entangle import Priv
from ...core.prog import bind, par, seq
from ...core.spec import Scenario, Spec
from ...core.stability import check_stability
from ...core.state import State, state_of
from ...core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
from ...core.world import World
from ...heap import Heap, pts, ptr
from ...pcm.laws import check_all_laws
from ...pcm.natpcm import NatPCM
from .caslock import CASLock, make_cas_lock
from .interface import AbstractLock
from .ticketed import TicketedLock, make_ticketed_lock

#: Cells used by the lock-verification workloads.
RES_CELL = ptr(1)
CAS_BIT = ptr(2)
TK_NEXT = ptr(3)
TK_OWNER = ptr(4)
LABEL = "lk"


def _counter_inv(resource: Heap, total: int) -> bool:
    return resource.dom() == frozenset((RES_CELL,)) and resource[RES_CELL] == total


def make_counter_cas_lock(max_total: int = 5) -> CASLock:
    return make_cas_lock(
        LABEL,
        CAS_BIT,
        NatPCM(sample_bound=max_total),
        _counter_inv,
        crit_values=tuple(range(max_total + 2)),
    )


def make_counter_ticketed_lock(max_total: int = 4, max_queue: int = 3) -> TicketedLock:
    return make_ticketed_lock(
        LABEL,
        TK_NEXT,
        TK_OWNER,
        NatPCM(sample_bound=max_total),
        _counter_inv,
        max_queue=max_queue,
        max_tickets=4,
        crit_values=tuple(range(max_total + 2)),
    )


def lock_world(lock: AbstractLock) -> World:
    """The lock's world: its concurroid plus thread-private state."""
    return World((Priv("pv"), lock.concurroid))


def lock_initial_state(lock: AbstractLock, self_aux: int = 0, other_aux: int = 0) -> State:
    from ...core.state import SubjState
    from ...heap import EMPTY

    resource = pts(RES_CELL, self_aux + other_aux)
    return state_of(
        **{
            LABEL: lock.concurroid.initial(resource, self_aux, other_aux),
            # Thread-private state rides along, as in Table 2's Priv column.
            "pv": SubjState(EMPTY, EMPTY, EMPTY),
        }
    )


def bump_client(lock: AbstractLock):
    """acquire; v <- read; write (v+1); release publishing self+1."""
    return seq(
        lock.acquire(),
        bind(lock.read(RES_CELL), lambda v: lock.write(RES_CELL, v + 1)),
        lock.release(lambda a: a + 1),
    )


def _verify_lock(
    program_name: str,
    lock_factory: Callable[[], AbstractLock],
    action_names: Callable[[AbstractLock], list],
    *,
    aux_bound: int = 1,
    env_budget: int = 1,
) -> VerificationReport:
    lock = lock_factory()
    conc = lock.concurroid
    builder = ReportBuilder(program_name)

    initials = [
        lock_initial_state(lock, a, b)
        for a in range(aux_bound + 1)
        for b in range(aux_bound + 1)
    ]
    states = sorted(protocol_closure(conc, initials, max_states=50_000), key=repr)

    # Libs: the PCM algebra the lock's subjective state lives in.
    builder.obligation(
        "subjective-pcm-laws",
        "Libs",
        lambda: check_all_laws(conc.pcms()[LABEL]),
    )

    builder.obligation(
        "lock-metatheory", "Conc", lambda: check_concurroid(conc, states)
    )

    for action, args in action_names(lock):
        builder.obligation(
            f"action-{action.name}",
            "Acts",
            lambda action=action, args=args: check_action(action, states, args),
        )

    builder.obligation(
        "quiescent-stable",
        "Stab",
        lambda: check_stability(
            lambda s: lock.quiescent(s), "quiescent", conc, states
        ),
    )
    builder.obligation(
        "holding-stable",
        "Stab",
        lambda: check_stability(lambda s: lock.holds(s), "holds", conc, states),
    )
    for a in range(aux_bound + 2):
        builder.obligation(
            f"contribution-stable(a={a})",
            "Stab",
            lambda a=a: check_stability(
                lambda s, a=a: lock.client_self(s) == a,
                f"self aux = {a}",
                conc,
                states,
            ),
        )
    builder.obligation(
        "resource-value-unstable-without-lock-is-not-claimed",
        "Stab",
        lambda: check_stability(
            # Resource *ownership*: while holding, the cell equals
            # total-contributions-so-far only the holder can change it, so
            # "holds and cell >= my contribution" is stable.
            lambda s: not lock.holds(s)
            or s.joint_of(LABEL).get(RES_CELL, -1) >= 0,
            "holder's view of resource",
            conc,
            states,
        ),
    )

    world = lock_world(lock)
    spec = Spec(
        "bump-client",
        pre=lambda s: lock.quiescent(s),
        post=lambda r, s2, s1: (
            lock.quiescent(s2)
            and lock.client_self(s2) == lock.client_self(s1) + 1
        ),
    )
    scenarios = [
        Scenario(lock_initial_state(lock, a, b), bump_client(lock), label=f"bump a={a} b={b}")
        for a in range(aux_bound + 1)
        for b in range(aux_bound + 1)
    ]
    builder.obligation(
        "bump-triple",
        "Main",
        lambda: triple_issues(
            check_triple(world, spec, scenarios, max_steps=30, env_budget=env_budget)
        ),
    )

    par_spec = Spec(
        "par-bump",
        pre=lambda s: lock.quiescent(s),
        post=lambda r, s2, s1: (
            lock.quiescent(s2)
            and lock.client_self(s2) == lock.client_self(s1) + 2
        ),
    )
    par_scenarios = [
        Scenario(
            lock_initial_state(lock, 0, b),
            par(bump_client(lock), bump_client(lock)),
            label=f"par-bump b={b}",
        )
        for b in range(aux_bound + 1)
    ]
    builder.obligation(
        "mutual-exclusion-par-triple",
        "Main",
        lambda: triple_issues(
            check_triple(world, par_spec, par_scenarios, max_steps=60, env_budget=env_budget)
        ),
    )

    return builder.build()


def verify_cas_lock(**kwargs) -> VerificationReport:
    """Discharge every obligation for the CAS spinlock."""

    def actions(lock: CASLock) -> list:
        return [
            (lock.try_acquire_action, [()]),
            (lock.read_action, [(RES_CELL,)]),
            (lock.write_action, [(RES_CELL, 0), (RES_CELL, 2)]),
        ]

    return _verify_lock("CAS-lock", make_counter_cas_lock, actions, **kwargs)


def verify_ticketed_lock(**kwargs) -> VerificationReport:
    """Discharge every obligation for the ticketed lock."""

    def actions(lock: TicketedLock) -> list:
        return [
            (lock.draw_action, [()]),
            (lock.read_owner_action, [()]),
            (lock.read_action, [(RES_CELL,)]),
            (lock.write_action, [(RES_CELL, 0), (RES_CELL, 2)]),
        ]

    return _verify_lock("Ticketed lock", make_counter_ticketed_lock, actions, **kwargs)

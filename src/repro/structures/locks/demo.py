"""Deliberately defective locks: in-tree positive cases for fcsl-live.

Every registry case study is clean by design — the analyses must stay
silent on them — which leaves nothing in-tree for the liveness rules to
*find*.  This module adds two demonstration structures (registry rows
marked ``demo=True``, excluded from the paper tables and the default
verification sweep):

* **Two-lock demo** — two independent CAS spinlocks acquired in opposite
  orders by two parallel ladder clients.  Each ladder is safe on its own
  (and verified sequentially below), but the lock-order graph of the
  parallel composition has the classic ``la -> lb -> la`` cycle, so
  fcsl-live reports FCSL050 deadlock potential.

* **Unfair lock demo** — a CAS spinlock whose acquire loop retries three
  times per round, *claimed* (falsely, unlike the ticketed lock) to be
  FIFO-fair.  Safety verifies, but the bounded livelock detector finds a
  schedule in which the environment takes the lock and works under it in
  a cycle while the claimant's CAS keeps failing — a starvation lasso
  the ``fifo-fairness`` obligation fails with, recorded as a replayable
  witness for ``repro explain``.

The three-attempt spin matters for the dynamic detector: a lasso needs
every intermediate configuration to be fresh, and a single-attempt spin
only revisits its own position (a scheduler stutter, deliberately not
reported).  Three structurally distinct attempt continuations interleaved
with environment steps trace a simple cycle through the product of
thread phase and protocol state.
"""

from __future__ import annotations

from ...core.action import check_action
from ...core.concurroid import check_concurroid, protocol_closure
from ...core.entangle import Priv
from ...core.prog import Prog, act, bind, ffix, par, ret, seq
from ...core.spec import Scenario, Spec
from ...core.stability import check_stability
from ...core.state import State, SubjState, state_of
from ...core.verify import (
    ReportBuilder,
    VerificationReport,
    check_triple,
    triple_issues,
)
from ...core.world import World
from ...heap import EMPTY, Heap, ptr, pts
from ...pcm.laws import check_all_laws
from ...pcm.natpcm import NatPCM
from .caslock import CASLock, CASLockConcurroid, make_cas_lock
from .verify import (
    CAS_BIT,
    LABEL,
    RES_CELL,
    _counter_inv,
    bump_client,
    lock_initial_state,
    lock_world,
)

# -- the two-lock deadlock demo ---------------------------------------------------------

LA = "la"
LB = "lb"
LA_RES = ptr(10)
LA_BIT = ptr(11)
LB_RES = ptr(12)
LB_BIT = ptr(13)

#: Each demo lock protects its own one-cell counter.
RES_OF = {LA: LA_RES, LB: LB_RES}


def _res_inv(cell):
    def inv(resource: Heap, total) -> bool:
        return resource.dom() == frozenset((cell,)) and resource[cell] == total

    return inv


def make_demo_locks(max_total: int = 1) -> tuple[CASLock, CASLock]:
    """Two independent CAS locks over disjoint cells and labels."""

    def one(label: str, bit, res) -> CASLock:
        return make_cas_lock(
            label,
            bit,
            NatPCM(sample_bound=max_total),
            _res_inv(res),
            crit_values=tuple(range(max_total + 2)),
        )

    return one(LA, LA_BIT, LA_RES), one(LB, LB_BIT, LB_RES)


def demo_world(la: CASLock, lb: CASLock) -> World:
    return World((Priv("pv"), la.concurroid, lb.concurroid))


def demo_initial_state(
    la: CASLock,
    lb: CASLock,
    a1: int = 0,
    b1: int = 0,
    a2: int = 0,
    b2: int = 0,
) -> State:
    return state_of(
        **{
            LA: la.concurroid.initial(pts(LA_RES, a1 + b1), a1, b1),
            LB: lb.concurroid.initial(pts(LB_RES, a2 + b2), a2, b2),
            "pv": SubjState(EMPTY, EMPTY, EMPTY),
        }
    )


def ladder(first: CASLock, second: CASLock) -> Prog:
    """acquire first; acquire second; bump second's cell; release both.

    The lock-order fact this contributes is "first held while acquiring
    second"; two ladders with opposite orders close the cycle.
    """
    res = RES_OF[second.concurroid.label]
    return seq(
        first.acquire(),
        second.acquire(),
        bind(second.read(res), lambda v: second.write(res, v + 1)),
        second.release(lambda a: a + 1),
        first.release(lambda a: a),
    )


def deadlock_par(la: CASLock, lb: CASLock) -> Prog:
    """The deadlock-prone composition: opposite-order ladders in parallel."""
    return par(ladder(la, lb), ladder(lb, la))


def verify_two_lock_demo(*, aux_bound: int = 1, env_budget: int = 1) -> VerificationReport:
    """Safety obligations for the two-lock demo (all green).

    The deadlock-prone ``deadlock_par`` composition is deliberately *not*
    among the Main triples — it can spin forever under an adversarial
    schedule, which is exactly the defect fcsl-live's static lock-order
    analysis reports (FCSL050).  What is verified: each ladder, run as
    the sole client under interference, is safe and bumps exactly its
    second lock's counter.
    """
    la, lb = make_demo_locks()
    builder = ReportBuilder("Two-lock demo")

    initials = [
        demo_initial_state(la, lb, a1, b1, a2, b2)
        for a1 in range(aux_bound + 1)
        for b1 in range(aux_bound + 1)
        for a2 in range(aux_bound + 1)
        for b2 in range(aux_bound + 1)
    ]
    for lock in (la, lb):
        conc = lock.concurroid
        lbl = conc.label
        states = sorted(protocol_closure(conc, initials, max_states=50_000), key=repr)
        builder.obligation(
            f"{lbl}-pcm-laws",
            "Libs",
            lambda conc=conc, lbl=lbl: check_all_laws(conc.pcms()[lbl]),
        )
        builder.obligation(
            f"{lbl}-metatheory",
            "Conc",
            lambda conc=conc, states=states: check_concurroid(conc, states),
        )
        for action, args in (
            (lock.try_acquire_action, [()]),
            (lock.read_action, [(RES_OF[lbl],)]),
            (lock.write_action, [(RES_OF[lbl], 0), (RES_OF[lbl], 1)]),
        ):
            builder.obligation(
                f"action-{action.name}",
                "Acts",
                lambda action=action, states=states, args=args: check_action(
                    action, states, args
                ),
            )
        builder.obligation(
            f"{lbl}-quiescent-stable",
            "Stab",
            lambda lock=lock, conc=conc, states=states: check_stability(
                lambda s: lock.quiescent(s), "quiescent", conc, states
            ),
        )

    world = demo_world(la, lb)
    for first, second, tag in ((la, lb, "la-then-lb"), (lb, la, "lb-then-la")):
        spec = Spec(
            f"ladder-{tag}",
            pre=lambda s: la.quiescent(s) and lb.quiescent(s),
            post=lambda r, s2, s1, first=first, second=second: (
                first.quiescent(s2)
                and second.quiescent(s2)
                and second.client_self(s2) == second.client_self(s1) + 1
                and first.client_self(s2) == first.client_self(s1)
            ),
        )
        scenarios = [
            Scenario(
                demo_initial_state(la, lb, a1, b1, a2, b2),
                ladder(first, second),
                label=f"ladder-{tag} a1={a1} b1={b1} a2={a2} b2={b2}",
            )
            for a1 in range(aux_bound)
            for b1 in range(aux_bound)
            for a2 in range(aux_bound)
            for b2 in range(aux_bound)
        ]
        builder.obligation(
            f"ladder-{tag}-triple",
            "Main",
            lambda spec=spec, scenarios=scenarios: triple_issues(
                check_triple(
                    world, spec, scenarios, max_steps=40, env_budget=env_budget
                )
            ),
        )
    return builder.build()


# -- the unfair (falsely FIFO-claiming) lock --------------------------------------------


class UnfairLock(CASLock):
    """A CAS lock whose acquire loop makes three CAS attempts per round.

    Functionally identical to :class:`CASLock` for safety; the triple
    retry only changes the *shape* of the spin, giving the acquire loop
    three structurally distinct phases.  The structure ships with a FIFO
    fairness claim it cannot honour (no tickets, no queue): a waiter's
    CAS can lose to the environment forever.
    """

    def acquire(self) -> Prog:
        attempt = self._try_acquire
        spin = ffix(
            lambda loop: lambda: bind(
                act(attempt),
                lambda g1: ret(None)
                if g1
                else bind(
                    act(attempt),
                    lambda g2: ret(None)
                    if g2
                    else bind(
                        act(attempt),
                        lambda g3: ret(None) if g3 else loop(),
                    ),
                ),
            ),
            label=f"{self.concurroid.label}.acquire",
        )
        return spin()


def make_unfair_lock(max_total: int = 2) -> UnfairLock:
    """An unfair lock over the same counter protocol as the CAS-lock."""
    return UnfairLock(
        CASLockConcurroid(
            LABEL,
            CAS_BIT,
            NatPCM(sample_bound=max_total),
            _counter_inv,
            crit_values=tuple(range(max_total + 2)),
        )
    )


def verify_unfair_lock(
    *,
    aux_bound: int = 1,
    env_budget: int = 1,
    fairness_env_budget: int = 3,
) -> VerificationReport:
    """Obligations for the unfair lock: safety green, fairness failing.

    The ``fifo-fairness`` Main obligation operationalises the (false)
    FIFO claim through the bounded livelock detector: any schedule that
    cycles without the claimant progressing refutes bounded bypass, and
    is recorded as a replayable livelock witness.
    """
    lock = make_unfair_lock()
    conc = lock.concurroid
    builder = ReportBuilder("Unfair lock demo")

    initials = [
        lock_initial_state(lock, a, b)
        for a in range(aux_bound + 1)
        for b in range(aux_bound + 1)
    ]
    states = sorted(protocol_closure(conc, initials, max_states=50_000), key=repr)

    builder.obligation(
        "subjective-pcm-laws", "Libs", lambda: check_all_laws(conc.pcms()[LABEL])
    )
    builder.obligation(
        "lock-metatheory", "Conc", lambda: check_concurroid(conc, states)
    )
    for action, args in (
        (lock.try_acquire_action, [()]),
        (lock.read_action, [(RES_CELL,)]),
        (lock.write_action, [(RES_CELL, 0), (RES_CELL, 2)]),
    ):
        builder.obligation(
            f"action-{action.name}",
            "Acts",
            lambda action=action, args=args: check_action(action, states, args),
        )
    builder.obligation(
        "quiescent-stable",
        "Stab",
        lambda: check_stability(
            lambda s: lock.quiescent(s), "quiescent", conc, states
        ),
    )

    world = lock_world(lock)
    spec = Spec(
        "bump-client",
        pre=lambda s: lock.quiescent(s),
        post=lambda r, s2, s1: (
            lock.quiescent(s2)
            and lock.client_self(s2) == lock.client_self(s1) + 1
        ),
    )
    scenarios = [
        Scenario(
            lock_initial_state(lock, a, b),
            bump_client(lock),
            label=f"bump a={a} b={b}",
        )
        for a in range(aux_bound + 1)
        for b in range(aux_bound + 1)
    ]
    builder.obligation(
        "bump-triple",
        "Main",
        lambda: triple_issues(
            check_triple(world, spec, scenarios, max_steps=40, env_budget=env_budget)
        ),
    )

    par_spec = Spec(
        "par-bump",
        pre=lambda s: lock.quiescent(s),
        post=lambda r, s2, s1: (
            lock.quiescent(s2)
            and lock.client_self(s2) == lock.client_self(s1) + 2
        ),
    )
    par_scenarios = [
        Scenario(
            lock_initial_state(lock, 0, b),
            par(bump_client(lock), bump_client(lock)),
            label=f"par-bump b={b}",
        )
        for b in range(aux_bound + 1)
    ]
    builder.obligation(
        "mutual-exclusion-par-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world, par_spec, par_scenarios, max_steps=80, env_budget=env_budget
            )
        ),
    )

    def fifo_issues():
        # Imported lazily: structures must not import the analysis package
        # at module load (the analysis targets import structures).
        from ...analysis.liveness import fairness_issues

        return fairness_issues(
            "Unfair lock demo",
            world,
            lock_initial_state(lock, 0, 0),
            bump_client(lock),
            env_budget=fairness_env_budget,
            max_steps=30,
        )

    builder.obligation("fifo-fairness", "Main", fifo_issues)
    return builder.build()

"""The Treiber stack (§6, Treiber [52]), specified with histories.

The canonical lock-free stack: a ``top`` pointer CASed over a linked list
of nodes.  Following the paper's composition (Figure 5 and Table 2), the
structure entangles **three** concurroids:

* ``Priv`` — the pushing thread prepares its node in private memory;
* ``ALock`` — the CG allocator supplies fresh nodes (push calls ``alloc``);
* ``Treiber`` — the stack protocol proper: the joint heap holds ``TOP``
  plus the node region; ``self``/``other`` are **time-stamped histories**
  of abstract stack states (tuples of values, top first), as in [47].

Key modelling points, all paper-faithful:

* **nodes are never freed** — popped nodes stay in the joint region as
  garbage, which is what makes the racy ``read_node`` after an interfering
  pop safe (and what rules ABA out);
* **push transfers ownership**: the successful CAS moves the privately
  prepared node from ``Priv`` into the Treiber region — a connector
  transition of the entanglement, like the allocator's (§4.1);
* the CAS actions *erase* to a single compare-and-swap on ``TOP``.

Specs: ``push v`` extends the caller's history by one ``s ==> v·s`` entry;
``pop`` either returns ``Some v`` and owns a fresh ``v·s ==> s`` entry, or
returns ``None`` and the stack was empty at some moment during the call.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from ..core.action import Action
from ..core.concurroid import Concurroid, Transition
from ..core.entangle import entangle
from ..core.prog import Prog, act, bind, ffix, ret, seq
from ..core.spec import Spec
from ..core.state import State, SubjState, state_of
from ..heap import EMPTY, NULL, Heap, Ptr, heap_of, pts, ptr
from ..pcm.base import PCM
from ..pcm.histories import HistEntry, History, HistoryPCM
from .allocator import ALLOC_LABEL, AllocatorStructure, WritePrivAction, make_alloc_lock

TB_LABEL = "tb"
PRIV_LABEL = "pv"
#: The stack's top-pointer cell.
TOP = ptr(50)

#: An abstract stack: a tuple of values, top first.
Stack = tuple


def stack_of(state: State, label: str = TB_LABEL) -> Stack:
    """Read off the concrete stack by chasing ``TOP`` (assumes coherence)."""
    joint = state.joint_of(label)
    out = []
    node = joint[TOP]
    seen = set()
    while node != NULL and node in joint and node not in seen:
        seen.add(node)
        value, nxt = joint[node]
        out.append(value)
        node = nxt
    return tuple(out)


class TreiberConcurroid(Concurroid):
    """The ``Treiber`` concurroid."""

    def __init__(self, label: str = TB_LABEL, max_ops: int = 4):
        self._label = label
        #: Model bound on total stack operations (history length).
        self._max_ops = max_ops
        self._pcm = HistoryPCM()

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    @property
    def max_ops(self) -> int:
        return self._max_ops

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    # -- projections ----------------------------------------------------------------

    def total_history(self, state: State) -> History:
        comp = state[self._label]
        return self._pcm.join(comp.self_, comp.other)

    def stack(self, state: State) -> Stack:
        return stack_of(state, self._label)

    # -- coherence --------------------------------------------------------------------

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        joint = comp.joint
        if not isinstance(joint, Heap) or not joint.is_valid:
            return False
        if TOP not in joint or not isinstance(joint[TOP], Ptr):
            return False
        # Every node cell (everything but TOP) has shape (value, next-ptr)
        # with next inside the region or null — garbage included.
        for p, cell in joint.items():
            if p == TOP:
                continue
            if not (isinstance(cell, tuple) and len(cell) == 2):
                return False
            if not isinstance(cell[1], Ptr):
                return False
            if cell[1] != NULL and cell[1] not in joint:
                return False
        # The chain from TOP is finite and null-terminated (no cycle).
        node, seen = joint[TOP], set()
        while node != NULL:
            if node not in joint or node in seen:
                return False
            seen.add(node)
            node = joint[node][1]
        total = self._pcm.join(comp.self_, comp.other)
        if not self._pcm.valid(total):
            return False
        if not total.continuous_from(()):
            return False
        return total.final_state(()) == self.stack(state)

    # -- transitions --------------------------------------------------------------------
    #
    # ``pop`` is a transition of the Treiber concurroid alone; ``push``
    # crosses into Priv (ownership transfer) and therefore lives as a
    # connector of the entanglement — see TreiberStructure._connectors.

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def pop_requires(state: State, __: Any) -> bool:
            if len(self.total_history(state)) >= self._max_ops:
                return False
            return state.joint_of(lbl)[TOP] != NULL

        def pop_effect(state: State, __: Any) -> State:
            def upd(comp: SubjState) -> SubjState:
                top = comp.joint[TOP]
                value, nxt = comp.joint[top]
                before = self.stack(state)
                after = before[1:]
                ts = self.total_history(state).last_timestamp() + 1
                return SubjState(
                    comp.self_.extend(ts, HistEntry(before, after)),
                    comp.joint.update(TOP, nxt),
                    comp.other,
                )

            return state.update(lbl, upd)

        return (Transition(f"{lbl}.pop", pop_requires, pop_effect),)

    # -- initial states --------------------------------------------------------------------

    def initial(
        self,
        nodes: Mapping[Ptr, tuple] | None = None,
        top: Ptr = NULL,
        self_hist: History | None = None,
        other_hist: History | None = None,
    ) -> SubjState:
        joint = pts(TOP, top).join(heap_of(dict(nodes or {})))
        return SubjState(
            self_hist if self_hist is not None else History(),
            joint,
            other_hist if other_hist is not None else History(),
        )


class TreiberStructure:
    """Priv ⋈ ALock ⋈ Treiber, with push and allocator connectors."""

    def __init__(
        self,
        *,
        max_ops: int = 4,
        pool: tuple[int, ...] = (101, 102),
        value_domain: tuple = (0, 1),
    ):
        self.treiber = TreiberConcurroid(max_ops=max_ops)
        self.alloc = AllocatorStructure(
            make_alloc_lock(),
            # The private value domain must cover prepared nodes so the
            # correspondence checks recognise node preparation as a Priv
            # write transition.
            priv_values=(0,) + tuple((v, NULL) for v in value_domain),
        )
        self._values = value_domain
        self.concurroid = entangle(
            self.alloc.concurroid,
            self.treiber,
            connectors=self._connectors(),
        )
        self.read_top = ReadTopAction(self)
        self.read_node = ReadNodeAction(self)
        self.cas_push = CasPushAction(self)
        self.cas_pop = CasPopAction(self)
        self.prep_node = WritePrivAction(self.alloc)
        self.prep_node._concurroid = self.concurroid  # rebind to the full world
        self._pool = pool

    # -- the push connector -------------------------------------------------------------

    def _connectors(self) -> tuple[Transition, ...]:
        tb = self.treiber

        def push_params(state: State) -> Iterator[Ptr]:
            if PRIV_LABEL in state:
                heap = state.self_of(PRIV_LABEL)
                yield from sorted(heap.dom(), key=lambda q: q.addr)

        def push_requires(state: State, p: Ptr) -> bool:
            if TB_LABEL not in state or PRIV_LABEL not in state:
                return False
            if len(tb.total_history(state)) >= tb.max_ops:
                return False
            mine = state.self_of(PRIV_LABEL)
            if p not in mine:
                return False
            cell = mine[p]
            if not (isinstance(cell, tuple) and len(cell) == 2 and isinstance(cell[1], Ptr)):
                return False
            if p in state.joint_of(TB_LABEL):
                return False
            return cell[1] == state.joint_of(TB_LABEL)[TOP]

        def push_effect(state: State, p: Ptr) -> State:
            cell = state.self_of(PRIV_LABEL)[p]
            out = state.update(PRIV_LABEL, lambda c: c.with_self(c.self_.free(p)))

            def upd(comp: SubjState) -> SubjState:
                before = tb.stack(state)
                after = (cell[0],) + before
                ts = tb.total_history(state).last_timestamp() + 1
                return SubjState(
                    comp.self_.extend(ts, HistEntry(before, after)),
                    comp.joint.join(pts(p, cell)).update(TOP, p),
                    comp.other,
                )

            return out.update(TB_LABEL, upd)

        return (Transition("tb.push", push_requires, push_effect, push_params),)

    # -- programs -------------------------------------------------------------------------

    def push(self, value: Any) -> Prog:
        """Allocate, prepare privately, CAS-spin onto the stack."""

        def cas_loop(p: Ptr) -> Prog:
            spin = ffix(
                lambda loop: lambda: bind(
                    act(self.read_top),
                    lambda t: seq(
                        act(self.prep_node, p, (value, t)),
                        bind(
                            act(self.cas_push, t, p),
                            lambda ok: ret(None) if ok else loop(),
                        ),
                    ),
                ),
                label="push",
            )
            return spin()

        return bind(self.alloc.alloc(), cas_loop)

    def pop(self) -> Prog:
        """CAS-spin the top off the stack; ``None`` on empty."""

        def attempt(loop) -> Prog:
            def read_and_cas(t: Ptr) -> Prog:
                if t == NULL:
                    return ret(None)
                return bind(
                    act(self.read_node, t),
                    lambda cell: bind(
                        act(self.cas_pop, t, cell[1]),
                        lambda ok: ret(cell[0]) if ok else loop(),
                    ),
                )

            return bind(act(self.read_top), read_and_cas)

        return ffix(lambda loop: lambda: attempt(loop), label="pop")()

    # -- states ----------------------------------------------------------------------------

    def initial_state(
        self,
        stack_nodes: Sequence[tuple[int, Any]] = (),
        self_hist: History | None = None,
        other_hist: History | None = None,
        my_heap: Heap = EMPTY,
        env_heap: Heap = EMPTY,
    ) -> State:
        """Build a state whose stack holds ``stack_nodes`` (top first) as
        ``(address, value)`` pairs; histories must replay to that stack."""
        nodes: dict[Ptr, tuple] = {}
        top = NULL
        for addr, value in reversed(list(stack_nodes)):
            nodes[ptr(addr)] = (value, top)
            top = ptr(addr)
        pool_heap = heap_of({ptr(a): 0 for a in self._pool})
        return state_of(
            **{
                PRIV_LABEL: SubjState(my_heap, EMPTY, env_heap),
                ALLOC_LABEL: self.alloc.lock.concurroid.initial(pool_heap),
                TB_LABEL: self.treiber.initial(nodes, top, self_hist, other_hist),
            }
        )


# -- atomic actions ----------------------------------------------------------------------------


class ReadTopAction(Action):
    """Read ``TOP``; idle."""

    def __init__(self, structure: TreiberStructure):
        super().__init__(structure.concurroid)
        self.name = "tb.read_top"

    def safe(self, state: State, *args: Any) -> bool:
        return TB_LABEL in state and TOP in state.joint_of(TB_LABEL)

    def step(self, state: State, *args: Any) -> tuple[Ptr, State]:
        return state.joint_of(TB_LABEL)[TOP], state


class ReadNodeAction(Action):
    """Read a node cell — safe even if the node was popped meanwhile,
    because nodes are never freed."""

    def __init__(self, structure: TreiberStructure):
        super().__init__(structure.concurroid)
        self.name = "tb.read_node"

    def safe(self, state: State, p: Ptr) -> bool:
        return TB_LABEL in state and p in state.joint_of(TB_LABEL) and p != TOP

    def step(self, state: State, p: Ptr) -> tuple[tuple, State]:
        return state.joint_of(TB_LABEL)[p], state


class CasPushAction(Action):
    """``CAS(TOP, t, p)``: on success the prepared node ``p`` moves from
    the private heap into the stack and the caller's history grows."""

    def __init__(self, structure: TreiberStructure):
        super().__init__(structure.concurroid)
        self._structure = structure
        self.name = "tb.cas_push"

    def safe(self, state: State, t: Ptr, p: Ptr) -> bool:
        tb = self._structure.treiber
        if TB_LABEL not in state or PRIV_LABEL not in state:
            return False
        mine = state.self_of(PRIV_LABEL)
        if p not in mine:
            return False
        cell = mine[p]
        if not (isinstance(cell, tuple) and len(cell) == 2 and isinstance(cell[1], Ptr)):
            return False
        if state.joint_of(TB_LABEL)[TOP] != t:
            return True  # CAS will fail: that is safe
        # Success path: the prepared next must be the expected top, and
        # there must be history budget.
        return cell[1] == t and len(tb.total_history(state)) < tb.max_ops

    def step(self, state: State, t: Ptr, p: Ptr) -> tuple[bool, State]:
        tb = self._structure.treiber
        if state.joint_of(TB_LABEL)[TOP] != t:
            return False, state
        cell = state.self_of(PRIV_LABEL)[p]
        out = state.update(PRIV_LABEL, lambda c: c.with_self(c.self_.free(p)))

        def upd(comp: SubjState) -> SubjState:
            before = tb.stack(state)
            after = (cell[0],) + before
            ts = tb.total_history(state).last_timestamp() + 1
            return SubjState(
                comp.self_.extend(ts, HistEntry(before, after)),
                comp.joint.join(pts(p, cell)).update(TOP, p),
                comp.other,
            )

        return True, out.update(TB_LABEL, upd)

    def footprint(self, state: State, t: Ptr, p: Ptr) -> frozenset[Ptr]:
        return frozenset((TOP,))


class CasPopAction(Action):
    """``CAS(TOP, t, n)``: on success the caller owns the pop entry."""

    def __init__(self, structure: TreiberStructure):
        super().__init__(structure.concurroid)
        self._structure = structure
        self.name = "tb.cas_pop"

    def safe(self, state: State, t: Ptr, n: Ptr) -> bool:
        tb = self._structure.treiber
        if TB_LABEL not in state:
            return False
        joint = state.joint_of(TB_LABEL)
        if t == TOP or t not in joint:
            return False
        if joint[TOP] != t:
            return True  # failing CAS is safe
        # Success path: n must be t's recorded next (true along program
        # paths: node links are immutable once in the region), and there
        # must be history budget.
        return joint[t][1] == n and len(tb.total_history(state)) < tb.max_ops

    def step(self, state: State, t: Ptr, n: Ptr) -> tuple[bool, State]:
        tb = self._structure.treiber
        joint = state.joint_of(TB_LABEL)
        if joint[TOP] != t:
            return False, state

        def upd(comp: SubjState) -> SubjState:
            before = tb.stack(state)
            after = before[1:]
            ts = tb.total_history(state).last_timestamp() + 1
            return SubjState(
                comp.self_.extend(ts, HistEntry(before, after)),
                comp.joint.update(TOP, n),
                comp.other,
            )

        return True, state.update(TB_LABEL, upd)

    def footprint(self, state: State, t: Ptr, n: Ptr) -> frozenset[Ptr]:
        return frozenset((TOP,))


# -- specifications -------------------------------------------------------------------------------


def stack_states_since(conc: TreiberConcurroid, s1: State, s2: State) -> list[Stack]:
    """Every abstract stack the structure inhabited between the calls."""
    k1 = conc.total_history(s1).last_timestamp()
    states = [conc.stack(s1)]
    for ts, entry in conc.total_history(s2).items():
        if ts > k1:
            states.append(entry.after)
    return states


def push_spec(conc: TreiberConcurroid, value: Any) -> Spec:
    """``{self = h} push v {self = h \\+ ts :-> (s ==> v·s)}`` ([47])."""

    def pre(s: State) -> bool:
        return len(conc.total_history(s)) < conc.max_ops

    def post(r: Any, s2: State, s1: State) -> bool:
        h1, h2 = s1.self_of(TB_LABEL), s2.self_of(TB_LABEL)
        fresh = h2.timestamps() - h1.timestamps()
        if len(fresh) != 1:
            return False
        (ts,) = fresh
        entry = h2[ts]
        return entry.after == (value,) + entry.before

    return Spec(f"push_tp({value!r})", pre, post)


def pop_spec(conc: TreiberConcurroid) -> Spec:
    """``pop`` owns one pop entry (Some) or witnessed emptiness (None)."""

    def pre(s: State) -> bool:
        return len(conc.total_history(s)) < conc.max_ops

    def post(r: Any, s2: State, s1: State) -> bool:
        h1, h2 = s1.self_of(TB_LABEL), s2.self_of(TB_LABEL)
        fresh = h2.timestamps() - h1.timestamps()
        if r is None:
            # Emptiness was observable at some moment during the call.
            if fresh:
                return False
            return () in set(stack_states_since(conc, s1, s2))
        if len(fresh) != 1:
            return False
        (ts,) = fresh
        entry = h2[ts]
        return entry.before and entry.before[0] == r and entry.after == entry.before[1:]

    return Spec("pop_tp", pre, post)

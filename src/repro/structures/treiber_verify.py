"""Verification of the Treiber stack (Table 1 row "Treiber stack").

This structure introduces a new concurroid, so — matching the paper's
Table 1 row, where Conc/Acts/Stab dominate — every obligation category is
populated:

* ``Libs`` — history-PCM laws and the stack-replay agreement lemma;
* ``Conc`` — metatheory of the three-way entanglement Priv ⋈ ALock ⋈
  Treiber (including the push connector);
* ``Acts`` — the four stack actions plus node preparation;
* ``Stab`` — the history facts client reasoning rests on: one's own
  entries are immutable, timestamps only grow, witnessed entries persist;
* ``Main`` — push/pop triples under adversarial interference, and the
  parallel compositions (push‖push, push‖pop, pop‖pop).
"""

from __future__ import annotations

from typing import Any

from ..core.action import check_action
from ..core.concurroid import check_concurroid, protocol_closure
from ..core.prog import par
from ..core.spec import Scenario, Spec
from ..core.stability import check_stability
from ..core.state import State
from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
from ..core.world import World
from ..heap import NULL, ptr
from ..pcm.histories import HistEntry, HistoryPCM, hist
from ..pcm.laws import check_all_laws
from .treiber import (
    TB_LABEL,
    TreiberStructure,
    pop_spec,
    push_spec,
    stack_states_since,
)


def small_structure(max_ops: int = 3) -> TreiberStructure:
    return TreiberStructure(max_ops=max_ops, pool=(101, 102))


def model_structure() -> TreiberStructure:
    """A deliberately tiny instance for the state-family obligations
    (the closure of the full scenario instance is ~100x larger with no
    new protocol behaviour — only more values and addresses)."""
    return TreiberStructure(max_ops=2, pool=(101,), value_domain=(1,))


def model_states(structure: TreiberStructure, max_states: int = 60_000) -> list[State]:
    initials = [
        structure.initial_state(),
        structure.initial_state(stack_nodes=[(60, 1)], other_hist=hist((1, (), (1,)))),
        structure.initial_state(
            stack_nodes=[(60, 0), (61, 1)],
            self_hist=hist((2, (1,), (0, 1))),
            other_hist=hist((1, (), (1,))),
        ),
    ]
    return sorted(
        protocol_closure(structure.concurroid, initials, max_states=max_states),
        key=repr,
    )


def _replay_agreement(states: list[State], structure: TreiberStructure) -> list[str]:
    """Lemma: on every coherent model state the concrete chain from TOP
    equals the history replay (the linearizability anchor)."""
    issues = []
    conc = structure.treiber
    for s in states:
        if not structure.concurroid.coherent(s):
            continue
        if conc.total_history(s).final_state(()) != conc.stack(s):
            issues.append(f"replay disagrees with heap at {s!r}")
            if len(issues) >= 3:
                break
    return issues


def verify_treiber_stack(
    *,
    env_budget: int = 1,
    max_ops: int = 3,
) -> VerificationReport:
    """Discharge every obligation for the Treiber stack."""
    structure = small_structure(max_ops=max_ops)
    conc = structure.treiber
    builder = ReportBuilder("Treiber stack")

    builder.obligation("history-pcm-laws", "Libs", lambda: check_all_laws(HistoryPCM()))

    model = model_structure()
    states = model_states(model)
    builder.obligation(
        "replay-agreement-lemma", "Libs", lambda: _replay_agreement(states, model)
    )

    builder.obligation(
        "entangled-treiber-metatheory",
        "Conc",
        lambda: check_concurroid(model.concurroid, states),
    )

    node_args = [(ptr(60),), (ptr(101),)]
    cas_args = [
        (NULL, ptr(101)),
        (ptr(60), ptr(101)),
        (ptr(60), NULL),
        (ptr(61), ptr(60)),
    ]
    for action, args in (
        (model.read_top, [()]),
        (model.read_node, node_args),
        (model.cas_push, cas_args),
        (model.cas_pop, cas_args),
        (model.prep_node, [(ptr(101), (1, NULL))]),
    ):
        builder.obligation(
            f"action-{action.name}",
            "Acts",
            lambda action=action, args=args: check_action(action, states, args),
        )

    # Stab: the facts history-based client reasoning rests on.
    mconc = model.treiber
    builder.obligation(
        "own-history-immutable",
        "Stab",
        lambda: check_stability(
            lambda s: s.self_of(TB_LABEL) == hist((2, (1,), (0, 1))),
            "self history fixed",
            model.concurroid,
            states,
        ),
    )
    builder.obligation(
        "witnessed-entry-persists",
        "Stab",
        lambda: check_stability(
            lambda s: mconc.total_history(s).get(1) == HistEntry((), (1,)),
            "entry@1 = () ==> (1,)",
            model.concurroid,
            states,
        ),
    )
    builder.obligation(
        "timestamps-grow",
        "Stab",
        lambda: check_stability(
            lambda s: mconc.total_history(s).last_timestamp() >= 1,
            "last ts >= 1",
            model.concurroid,
            states,
        ),
    )

    # Main: the triples.
    world = World((structure.concurroid,))

    def fresh() -> TreiberStructure:
        return structure

    builder.obligation(
        "push-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                push_spec(conc, 1),
                [
                    Scenario(structure.initial_state(), structure.push(1), label="push empty"),
                    Scenario(
                        structure.initial_state(
                            stack_nodes=[(60, 0)], other_hist=hist((1, (), (0,)))
                        ),
                        structure.push(1),
                        label="push nonempty",
                    ),
                ],
                max_steps=40,
                env_budget=env_budget,
            )
        ),
    )
    builder.obligation(
        "pop-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                pop_spec(conc),
                [
                    Scenario(structure.initial_state(), structure.pop(), label="pop empty"),
                    Scenario(
                        structure.initial_state(
                            stack_nodes=[(60, 1)], other_hist=hist((1, (), (1,)))
                        ),
                        structure.pop(),
                        label="pop nonempty",
                    ),
                ],
                max_steps=30,
                env_budget=env_budget,
            )
        ),
    )

    def par_post_pushpush(r: Any, s2: State, s1: State) -> bool:
        h2 = s2.self_of(TB_LABEL)
        entries = list(h2.items())
        if len(entries) != 2:
            return False
        pushed = sorted(e.after[0] for __, e in entries)
        return pushed == [0, 1] and all(
            e.after == (e.after[0],) + e.before for __, e in entries
        )

    builder.obligation(
        "par-push-push-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                Spec("push||push", lambda s: True, par_post_pushpush),
                [
                    Scenario(
                        structure.initial_state(),
                        par(structure.push(0), structure.push(1)),
                        label="push||push",
                    )
                ],
                max_steps=60,
                env_budget=0,
                max_configs=400_000,
            )
        ),
    )

    def par_post_pushpop(r: Any, s2: State, s1: State) -> bool:
        __, popped = r
        h2 = s2.self_of(TB_LABEL)
        push_entries = [e for __, e in h2.items() if len(e.after) > len(e.before)]
        pop_entries = [e for __, e in h2.items() if len(e.after) < len(e.before)]
        if len(push_entries) != 1:
            return False
        if popped is None:
            return not pop_entries and () in set(stack_states_since(conc, s1, s2))
        return len(pop_entries) == 1 and pop_entries[0].before[0] == popped

    builder.obligation(
        "par-push-pop-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                Spec("push||pop", lambda s: True, par_post_pushpop),
                [
                    Scenario(
                        structure.initial_state(),
                        par(structure.push(1), structure.pop()),
                        label="push||pop on empty",
                    ),
                    Scenario(
                        structure.initial_state(
                            stack_nodes=[(60, 0)], other_hist=hist((1, (), (0,)))
                        ),
                        par(structure.push(1), structure.pop()),
                        label="push||pop on [0]",
                    ),
                ],
                max_steps=60,
                env_budget=0,
                max_configs=400_000,
            )
        ),
    )

    return builder.build()

"""The concurrent spanning-tree construction (§2–§3, Figures 1–4).

``span`` traverses a heap-represented binary graph, marking nodes with CAS
and pruning redundant edges, so that the surviving edges form a maximal
tree rooted at the argument.  This module is the Python rendition of the
paper's running example, component by component:

* :class:`SpanTreeConcurroid` — the ``SpanTree`` concurroid of §3.3:
  joint = the graph heap, ``self``/``other`` = disjoint sets of nodes
  marked by the observing thread and its environment; transitions
  ``marknode`` and ``nullify`` (the latter *self-enabled*: only a thread
  that marked ``x`` may cut ``x``'s edges — the asymmetry Chalice cannot
  express, §7).
* :class:`TryMarkAction`, :class:`ReadChildAction`, :class:`NullifyAction`
  — the atomic actions of §2.2.2/§3.4 (``trymark`` erases to CAS).
* :func:`make_span` — Figure 3's program, recursion via ``ffix``,
  children spawned with ``par``.
* :func:`span_spec` — Figure 4's ``span_tp`` with its bi-directional
  postcondition (forward: ``tree``/``maximal`` in the post-graph;
  backward: ``front`` of the pre-graph is marked).
* :func:`make_span_root` / :func:`span_root_spec` — §3.5's ``hide``:
  the top-level call runs interference-free and therefore produces a
  *spanning* tree.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from ..core.action import Action
from ..core.concurroid import Concurroid, Transition
from ..core.prog import Prog, act, bind, ffix, hide, par, ret, seq
from ..core.spec import Spec
from ..core.state import State, SubjState, state_of
from ..graphs.lemmas import MarkedGraph, subgraph
from ..graphs.paths import connected, front, is_tree, maximal
from ..graphs.reprs import LEFT, RIGHT, GraphView, Side, is_graph
from ..heap import EMPTY, NULL, Heap, Ptr
from ..pcm.base import PCM
from ..pcm.setpcm import SetPCM

#: Default labels, matching the paper's variable names.
SPAN_LABEL = "sp"
PRIV_LABEL = "pv"


class SpanTreeConcurroid(Concurroid):
    """The ``SpanTree sp`` concurroid (§3.3)."""

    def __init__(self, label: str = SPAN_LABEL):
        self._label = label
        self._pcm = SetPCM()

    @property
    def labels(self) -> tuple[str, ...]:
        return (self._label,)

    def pcms(self) -> Mapping[str, PCM]:
        return {self._label: self._pcm}

    # -- coherence (the ``coh`` predicate of §3.3) --------------------------------

    def coherent(self, state: State) -> bool:
        if self._label not in state:
            return False
        comp = state[self._label]
        if not isinstance(comp.joint, Heap) or not is_graph(comp.joint):
            return False
        if not isinstance(comp.self_, frozenset) or not isinstance(comp.other, frozenset):
            return False
        marked_union = self._pcm.join(comp.self_, comp.other)
        if not self._pcm.valid(marked_union):
            return False  # self and other must be disjoint
        g = GraphView(comp.joint)
        return marked_union == g.marked_nodes()

    # -- transitions ----------------------------------------------------------------

    def transitions(self) -> Sequence[Transition]:
        lbl = self._label

        def mark_params(state: State) -> Iterator[Ptr]:
            g = GraphView(state.joint_of(lbl))
            yield from sorted(g.unmarked_nodes(), key=lambda p: p.addr)

        def mark_requires(state: State, x: Ptr) -> bool:
            joint = state.joint_of(lbl)
            return is_graph(joint) and x in joint and not GraphView(joint).mark(x)

        def mark_effect(state: State, x: Ptr) -> State:
            def upd(comp: SubjState) -> SubjState:
                g = GraphView(comp.joint)
                return SubjState(
                    comp.self_ | frozenset((x,)), g.mark_node(x), comp.other
                )

            return state.update(lbl, upd)

        def nullify_params(state: State) -> Iterator[tuple[Ptr, Side]]:
            for x in sorted(state.self_of(lbl), key=lambda p: p.addr):
                yield (x, LEFT)
                yield (x, RIGHT)

        def nullify_requires(state: State, param: tuple[Ptr, Side]) -> bool:
            x, __ = param
            return x in state.self_of(lbl) and x in state.joint_of(lbl)

        def nullify_effect(state: State, param: tuple[Ptr, Side]) -> State:
            x, side = param

            def upd(comp: SubjState) -> SubjState:
                g = GraphView(comp.joint)
                return SubjState(comp.self_, g.null_edge(side, x), comp.other)

            return state.update(lbl, upd)

        return (
            Transition(f"{lbl}.marknode", mark_requires, mark_effect, mark_params),
            Transition(f"{lbl}.nullify", nullify_requires, nullify_effect, nullify_params),
        )

    # -- convenience --------------------------------------------------------------------

    def graph(self, state: State) -> GraphView:
        return GraphView(state.joint_of(self._label))

    def marked_by_self(self, state: State) -> frozenset[Ptr]:
        return state.self_of(self._label)

    def marked_by_other(self, state: State) -> frozenset[Ptr]:
        return state.other_of(self._label)

    def as_marked_graph(self, state: State) -> MarkedGraph:
        return MarkedGraph(
            self.graph(state),
            self.marked_by_self(state),
            self.marked_by_other(state),
        )

    def initial(self, graph_heap: Heap, self_marked: frozenset[Ptr] = frozenset(), other_marked: frozenset[Ptr] = frozenset()) -> SubjState:
        return SubjState(self_marked, graph_heap, other_marked)


# -- atomic actions ------------------------------------------------------------------------


class TryMarkAction(Action):
    """``trymark x`` — erases to ``CAS(x->m, 0, 1)`` (line 4 of Fig. 1).

    On success it takes the ``marknode`` transition (marking ``x`` and
    adding it to ``self`` simultaneously); on failure it is ``idle``.
    """

    def __init__(self, conc: SpanTreeConcurroid):
        super().__init__(conc)
        self._conc = conc
        self.name = f"{conc.label}.trymark"

    def safe(self, state: State, x: Ptr) -> bool:
        lbl = self._conc.label
        return lbl in state and x in state.joint_of(lbl)

    def step(self, state: State, x: Ptr) -> tuple[bool, State]:
        lbl = self._conc.label
        comp = state[lbl]
        g = GraphView(comp.joint)
        if g.mark(x):
            return False, state
        new = SubjState(comp.self_ | frozenset((x,)), g.mark_node(x), comp.other)
        return True, state.set(lbl, new)

    def footprint(self, state: State, x: Ptr) -> frozenset[Ptr]:
        return frozenset((x,))


class ReadChildAction(Action):
    """``read_child x side`` — pointer read; requires ``x ∈ self`` (§2.2.2)."""

    def __init__(self, conc: SpanTreeConcurroid):
        super().__init__(conc)
        self._conc = conc
        self.name = f"{conc.label}.read_child"

    def safe(self, state: State, x: Ptr, side: Side) -> bool:
        lbl = self._conc.label
        return lbl in state and x in state.self_of(lbl) and x in state.joint_of(lbl)

    def step(self, state: State, x: Ptr, side: Side) -> tuple[Ptr, State]:
        return self._conc.graph(state).child(x, side), state


class NullifyAction(Action):
    """``nullify x side`` — cut an edge out of a self-marked node."""

    def __init__(self, conc: SpanTreeConcurroid):
        super().__init__(conc)
        self._conc = conc
        self.name = f"{conc.label}.nullify"

    def safe(self, state: State, x: Ptr, side: Side) -> bool:
        lbl = self._conc.label
        return lbl in state and x in state.self_of(lbl) and x in state.joint_of(lbl)

    def step(self, state: State, x: Ptr, side: Side) -> tuple[None, State]:
        lbl = self._conc.label
        comp = state[lbl]
        g = GraphView(comp.joint)
        return None, state.set(lbl, comp.with_joint(g.null_edge(side, x)))

    def footprint(self, state: State, x: Ptr, side: Side) -> frozenset[Ptr]:
        return frozenset((x,))


class SpanActions:
    """The action bundle of one ``SpanTree`` instance."""

    def __init__(self, conc: SpanTreeConcurroid):
        self.concurroid = conc
        self.trymark = TryMarkAction(conc)
        self.read_child = ReadChildAction(conc)
        self.nullify = NullifyAction(conc)


# -- the program (Figure 3) --------------------------------------------------------------------


def make_span(actions: SpanActions):
    """Build ``span : ptr -> Prog`` over a ``SpanTree`` instance."""

    def gen(loop):
        def body(x: Ptr) -> Prog:
            if x == NULL:
                return ret(False)
            return bind(act(actions.trymark, x), lambda b: _marked_branch(b, x, loop))

        return body

    def _marked_branch(b: bool, x: Ptr, loop) -> Prog:
        if not b:
            return ret(False)
        return bind(
            act(actions.read_child, x, LEFT),
            lambda xl: bind(
                act(actions.read_child, x, RIGHT),
                lambda xr: bind(
                    par(loop(xl), loop(xr)),
                    lambda rs: seq(
                        ret(None) if rs[0] else act(actions.nullify, x, LEFT),
                        ret(None) if rs[1] else act(actions.nullify, x, RIGHT),
                        ret(True),
                    ),
                ),
            ),
        )

    return ffix(gen, label="span")


# -- the specification (Figure 4) ----------------------------------------------------------------


def span_spec(conc: SpanTreeConcurroid, x: Ptr) -> Spec:
    """``span_tp`` for the call ``span x`` (open world)."""

    def pre(s: State) -> bool:
        return x == NULL or x in s.joint_of(conc.label)

    def post(r: Any, s2: State, s1: State) -> bool:
        g1, g2 = conc.graph(s1), conc.graph(s2)
        if not subgraph(conc.as_marked_graph(s1), conc.as_marked_graph(s2)):
            return False
        self1, self2 = conc.marked_by_self(s1), conc.marked_by_self(s2)
        if r:
            if x == NULL:
                return False
            if not self1 <= self2:
                return False
            t = self2 - self1  # self s2 = self i \+ t
            marked_total = self2 | conc.marked_by_other(s2)
            return (
                is_tree(g2, x, t)
                and maximal(g2, t)
                and front(g1, t, marked_total)
            )
        return (x == NULL or g2.mark(x)) and self2 == self1

    return Spec(f"span_tp({x!r})", pre, post)


# -- hiding: the top-level call (§3.5) -------------------------------------------------------------


def make_span_root(
    actions: SpanActions,
    x: Ptr,
    *,
    priv_label: str = PRIV_LABEL,
) -> Prog:
    """``span_root x = Do (priv_hide pv (graph_dec sp) (h1, Unit) [span sp x])``.

    The decoration donates the *entire* private heap (which the
    precondition requires to be the graph ``h1``); the initial auxiliary
    self is the empty set of marked nodes.
    """
    span = make_span(actions)
    return hide(
        actions.concurroid,
        donate_heap=lambda h: (h, EMPTY),
        initial_self=frozenset(),
        body=span(x),
        priv_label=priv_label,
    )


def span_root_spec(x: Ptr, *, priv_label: str = PRIV_LABEL) -> Spec:
    """``span_root_tp`` (§3.5): under no interference, ``span`` marks every
    node and the surviving edges form a spanning tree rooted at ``x``."""

    def pre(s: State) -> bool:
        h1 = s.self_of(priv_label)
        if not isinstance(h1, Heap) or not is_graph(h1):
            return False
        g1 = GraphView(h1)
        if g1.marked_nodes():
            return False  # forall y, ~~(mark g1 y)
        return x in h1 and connected(g1, x, h1.dom())

    def post(r: Any, s2: State, s1: State) -> bool:
        h1, h2 = s1.self_of(priv_label), s2.self_of(priv_label)
        if not is_graph(h2):
            return False
        g1, g2 = GraphView(h1), GraphView(h2)
        if h1.dom() != h2.dom():
            return False
        for y in h2.dom():  # edges only nullified, never added or redirected
            if g2.edgl(y) not in (NULL, g1.edgl(y)):
                return False
            if g2.edgr(y) not in (NULL, g1.edgr(y)):
                return False
        t = h2.dom()  # dom t =i dom h1
        return is_tree(g2, x, t)

    return Spec(f"span_root_tp({x!r})", pre, post)


# -- state builders -----------------------------------------------------------------------------


def open_world_state(
    conc: SpanTreeConcurroid,
    graph_heap: Heap,
    self_marked: frozenset[Ptr] = frozenset(),
    other_marked: frozenset[Ptr] = frozenset(),
    *,
    priv_label: str = PRIV_LABEL,
) -> State:
    """An initial state for the open-world ``span_tp`` scenarios."""
    return state_of(
        **{
            conc.label: conc.initial(graph_heap, self_marked, other_marked),
            priv_label: SubjState(EMPTY, EMPTY, EMPTY),
        }
    )


def closed_world_state(graph_heap: Heap, *, priv_label: str = PRIV_LABEL) -> State:
    """An initial state for ``span_root``: the graph in the private heap."""
    return state_of(**{priv_label: SubjState(graph_heap, EMPTY, EMPTY)})

"""The coarse-grained incrementor (§6: "CG increment").

The classic subjective-auxiliary-state example of Ley-Wild & Nanevski
[33]: a shared counter cell protected by a lock, with client PCM
``(nat, +, 0)``.  Each thread's ``self`` records how much *it* has added;
the resource invariant ties the counter's contents to the *total*
contribution::

    inv(resource, total)  <=>  resource = [c :-> total]

``incr`` brackets "read; write(+1)" in acquire/release, publishing
``self + 1`` at release.  Its spec is the subjectively-stable

    { self = (NOT_OWN, a) }  incr  { self = (NOT_OWN, a + 1) }

which composes under ``par``: two parallel increments yield ``a + 2``
without ever mentioning how many threads run — the insensitivity to
forking structure that the subjective dichotomy buys (§2.2.1).

This client is written against the *abstract* lock interface, so the same
verification runs over the CAS-lock and the ticketed lock (Table 2's
``3L`` interchangeability).
"""

from __future__ import annotations

from typing import Callable

from ..core.concurroid import protocol_closure
from ..core.entangle import Priv
from ..core.prog import Prog, bind, par, seq
from ..core.spec import Scenario, Spec
from ..core.state import State, SubjState, state_of
from ..core.verify import ReportBuilder, VerificationReport, check_triple, triple_issues
from ..core.world import World
from ..heap import EMPTY, Heap, pts, ptr
from ..pcm.laws import check_all_laws
from ..pcm.natpcm import NatPCM
from .locks.caslock import CASLock, make_cas_lock
from .locks.interface import AbstractLock
from .locks.ticketed import TicketedLock, make_ticketed_lock

#: The counter cell.
CELL = ptr(1)
#: The lock bit cell.
LOCK_PTR = ptr(2)
#: Label of the lock concurroid.
LOCK_LABEL = "lk"
#: Label of the thread-private concurroid (present for Table 2 fidelity).
PRIV_LABEL = "pv"


def counter_invariant(resource: Heap, total: int) -> bool:
    """``resource = [CELL :-> total]`` — the lock's resource invariant."""
    return resource.dom() == frozenset((CELL,)) and resource[CELL] == total


def make_increment_lock(max_total: int = 6) -> CASLock:
    """The CAS lock protecting the counter, with nat contributions."""
    nat = NatPCM(sample_bound=max_total)
    return make_cas_lock(
        LOCK_LABEL,
        LOCK_PTR,
        nat,
        counter_invariant,
        crit_values=tuple(range(max_total + 2)),
    )


def make_increment_ticketed_lock(max_total: int = 4) -> TicketedLock:
    """A ticketed lock protecting the same counter (same label/resource),
    witnessing the abstract interface's interchangeability (Table 2)."""
    return make_ticketed_lock(
        LOCK_LABEL,
        ptr(3),
        ptr(4),
        NatPCM(sample_bound=max_total),
        counter_invariant,
        max_queue=3,
        max_tickets=4,
        crit_values=tuple(range(max_total + 2)),
    )


def incr(lock: AbstractLock) -> Prog:
    """``lock; x <- read c; write c (x+1); unlock`` publishing ``self+1``."""
    return seq(
        lock.acquire(),
        bind(lock.read(CELL), lambda x: lock.write(CELL, x + 1)),
        lock.release(lambda a: a + 1),
    )


def incr_twice_parallel(lock: AbstractLock) -> Prog:
    """Two parallel increments — the fork/join compositionality witness."""
    return par(incr(lock), incr(lock))


# -- specs -----------------------------------------------------------------------------


def incr_spec(lock: AbstractLock, added: int) -> Spec:
    """``{self = (NOT_OWN, a)} prog {self = (NOT_OWN, a + added)}``."""

    def pre(s: State) -> bool:
        return lock.quiescent(s)

    def post(result: object, s2: State, s1: State) -> bool:
        return (
            lock.quiescent(s2)
            and lock.client_self(s2) == lock.client_self(s1) + added
        )

    return Spec(f"incr(+{added})", pre, post)


# -- model ------------------------------------------------------------------------------


def initial_state(
    lock: CASLock,
    self_aux: int,
    other_aux: int,
    *,
    priv: bool = True,
) -> State:
    """A coherent free-lock state with counter = total contributions."""
    conc = lock.concurroid
    resource = pts(CELL, self_aux + other_aux)
    parts = {LOCK_LABEL: conc.initial(resource, self_aux, other_aux)}
    if priv:
        parts[PRIV_LABEL] = SubjState(EMPTY, EMPTY, EMPTY)
    return state_of(**parts)


def make_world(lock: CASLock) -> World:
    return World((Priv(PRIV_LABEL), lock.concurroid))


def model_states(lock: CASLock, aux_bound: int = 2) -> list[State]:
    """The finite model: protocol closure of small initial states."""
    initials = [
        initial_state(lock, a, b)
        for a in range(aux_bound + 1)
        for b in range(aux_bound + 1)
    ]
    return sorted(
        protocol_closure(lock.concurroid, initials, max_states=20_000),
        key=repr,
    )


# -- the full verification (Table 1 row "CG increment") -----------------------------------


def verify_cg_increment(
    lock_factory: Callable[[], AbstractLock] | None = None,
    *,
    aux_bound: int = 1,
    env_budget: int = 1,
) -> VerificationReport:
    """Discharge every obligation for the CG incrementor.

    ``lock_factory`` lets the same verification run over any abstract-lock
    implementation; the default is the CAS lock.
    """
    lock = lock_factory() if lock_factory else make_increment_lock()
    builder = ReportBuilder("CG increment")

    # Libs: the client PCM is a lawful PCM (the paper's Libs column holds
    # program-specific mathematical facts).
    builder.obligation(
        "nat-pcm-laws", "Libs", lambda: check_all_laws(lock.client_pcm)
    )

    # No Conc/Acts/Stab obligations: this is a *client* of the abstract
    # lock interface.  The lock library's verification (locks/verify.py)
    # already discharged the concurroid metatheory, the action obligations
    # and the stability of the interface-level assertions the client
    # relies on (``quiescent``, "my contribution is a") — this row gets
    # "-" entries, exactly as in the paper's Table 1, because "libraries
    # are verified just once, and their specifications are used
    # ubiquitously in client-side reasoning" (§1).

    # Main: the triples, exhaustively over schedules and interference.
    world = make_world(lock)  # type: ignore[arg-type]
    single_scenarios = [
        Scenario(
            initial_state(lock, a, b),  # type: ignore[arg-type]
            incr(lock),
            label=f"incr self={a} other={b}",
        )
        for a in range(aux_bound + 1)
        for b in range(aux_bound + 1)
    ]
    builder.obligation(
        "incr-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                incr_spec(lock, 1),
                single_scenarios,
                max_steps=30,
                env_budget=env_budget,
            )
        ),
    )

    par_scenarios = [
        Scenario(
            initial_state(lock, 0, b),  # type: ignore[arg-type]
            incr_twice_parallel(lock),
            label=f"par-incr other={b}",
        )
        for b in range(aux_bound + 1)
    ]
    builder.obligation(
        "par-incr-triple",
        "Main",
        lambda: triple_issues(
            check_triple(
                world,
                incr_spec(lock, 2),
                par_scenarios,
                max_steps=40,
                env_budget=env_budget,
            )
        ),
    )

    return builder.build()


__all__ = [
    "CELL",
    "LOCK_PTR",
    "LOCK_LABEL",
    "PRIV_LABEL",
    "counter_invariant",
    "make_increment_lock",
    "make_increment_ticketed_lock",
    "incr",
    "incr_twice_parallel",
    "incr_spec",
    "initial_state",
    "make_world",
    "model_states",
    "verify_cg_increment",
]

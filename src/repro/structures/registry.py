"""The program registry: metadata behind Tables 1–2 and Figure 5.

Each entry records, for one of the paper's eleven case studies:

* the verification entry point (Table 1: obligation counts per category
  and verification time);
* the source modules implementing it (Table 1: LOC);
* which primitive concurroids it employs and whether locks are reached
  through the abstract interface (Table 2's ✓ / ✓L marks);
* which other libraries it builds on (Figure 5's dependency edges).

The evaluation package derives the tables and the figure from this
registry *programmatically*, so the reproduced artifacts can never drift
from the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.verify import VerificationReport

#: The concurroid columns of Table 2, in the paper's order.
CONCURROID_COLUMNS = (
    "Priv",
    "CLock",
    "TLock",
    "ReadPair",
    "Treiber",
    "SpanTree",
    "FlatCombine",
)


@dataclass(frozen=True)
class ProgramInfo:
    """Registry entry for one case-study program."""

    #: Table 1 row name.
    name: str
    #: Primitive concurroids employed (column -> "yes" | "lock-interface").
    concurroids: Mapping[str, str]
    #: Source modules (dotted) whose lines implement this program.
    modules: tuple[str, ...]
    #: The verification entry point.
    verifier: Callable[[], VerificationReport]
    #: Figure 5: the libraries this program directly builds on
    #: (edge ``dep -> this``).
    depends_on: tuple[str, ...] = ()
    #: Figure 5: interfaces this program implements (edge ``this -> iface``).
    implements: tuple[str, ...] = ()
    #: Free-form notes (deviations from the paper recorded here).
    notes: str = ""
    #: Keyword arguments the engine passes to ``verifier`` (and folds into
    #: the obligation-cache fingerprint: verifying the same modules with
    #: different budgets must never share a cache entry).  Empty means
    #: "the verifier's own defaults".
    verifier_kwargs: Mapping[str, object] = field(default_factory=dict)
    #: Demonstration rows (deliberately defective structures for the
    #: fcsl-live positive cases).  Excluded from :func:`all_programs` —
    #: the paper tables, Figure 5, and the default verification sweep
    #: cover exactly the eleven case studies — but resolvable by name
    #: through :func:`program` and swept by ``repro live``.
    demo: bool = False

    def uses(self, column: str) -> str:
        """"" | "yes" | "lock-interface" for a Table 2 column."""
        return self.concurroids.get(column, "")

    def run_verifier(self) -> VerificationReport:
        """Invoke the verification entry point with this row's kwargs."""
        return self.verifier(**dict(self.verifier_kwargs))


def _lock_marks() -> dict[str, str]:
    """Both lock columns via the abstract interface (the paper's ✓L)."""
    return {"CLock": "lock-interface", "TLock": "lock-interface"}


def _build_registry() -> tuple[ProgramInfo, ...]:
    from .allocator import verify_cg_allocator
    from .cg_increment import verify_cg_increment
    from .fc_stack import verify_fc_stack
    from .flat_combiner_verify import verify_flat_combiner
    from .locks.verify import verify_cas_lock, verify_ticketed_lock
    from .pair_snapshot import verify_pair_snapshot
    from .prodcons import verify_prod_cons
    from .seq_stack import verify_seq_stack
    from .spanning_tree_verify import verify_spanning_tree
    from .treiber_verify import verify_treiber_stack

    return (
        ProgramInfo(
            name="CAS-lock",
            concurroids={"Priv": "yes", "CLock": "yes"},
            implements=("Abstract lock",),
            modules=(
                "repro.structures.locks.caslock",
                "repro.structures.locks.interface",
                "repro.structures.locks.verify",
            ),
            verifier=verify_cas_lock,
        ),
        ProgramInfo(
            name="Ticketed lock",
            concurroids={"Priv": "yes", "TLock": "yes"},
            implements=("Abstract lock",),
            modules=("repro.structures.locks.ticketed",),
            verifier=verify_ticketed_lock,
        ),
        ProgramInfo(
            name="CG increment",
            concurroids={"Priv": "yes", **_lock_marks()},
            depends_on=("Abstract lock",),
            modules=("repro.structures.cg_increment",),
            verifier=verify_cg_increment,
        ),
        ProgramInfo(
            name="CG allocator",
            concurroids={"Priv": "yes", **_lock_marks()},
            depends_on=("Abstract lock",),
            modules=("repro.structures.allocator",),
            verifier=verify_cg_allocator,
            notes=(
                "Conc/Acts cover the heap-transfer connectors, which the "
                "paper folds into its lock infrastructure ('-' entries)."
            ),
        ),
        ProgramInfo(
            name="Pair snapshot",
            concurroids={"ReadPair": "yes"},
            depends_on=(),
            modules=("repro.structures.pair_snapshot",),
            verifier=verify_pair_snapshot,
        ),
        ProgramInfo(
            name="Treiber stack",
            concurroids={"Priv": "yes", **_lock_marks(), "Treiber": "yes"},
            depends_on=("CG Allocator",),
            modules=(
                "repro.structures.treiber",
                "repro.structures.treiber_verify",
            ),
            verifier=verify_treiber_stack,
        ),
        ProgramInfo(
            name="Spanning tree",
            concurroids={"Priv": "yes", "SpanTree": "yes"},
            depends_on=(),
            modules=(
                "repro.structures.spanning_tree",
                "repro.structures.spanning_tree_verify",
            ),
            verifier=verify_spanning_tree,
        ),
        ProgramInfo(
            name="Flat combiner",
            concurroids={"Priv": "yes", **_lock_marks(), "FlatCombine": "yes"},
            depends_on=("CG Allocator",),
            modules=(
                "repro.structures.flat_combiner",
                "repro.structures.flat_combiner_verify",
            ),
            verifier=verify_flat_combiner,
            notes=(
                "The combiner lock is integral to the FlatCombine "
                "concurroid (mutex PCM), as in the paper; the allocator "
                "dependency exists in the paper because sequential ops may "
                "allocate — our instances are pure, so the entanglement is "
                "recorded but unexercised."
            ),
        ),
        ProgramInfo(
            name="Seq. stack",
            concurroids={"Priv": "yes", **_lock_marks(), "Treiber": "yes"},
            depends_on=("Treiber stack",),
            modules=("repro.structures.seq_stack",),
            verifier=verify_seq_stack,
        ),
        ProgramInfo(
            name="FC-stack",
            concurroids={"Priv": "yes", **_lock_marks(), "FlatCombine": "yes"},
            depends_on=("Flat combiner",),
            modules=("repro.structures.fc_stack",),
            verifier=verify_fc_stack,
        ),
        ProgramInfo(
            name="Prod/Cons",
            concurroids={"Priv": "yes", **_lock_marks(), "Treiber": "yes"},
            depends_on=("Treiber stack",),
            modules=("repro.structures.prodcons",),
            verifier=verify_prod_cons,
        ),
    )


#: Non-program Figure 5 nodes (interfaces) and their incoming edges.
INTERFACE_DEPENDENCIES: Mapping[str, tuple[str, ...]] = {
    "Abstract lock": (),
    "CG incrementor": ("Abstract lock",),
    "CG Allocator": ("Abstract lock",),
}

#: The dependency edges of Figure 5, exactly as drawn in the paper
#: (``A -> B`` meaning "B builds on A").
FIGURE5_PAPER_EDGES: frozenset[tuple[str, str]] = frozenset(
    {
        ("CAS-lock", "Abstract lock"),
        ("Ticketed lock", "Abstract lock"),
        ("Abstract lock", "CG incrementor"),
        ("Abstract lock", "CG Allocator"),
        ("CG Allocator", "Treiber stack"),
        ("CG Allocator", "Flat combiner"),
        ("Treiber stack", "Sequential stack"),
        ("Treiber stack", "Producer/Consumer"),
        ("Flat combiner", "FC stack"),
    }
)

#: Mapping from registry names to Figure 5 node names.
FIGURE5_NODE_NAMES: Mapping[str, str] = {
    "CAS-lock": "CAS-lock",
    "Ticketed lock": "Ticketed lock",
    "CG increment": "CG incrementor",
    "CG allocator": "CG Allocator",
    "Treiber stack": "Treiber stack",
    "Flat combiner": "Flat combiner",
    "Seq. stack": "Sequential stack",
    "FC-stack": "FC stack",
    "Prod/Cons": "Producer/Consumer",
}

def _build_demos() -> tuple[ProgramInfo, ...]:
    from .locks.demo import verify_two_lock_demo, verify_unfair_lock

    return (
        ProgramInfo(
            name="Two-lock demo",
            concurroids={"Priv": "yes", "CLock": "yes"},
            modules=("repro.structures.locks.demo",),
            verifier=verify_two_lock_demo,
            notes=(
                "fcsl-live demo: two CAS locks acquired in opposite orders "
                "by parallel ladders — the FCSL050 deadlock-cycle positive "
                "case."
            ),
            demo=True,
        ),
        ProgramInfo(
            name="Unfair lock demo",
            concurroids={"Priv": "yes", "CLock": "yes"},
            modules=("repro.structures.locks.demo",),
            verifier=verify_unfair_lock,
            notes=(
                "fcsl-live demo: a spinlock falsely claiming FIFO fairness "
                "— the livelock/starvation witness positive case.  Its "
                "fifo-fairness obligation fails by design."
            ),
            demo=True,
        ),
    )


_REGISTRY: tuple[ProgramInfo, ...] | None = None
_DEMOS: tuple[ProgramInfo, ...] | None = None


def all_programs() -> tuple[ProgramInfo, ...]:
    """The registry, in Table 1 row order (built lazily: importing every
    structure at module load would be heavy).  Exactly the paper's eleven
    case studies — demo rows live in :func:`demo_programs`."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def demo_programs() -> tuple[ProgramInfo, ...]:
    """The demonstration rows (``demo=True``): fcsl-live positive cases."""
    global _DEMOS
    if _DEMOS is None:
        _DEMOS = _build_demos()
    return _DEMOS


def registry_programs() -> tuple[ProgramInfo, ...]:
    """Every registered program: the paper's eleven plus the demo rows."""
    return all_programs() + demo_programs()


def reset_registry() -> None:
    """Drop the memoized registry rows so the next access rebuilds them.

    The serve daemon calls this after hot-reloading an edited case-study
    module: ``_build_registry`` re-imports the verifier entry points at
    call time, so a rebuild picks up the reloaded function objects while
    everything holding the *registry accessors* (engine, analysis) stays
    valid — only the cached rows were stale.
    """
    global _REGISTRY, _DEMOS
    _REGISTRY = None
    _DEMOS = None


def program(name: str) -> ProgramInfo:
    for info in registry_programs():
        if info.name == name:
            return info
    raise KeyError(f"no registered program named {name!r}")


def figure5_edges() -> frozenset[tuple[str, str]]:
    """Our dependency edges, derived from the registry (plus the
    interface-level edges), in Figure 5 node naming."""
    edges: set[tuple[str, str]] = set()
    for node, deps in INTERFACE_DEPENDENCIES.items():
        for dep in deps:
            edges.add((dep, node))
    for info in all_programs():
        node = FIGURE5_NODE_NAMES.get(info.name)
        if node is None:
            continue
        for dep in info.depends_on:
            edges.add((FIGURE5_NODE_NAMES.get(dep, dep), node))
        for iface in info.implements:
            edges.add((node, FIGURE5_NODE_NAMES.get(iface, iface)))
    return frozenset(edges)

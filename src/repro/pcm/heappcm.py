"""Heaps as a PCM — the model of thread-local (``Priv``) state.

The paper's ``Priv`` concurroid keeps each thread's private heap in the
``self`` component; heaps join by disjoint union with the empty heap as
unit, and ``UNDEF`` as the absorbing invalid element (§2.2.1, [33]).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..heap import EMPTY, UNDEF as HEAP_UNDEF, Heap, pts, ptr
from .base import PCM


class HeapPCM(PCM):
    """The PCM of union-map heaps (join = ``\\+``, unit = empty heap)."""

    name = "heaps"

    @property
    def unit(self) -> Heap:
        return EMPTY

    def join(self, a: Any, b: Any) -> Any:
        if not isinstance(a, Heap) or not isinstance(b, Heap):
            return HEAP_UNDEF
        return a.join(b)

    def valid(self, x: Any) -> bool:
        return isinstance(x, Heap) and x.is_valid

    def splits(self, x: Any) -> Sequence[tuple[Heap, Heap]]:
        if not isinstance(x, Heap) or not x.is_valid:
            return ()
        cells = sorted(x.dom(), key=lambda p: p.addr)
        if len(cells) > 6:  # keep the split family tractable on big heaps
            return ((self.unit, x), (x, self.unit))
        out = []
        for mask in range(1 << len(cells)):
            picked = {p for i, p in enumerate(cells) if mask & (1 << i)}
            out.append((x.restrict(picked), x.remove_all(picked)))
        return tuple(out)

    def sample(self) -> Sequence[Heap]:
        p1, p2 = ptr(1), ptr(2)
        return (
            EMPTY,
            pts(p1, 0),
            pts(p1, 1),
            pts(p2, 0),
            pts(p1, 0).join(pts(p2, 1)),
        )

"""Executable PCM law checking.

The Coq development proves the PCM laws once per instance; here the laws
are *checked* — exhaustively over each PCM's :meth:`~repro.pcm.base.PCM.sample`
and randomly via hypothesis in the test suite.  The checker returns a list
of :class:`LawViolation` so failures are reportable (and so the
failure-injection tests can assert that a broken PCM is caught).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from .base import PCM


@dataclass(frozen=True)
class LawViolation:
    """A concrete counterexample to a PCM law."""

    law: str
    pcm: str
    witnesses: tuple

    def __str__(self) -> str:
        return f"{self.pcm}: {self.law} violated at {self.witnesses!r}"


def check_unit_law(pcm: PCM, elems: Iterable[Hashable]) -> list[LawViolation]:
    """``a • unit = a`` and ``unit • a = a``."""
    out = []
    for a in elems:
        if pcm.join(a, pcm.unit) != a or pcm.join(pcm.unit, a) != a:
            out.append(LawViolation("unit", pcm.name, (a,)))
    return out


def check_commutativity(pcm: PCM, elems: Sequence[Hashable]) -> list[LawViolation]:
    """``a • b = b • a``."""
    out = []
    for a in elems:
        for b in elems:
            if pcm.join(a, b) != pcm.join(b, a):
                out.append(LawViolation("commutativity", pcm.name, (a, b)))
    return out


def check_associativity(pcm: PCM, elems: Sequence[Hashable]) -> list[LawViolation]:
    """``a • (b • c) = (a • b) • c``."""
    out = []
    for a in elems:
        for b in elems:
            for c in elems:
                left = pcm.join(a, pcm.join(b, c))
                right = pcm.join(pcm.join(a, b), c)
                if left != right and (pcm.valid(left) or pcm.valid(right)):
                    # Two *invalid* results need not be equal; but a valid
                    # result on one side must be matched on the other.
                    out.append(LawViolation("associativity", pcm.name, (a, b, c)))
    return out


def check_validity_monotone(pcm: PCM, elems: Sequence[Hashable]) -> list[LawViolation]:
    """``valid (a • b) -> valid a /\\ valid b``."""
    out = []
    for a in elems:
        for b in elems:
            if pcm.valid(pcm.join(a, b)) and not (pcm.valid(a) and pcm.valid(b)):
                out.append(LawViolation("validity-monotone", pcm.name, (a, b)))
    return out


def check_unit_valid(pcm: PCM) -> list[LawViolation]:
    """``valid unit``."""
    if not pcm.valid(pcm.unit):
        return [LawViolation("unit-valid", pcm.name, (pcm.unit,))]
    return []


def check_all_laws(pcm: PCM, elems: Sequence[Hashable] | None = None) -> list[LawViolation]:
    """Run every PCM law over ``elems`` (default: the PCM's own sample)."""
    if elems is None:
        elems = tuple(pcm.sample())
    violations: list[LawViolation] = []
    violations.extend(check_unit_valid(pcm))
    violations.extend(check_unit_law(pcm, elems))
    violations.extend(check_commutativity(pcm, elems))
    violations.extend(check_associativity(pcm, elems))
    violations.extend(check_validity_monotone(pcm, elems))
    return violations


def assert_pcm_laws(pcm: PCM, elems: Sequence[Hashable] | None = None) -> None:
    """Raise ``AssertionError`` with all counterexamples if any law fails."""
    violations = check_all_laws(pcm, elems)
    if violations:
        details = "\n".join(str(v) for v in violations)
        raise AssertionError(f"PCM laws violated for {pcm.name}:\n{details}")

"""Disjoint finite sets — the PCM of the spanning-tree example.

``self`` and ``other`` in the ``SpanTree`` concurroid are sets of nodes
(pointers) marked by the observing thread and its environment; their join
is *disjoint* union ``·∪`` with the empty set as unit (§2.2.1).  A
non-disjoint union is undefined — two threads can never both have marked
the same node, which is exactly what the CAS in ``trymark`` enforces.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Iterable, Sequence

from .base import PCM, UNDEF, Undef


class SetPCM(PCM):
    """Finite sets of hashable elements under disjoint union.

    ``universe`` (optional) restricts the carrier and drives :meth:`sample`;
    with no universe, elements are arbitrary frozensets and the sample is
    built over a default three-element universe.
    """

    name = "disjoint-sets"

    def __init__(self, universe: Iterable[Any] | None = None, max_sample_size: int = 2):
        self._universe: tuple | None = tuple(universe) if universe is not None else None
        self._max_sample_size = max_sample_size

    @property
    def unit(self) -> frozenset:
        return frozenset()

    def join(self, a: Any, b: Any) -> Any:
        if isinstance(a, Undef) or isinstance(b, Undef):
            return UNDEF
        if not isinstance(a, frozenset) or not isinstance(b, frozenset):
            return UNDEF
        if a & b:
            return Undef(f"overlapping sets: {sorted(map(repr, a & b))}")
        return a | b

    def valid(self, x: Any) -> bool:
        if not isinstance(x, frozenset):
            return False
        if self._universe is not None and not x <= frozenset(self._universe):
            return False
        return True

    def splits(self, x: Any) -> Sequence[tuple[frozenset, frozenset]]:
        if not isinstance(x, frozenset):
            return ()
        elems = sorted(x, key=repr)
        out = []
        for mask in range(1 << len(elems)):
            a = frozenset(e for i, e in enumerate(elems) if mask & (1 << i))
            out.append((a, x - a))
        return tuple(out)

    def sample(self) -> Sequence[frozenset]:
        universe = self._universe if self._universe is not None else ("a", "b", "c")
        out: list[frozenset] = [frozenset()]
        for size in range(1, min(self._max_sample_size, len(universe)) + 1):
            out.extend(frozenset(c) for c in combinations(universe, size))
        return tuple(out)


def singleton(x: Any) -> frozenset:
    """The singleton set ``#x`` used in transition definitions (§3.3)."""
    return frozenset((x,))

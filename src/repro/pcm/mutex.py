"""The mutual-exclusion PCM — auxiliary state of locks and the flat combiner.

Carrier ``{NOT_OWN, OWN}`` with ``NOT_OWN`` as unit and ``OWN • OWN``
undefined: at most one thread (self or environment) may hold the lock.
This is the "mutual exclusion PCM" of Ley-Wild & Nanevski [33] used by the
CAS-lock and the flat combiner (§6, Table caption).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Sequence

from .base import PCM, Undef


class Mutex(Enum):
    """Lock-ownership tokens."""

    NOT_OWN = "not_own"
    OWN = "own"

    def __repr__(self) -> str:
        return self.name


#: Convenient aliases mirroring the paper's own/not-own vocabulary.
OWN = Mutex.OWN
NOT_OWN = Mutex.NOT_OWN


class MutexPCM(PCM):
    """``({OWN, NOT_OWN}, •, NOT_OWN)`` with ``OWN • OWN`` undefined."""

    name = "mutex"

    @property
    def unit(self) -> Mutex:
        return Mutex.NOT_OWN

    def join(self, a: Any, b: Any) -> Any:
        if not isinstance(a, Mutex) or not isinstance(b, Mutex):
            return Undef("non-mutex operand")
        if a is Mutex.OWN and b is Mutex.OWN:
            return Undef("two owners of one lock")
        if a is Mutex.OWN or b is Mutex.OWN:
            return Mutex.OWN
        return Mutex.NOT_OWN

    def valid(self, x: Any) -> bool:
        return isinstance(x, Mutex)

    def sample(self) -> Sequence[Mutex]:
        return (Mutex.NOT_OWN, Mutex.OWN)

"""PCM combinators: products and lifting.

The paper's case studies use "client-provided PCMs" and "lifted PCMs —
products of basic PCMs" (§6).  ``ProductPCM`` forms the component-wise
product of several PCMs (e.g. mutex × client contribution for the
CAS-lock); ``LiftPCM`` freely adjoins a unit to a partial commutative
*semigroup*, which is how a PCM is built from a carrier whose native
combination has no identity (e.g. exclusive single-value ownership).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Any, Callable, Hashable, Sequence

from .base import PCM, UNDEF, Undef


class ProductPCM(PCM):
    """Component-wise product of PCMs; elements are tuples."""

    def __init__(self, *components: PCM):
        if not components:
            raise ValueError("ProductPCM needs at least one component")
        self._components = components
        self.name = " x ".join(c.name for c in components)

    @property
    def components(self) -> tuple[PCM, ...]:
        return self._components

    @property
    def unit(self) -> tuple:
        return tuple(c.unit for c in self._components)

    def join(self, a: Any, b: Any) -> Any:
        if not self._in_carrier(a) or not self._in_carrier(b):
            return UNDEF
        return tuple(c.join(x, y) for c, x, y in zip(self._components, a, b))

    def valid(self, x: Any) -> bool:
        return self._in_carrier(x) and all(
            c.valid(v) for c, v in zip(self._components, x)
        )

    def _in_carrier(self, x: Any) -> bool:
        return isinstance(x, tuple) and len(x) == len(self._components)

    def sample(self) -> Sequence[tuple]:
        # Cartesian product of component samples, capped to keep models small.
        per_component = [list(c.sample())[:4] for c in self._components]
        return tuple(iter_product(*per_component))

    def splits(self, x: Any) -> Sequence[tuple[tuple, tuple]]:
        if not self._in_carrier(x):
            return ()
        per_component = [
            list(c.splits(v))[:8] for c, v in zip(self._components, x)
        ]
        out = []
        for combo in iter_product(*per_component):
            left = tuple(pair[0] for pair in combo)
            right = tuple(pair[1] for pair in combo)
            out.append((left, right))
        return tuple(out)

    def project(self, x: tuple, index: int) -> Hashable:
        """The ``index``-th component of a product element."""
        return x[index]

    def inject(self, index: int, value: Hashable) -> tuple:
        """The element that is ``value`` at ``index`` and unit elsewhere."""
        return tuple(
            value if i == index else c.unit for i, c in enumerate(self._components)
        )


class _Lifted:
    """Wrapper marking a defined (non-unit) element of a lifted PCM."""

    __slots__ = ("value",)

    def __init__(self, value: Hashable):
        self.value = value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Lifted):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash((_Lifted, self.value))

    def __repr__(self) -> str:
        return f"Up({self.value!r})"


#: The adjoined unit of a lifted PCM.
LIFT_UNIT = ("lift-unit",)


class LiftPCM(PCM):
    """Freely adjoin a unit to a partial commutative semigroup.

    The semigroup is given by its (total-with-Undef) binary operation
    ``op`` and a validity predicate on raw values.  Elements of the lifted
    PCM are ``LIFT_UNIT`` or ``Up(v)`` (built with :meth:`up`).

    The common instance is *exclusive ownership*: ``op`` always undefined,
    so ``Up(v) • Up(w)`` never joins — a single-owner cell.
    """

    def __init__(
        self,
        op: Callable[[Hashable, Hashable], Hashable] | None = None,
        is_valid_raw: Callable[[Hashable], bool] | None = None,
        raw_sample: Sequence[Hashable] = (0, 1),
        name: str = "lift",
    ):
        self._op = op
        self._is_valid_raw = is_valid_raw or (lambda __: True)
        self._raw_sample = tuple(raw_sample)
        self.name = name

    @property
    def unit(self) -> Any:
        return LIFT_UNIT

    def up(self, value: Hashable) -> _Lifted:
        """Inject a raw semigroup value into the lifted carrier."""
        return _Lifted(value)

    def down(self, x: Any) -> Hashable:
        """Project a defined element back to its raw value."""
        if not isinstance(x, _Lifted):
            raise ValueError(f"cannot project {x!r}: not a lifted value")
        return x.value

    def join(self, a: Any, b: Any) -> Any:
        if isinstance(a, Undef) or isinstance(b, Undef):
            return UNDEF
        if a == LIFT_UNIT:
            return b
        if b == LIFT_UNIT:
            return a
        if not isinstance(a, _Lifted) or not isinstance(b, _Lifted):
            return UNDEF
        if self._op is None:
            return Undef("exclusive values cannot be combined")
        combined = self._op(a.value, b.value)
        if isinstance(combined, Undef):
            return combined
        return _Lifted(combined)

    def valid(self, x: Any) -> bool:
        if x == LIFT_UNIT:
            return True
        return isinstance(x, _Lifted) and self._is_valid_raw(x.value)

    def sample(self) -> Sequence[Any]:
        return (LIFT_UNIT,) + tuple(_Lifted(v) for v in self._raw_sample)


def exclusive_pcm(raw_sample: Sequence[Hashable] = (0, 1), name: str = "exclusive") -> LiftPCM:
    """The exclusive-ownership PCM: at most one thread holds the value."""
    return LiftPCM(op=None, raw_sample=raw_sample, name=name)

"""Time-stamped histories — the PCM behind linearizability-style specs.

Sergey et al. (ESOP'15, [47]) specify the pair snapshot, the Treiber stack
and the producer/consumer via a PCM of *time-stamped action histories*: a
history is a finite map from positive integer timestamps to *entries*,
where an entry records an atomic abstract-state change ``(before, after)``
(e.g. stack contents before/after a push).  ``self`` holds the operations
performed by the observing thread, ``other`` those of its environment, and
their join is disjoint union of timestamp domains: no two threads can own
the same linearization moment.

Continuity (entry ``t+1`` begins where entry ``t`` ended) is *not* a PCM
law; it is part of the coherence predicate of history-using concurroids
(see ``structures/treiber.py``), mirroring the paper's layering.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Mapping, Sequence

from .base import PCM, Undef


class HistEntry:
    """An entry ``before ==> after`` at some timestamp."""

    __slots__ = ("before", "after")

    def __init__(self, before: Hashable, after: Hashable):
        self.before = before
        self.after = after

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistEntry):
            return NotImplemented
        return self.before == other.before and self.after == other.after

    def __hash__(self) -> int:
        return hash((HistEntry, self.before, self.after))

    def __repr__(self) -> str:
        return f"({self.before!r} ==> {self.after!r})"


class History:
    """An immutable finite map from positive timestamps to :class:`HistEntry`."""

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Mapping[int, HistEntry] | None = None):
        entries = dict(entries or {})
        for ts, entry in entries.items():
            if not isinstance(ts, int) or isinstance(ts, bool) or ts <= 0:
                raise ValueError(f"timestamps must be positive integers, got {ts!r}")
            if not isinstance(entry, HistEntry):
                raise TypeError(f"history entries must be HistEntry, got {entry!r}")
        self._entries = entries
        self._hash: int | None = None

    def timestamps(self) -> frozenset[int]:
        return frozenset(self._entries)

    def last_timestamp(self) -> int:
        """The largest timestamp (0 for the empty history)."""
        return max(self._entries, default=0)

    def __contains__(self, ts: int) -> bool:
        return ts in self._entries

    def __getitem__(self, ts: int) -> HistEntry:
        return self._entries[ts]

    def get(self, ts: int, default: Any = None) -> Any:
        return self._entries.get(ts, default)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._entries))

    def items(self) -> Iterator[tuple[int, HistEntry]]:
        return iter(sorted(self._entries.items()))

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def extend(self, ts: int, entry: HistEntry) -> "History":
        """The history with one more entry; raises on timestamp reuse."""
        if ts in self._entries:
            raise ValueError(f"timestamp {ts} already present in history")
        merged = dict(self._entries)
        merged[ts] = entry
        return History(merged)

    def continuous_from(self, initial: Hashable) -> bool:
        """Whether entries chain: ``initial``, then each ``after`` feeds the
        next ``before``, over consecutive timestamps ``1..n``.

        This is the coherence-level *continuity* property of combined
        (``self • other``) histories.
        """
        expected_state = initial
        ts_sorted = sorted(self._entries)
        if ts_sorted != list(range(1, len(ts_sorted) + 1)):
            return False
        for ts in ts_sorted:
            entry = self._entries[ts]
            if entry.before != expected_state:
                return False
            expected_state = entry.after
        return True

    def final_state(self, initial: Hashable) -> Hashable:
        """The abstract state after replaying the (continuous) history."""
        state = initial
        for __, entry in self.items():
            state = entry.after
        return state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._entries:
            return "History(empty)"
        body = ", ".join(f"{ts}: {e!r}" for ts, e in self.items())
        return f"History({body})"


#: The empty history (PCM unit).
EMPTY_HISTORY = History()


def hist(*changes: tuple[int, Hashable, Hashable]) -> History:
    """Build a history from ``(ts, before, after)`` triples."""
    return History({ts: HistEntry(b, a) for ts, b, a in changes})


class HistoryPCM(PCM):
    """Histories under disjoint (timestamp-wise) union."""

    name = "histories"

    @property
    def unit(self) -> History:
        return EMPTY_HISTORY

    def join(self, a: Any, b: Any) -> Any:
        if not isinstance(a, History) or not isinstance(b, History):
            return Undef("non-history operand")
        overlap = a.timestamps() & b.timestamps()
        if overlap:
            return Undef(f"timestamp collision: {sorted(overlap)}")
        merged = {ts: a[ts] for ts in a.timestamps()}
        merged.update({ts: b[ts] for ts in b.timestamps()})
        return History(merged)

    def valid(self, x: Any) -> bool:
        return isinstance(x, History)

    def splits(self, x: Any) -> Sequence[tuple[History, History]]:
        if not isinstance(x, History):
            return ()
        timestamps = sorted(x.timestamps())
        out = []
        for mask in range(1 << len(timestamps)):
            picked = {ts for i, ts in enumerate(timestamps) if mask & (1 << i)}
            a = History({ts: x[ts] for ts in picked})
            b = History({ts: x[ts] for ts in timestamps if ts not in picked})
            out.append((a, b))
        return tuple(out)

    def sample(self) -> Sequence[History]:
        return (
            EMPTY_HISTORY,
            hist((1, "s0", "s1")),
            hist((2, "s1", "s2")),
            hist((1, "s0", "s1"), (2, "s1", "s2")),
        )

"""Partial commutative monoids: the algebra of thread contributions.

This package provides the PCM catalogue enumerated in §6 of the paper:
disjoint sets, heaps, naturals with addition, the mutual-exclusion PCM,
time-stamped histories, and the product/lift combinators for
client-provided PCMs.
"""

from .base import PCM, UNDEF, Undef, UnitPCM
from .heappcm import HeapPCM
from .histories import EMPTY_HISTORY, HistEntry, History, HistoryPCM, hist
from .laws import LawViolation, assert_pcm_laws, check_all_laws
from .mutex import NOT_OWN, OWN, Mutex, MutexPCM
from .natpcm import NatPCM
from .product import LIFT_UNIT, LiftPCM, ProductPCM, exclusive_pcm
from .setpcm import SetPCM, singleton

__all__ = [
    "PCM",
    "UNDEF",
    "Undef",
    "UnitPCM",
    "HeapPCM",
    "EMPTY_HISTORY",
    "HistEntry",
    "History",
    "HistoryPCM",
    "hist",
    "LawViolation",
    "assert_pcm_laws",
    "check_all_laws",
    "NOT_OWN",
    "OWN",
    "Mutex",
    "MutexPCM",
    "NatPCM",
    "LIFT_UNIT",
    "LiftPCM",
    "ProductPCM",
    "exclusive_pcm",
    "SetPCM",
    "singleton",
]

"""Natural numbers with addition — the PCM of the CG-increment example.

Ley-Wild & Nanevski (POPL'13) use ``(nat, +, 0)`` as the subjective
auxiliary state for the coarse-grained incrementor: each thread's ``self``
records how much *it* added to the shared counter, and the lock invariant
ties the counter's contents to ``self • other``.
"""

from __future__ import annotations

from typing import Any, Sequence

from .base import PCM, UNDEF, Undef


class NatPCM(PCM):
    """``(nat, +, 0)`` — a total commutative monoid (no invalid sums)."""

    name = "nat(+)"

    def __init__(self, sample_bound: int = 5):
        if sample_bound < 1:
            raise ValueError("sample_bound must be at least 1")
        self._sample_bound = sample_bound

    @property
    def unit(self) -> int:
        return 0

    def join(self, a: Any, b: Any) -> Any:
        if isinstance(a, Undef) or isinstance(b, Undef):
            return UNDEF
        if not self._is_nat(a) or not self._is_nat(b):
            return UNDEF
        return a + b

    def valid(self, x: Any) -> bool:
        return self._is_nat(x)

    @staticmethod
    def _is_nat(x: Any) -> bool:
        return isinstance(x, int) and not isinstance(x, bool) and x >= 0

    def sample(self) -> Sequence[int]:
        return tuple(range(self._sample_bound))

    def splits(self, x: Any) -> Sequence[tuple[int, int]]:
        if not self._is_nat(x):
            return ()
        return tuple((i, x - i) for i in range(x + 1))

"""Partial commutative monoids (PCMs).

PCMs are one of the two unifying abstractions of FCSL (§1, §2.2.1): a set
``U`` with an associative, commutative join ``•`` and a unit element, where
*partiality* captures that not every combination of thread contributions is
meaningful (e.g. two threads cannot both own a lock).

Following the union-map treatment in the Coq development, we make joins
*total* over a carrier that contains invalid elements: ``join`` never raises,
but may return an element for which ``valid`` is false.  Invalid elements
absorb joins.  This gives the familiar algebra::

    valid (a • b)  ->  valid a /\\ valid b        (validity monotonicity)
    a • unit = a                                   (unit)
    a • b = b • a                                  (commutativity)
    a • (b • c) = (a • b) • c                      (associativity)

Every PCM also knows how to enumerate a finite sample of its elements
(:meth:`PCM.sample`); the verifier and the hypothesis-based law tests use
the sample as the model over which universally-quantified obligations are
discharged (see DESIGN.md §1 on the substitution of dependent types by
finite-model checking).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Undef:
    """The distinguished invalid element shared by PCMs without a native one.

    Carries a ``reason`` for diagnostics; equality ignores it, so all
    undefined elements of a PCM are identified (as in the Coq model).
    """

    reason: str = "undefined"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Undef)

    def __hash__(self) -> int:
        return hash("pcm.Undef")

    def __repr__(self) -> str:
        return f"Undef({self.reason})"


#: Canonical undefined element.
UNDEF = Undef()


class PCM(ABC):
    """Abstract partial commutative monoid.

    Elements are immutable, hashable Python values.  Subclasses implement
    :meth:`unit`, :meth:`join` and :meth:`valid`; :meth:`join` must be total
    and return an invalid element instead of raising on undefined
    combinations.
    """

    #: Human-readable name used in diagnostics and reports.
    name: str = "pcm"

    @property
    @abstractmethod
    def unit(self) -> Hashable:
        """The unit element (always valid)."""

    @abstractmethod
    def join(self, a: Hashable, b: Hashable) -> Hashable:
        """The (total) join ``a • b``."""

    @abstractmethod
    def valid(self, x: Hashable) -> bool:
        """Whether ``x`` is a defined element of the monoid."""

    # -- derived operations ---------------------------------------------------

    def join_all(self, elems: Iterable[Hashable]) -> Hashable:
        """Iterated join; the empty iterable yields the unit."""
        acc = self.unit
        for e in elems:
            acc = self.join(acc, e)
        return acc

    def is_unit(self, x: Hashable) -> bool:
        return x == self.unit

    def defined_join(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a • b`` is valid (the paper's ``valid (a \\+ b)``)."""
        return self.valid(self.join(a, b))

    # -- finite model support --------------------------------------------------

    def sample(self) -> Sequence[Hashable]:
        """A finite, representative sample of elements, starting with unit.

        Used by law checkers and by the stability/metatheory model checkers.
        Subclasses should override to return a richer sample; the default is
        just the unit.
        """
        return (self.unit,)

    def splits(self, x: Hashable) -> Sequence[tuple[Hashable, Hashable]]:
        """Pairs ``(a, b)`` with ``a • b = x`` — the ways ``x`` can be
        divided between two threads at a fork.

        Used by the fork-join closure check and by the subjectivity
        ablation.  The default returns only the trivial splits; instances
        with richer structure override this.
        """
        return ((self.unit, x), (x, self.unit))

    def sample_pairs(self) -> Iterator[tuple[Hashable, Hashable]]:
        """All pairs drawn from :meth:`sample` (for binary-law checking)."""
        elems = self.sample()
        for a in elems:
            for b in elems:
                yield a, b

    def __repr__(self) -> str:
        return f"<PCM {self.name}>"


class SubPCMError(ValueError):
    """Raised when a value outside the intended carrier reaches a PCM."""


def require(cond: bool, message: str) -> None:
    """Internal consistency guard used by PCM implementations."""
    if not cond:
        raise SubPCMError(message)


class UnitPCM(PCM):
    """The trivial one-element PCM; unit is ``()``.

    Used as the ``other`` placeholder in closed-world (``hide``) reasoning:
    fixing ``other`` to the unit of this PCM signals absence of interference
    (§3.5).
    """

    name = "unit"

    @property
    def unit(self) -> tuple:
        return ()

    def join(self, a: Any, b: Any) -> Any:
        if a != () or b != ():
            return UNDEF
        return ()

    def valid(self, x: Any) -> bool:
        return x == ()

    def sample(self) -> Sequence[Any]:
        return ((),)

"""fcsl-live: liveness diagnostics — lock order, deadlock, fairness.

The static half lives in :mod:`repro.analysis.lockorder`: acquire/release
classification, the lock-order graph, cycle detection, and the FCSL050-054
rules.  This module adds the *dynamic* half and the entry points:

* **bounded livelock detection** — :func:`find_live_cycles` runs the
  explorer with ``liveness=True``; a schedule that revisits a position
  while threads step and the environment interferes (a lasso) is a
  livelock/starvation candidate, reported in
  ``ExplorationResult.cycles`` without touching the safety verdict;

* **fairness claims** — :data:`FAIRNESS_CLAIMS` records which programs
  *claim* a FIFO fairness property (the paper's ticketed lock does; the
  deliberately unfair demo lock claims it falsely).  A claim is checked
  by bounded livelock detection on the claimant's bump client: a lasso
  in which the claimant keeps retrying while the environment cycles
  through the lock refutes bounded bypass (FCSL055 + FCSL056); an
  exhausted search with no lasso confirms the claim within bounds
  (FCSL059).  Refutations are recorded as replayable
  :class:`repro.obs.witness.Witness` objects, so ``repro explain``
  replays and ddmin-minimizes them exactly like safety counterexamples;

* **the sweep** — :func:`live_registry` (the ``python -m repro live``
  CLI) runs lock-order + fairness over every registered program,
  including the ``demo=True`` rows that exist to keep the positive
  cases in-tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from .diagnostics import Diagnostic, diag
from .lockorder import LockOrderGraph, lockorder_target
from .targets import LintTarget, target_for

#: Default bounds for fairness exploration.  The env budget leaves the
#: ticketed model's ticket queue unexhausted (drawing more tickets than
#: ``max_queue`` makes the claimant's own draw unsafe — a model-bound
#: artifact, not unfairness).
FAIRNESS_ENV_BUDGET = 2
FAIRNESS_MAX_STEPS = 30


@dataclass(frozen=True)
class FairnessClaim:
    """A program's declared FIFO fairness property, operationalised."""

    program: str
    #: Lazily builds ``(world, init, prog)`` — the claimant scenario.
    build: Callable[[], tuple[Any, Any, Any]]
    env_budget: int = FAIRNESS_ENV_BUDGET
    max_steps: int = FAIRNESS_MAX_STEPS


def _ticketed_scenario() -> tuple[Any, Any, Any]:
    from ..structures.locks.verify import (
        bump_client,
        lock_initial_state,
        lock_world,
        make_counter_ticketed_lock,
    )

    lock = make_counter_ticketed_lock()
    return lock_world(lock), lock_initial_state(lock, 0, 0), bump_client(lock)


def _unfair_scenario() -> tuple[Any, Any, Any]:
    from ..structures.locks.demo import make_unfair_lock
    from ..structures.locks.verify import (
        bump_client,
        lock_initial_state,
        lock_world,
    )

    lock = make_unfair_lock()
    return lock_world(lock), lock_initial_state(lock, 0, 0), bump_client(lock)


#: program name -> its FIFO fairness claim.  Programs absent here make no
#: fairness claim and are never flagged for lacking one (the CAS spinlock
#: is *correctly* unfair).  The unfair demo's larger env budget admits
#: the lock-take / work / restore environment cycle a lasso needs.
FAIRNESS_CLAIMS: dict[str, FairnessClaim] = {
    "Ticketed lock": FairnessClaim("Ticketed lock", _ticketed_scenario),
    "Unfair lock demo": FairnessClaim(
        "Unfair lock demo", _unfair_scenario, env_budget=3
    ),
}


def find_live_cycles(
    world: Any,
    init: Any,
    prog: Any,
    *,
    env_budget: int,
    max_steps: int = FAIRNESS_MAX_STEPS,
    max_configs: int = 200_000,
):
    """Exhaustively explore with the livelock detector on.

    Returns the full :class:`~repro.semantics.explore.ExplorationResult`;
    lassos are in ``.cycles``, and the safety-relevant fields are
    byte-identical to a ``liveness=False`` run.
    """
    from ..semantics.explore import explore
    from ..semantics.interp import initial_config

    config = initial_config(world, init, prog, record_trace=True)
    return explore(
        config,
        max_steps=max_steps,
        env_budget=env_budget,
        max_configs=max_configs,
        liveness=True,
    )


def _lasso_witnesses(
    cycles: Iterable[Any],
    *,
    scenario_label: str,
    world: Any,
    init: Any,
    prog: Any,
    max_steps: int,
) -> list[Any]:
    """Replay-confirmed witnesses for livelock lassos (capped)."""
    from ..core.verify import WITNESS_CAP
    from ..obs import witness as obs_witness

    out = []
    for violation in list(cycles)[:WITNESS_CAP]:
        w = obs_witness.from_violation(
            violation,
            scenario_label=scenario_label,
            world=world,
            init=init,
            prog=prog,
        )
        w.meta.setdefault("max_steps", max_steps)
        out.append(w)
    return out


def check_fairness(name: str) -> tuple[list[Diagnostic], list[Any]]:
    """Check one program's FIFO fairness claim by bounded exploration.

    Returns ``(diagnostics, witnesses)``.  A refuted claim yields
    FCSL055 (the lasso itself) and FCSL056 (the broken claim) plus
    replayable witnesses; an exhausted lasso-free search yields the
    FCSL059 confirmation.  Witnesses are also handed to the active
    :func:`repro.obs.witness.capturing` scope, if any.
    """
    from ..obs.witness import record

    claim = FAIRNESS_CLAIMS[name]
    world, init, prog = claim.build()
    result = find_live_cycles(
        world,
        init,
        prog,
        env_budget=claim.env_budget,
        max_steps=claim.max_steps,
    )
    bounds = f"env_budget={claim.env_budget}, max_steps={claim.max_steps}"
    if not result.cycles:
        return (
            [
                diag(
                    "FCSL059",
                    f"FIFO fairness claim confirmed within bounds ({bounds}): "
                    f"no schedule revisits a configuration without the "
                    f"claimant progressing ({result.explored} configurations)",
                    subject=name,
                    obj="fifo-fairness",
                )
            ],
            [],
        )
    witnesses = _lasso_witnesses(
        result.cycles,
        scenario_label=f"{name}: fifo-fairness",
        world=world,
        init=init,
        prog=prog,
        max_steps=claim.max_steps,
    )
    for w in witnesses:
        record(w)
    first = result.cycles[0]
    diags = [
        diag(
            "FCSL055",
            f"livelock lasso found ({bounds}): {first.message}",
            subject=name,
            obj="fifo-fairness",
        ),
        diag(
            "FCSL056",
            f"claimed FIFO fairness refuted: {len(result.cycles)} "
            f"schedule(s) cycle while the claimant's acquire is bypassed; "
            f"replay with `repro explain {name!r}`",
            subject=name,
            obj="fifo-fairness",
        ),
    ]
    return diags, witnesses


def fairness_issues(
    scenario_label: str,
    world: Any,
    init: Any,
    prog: Any,
    *,
    env_budget: int,
    max_steps: int = FAIRNESS_MAX_STEPS,
) -> list[str]:
    """Fairness as a verifier obligation: issue strings for every lasso.

    Used by verifiers whose structure claims FIFO fairness (the unfair
    demo lock): each lasso becomes an obligation issue, its witness is
    recorded to the active capture scope (``repro explain``) *and*
    attached to the innermost obligation (``repro verify`` reports and
    witness dumps) — the exact plumbing safety counterexamples use.
    """
    from ..core.verify import record_witness
    from ..obs.witness import record

    result = find_live_cycles(
        world, init, prog, env_budget=env_budget, max_steps=max_steps
    )
    if not result.cycles:
        return []
    witnesses = _lasso_witnesses(
        result.cycles,
        scenario_label=scenario_label,
        world=world,
        init=init,
        prog=prog,
        max_steps=max_steps,
    )
    issues = []
    for w, violation in zip(witnesses, result.cycles):
        record(w)
        record_witness(w.to_dict())
        issues.append(str(violation))
    return issues


# -- entry points -------------------------------------------------------------------------


def live_target(target: LintTarget) -> tuple[LockOrderGraph, list[Diagnostic]]:
    """Every liveness rule over one lint target.

    Static lock-order analysis (FCSL050-054, FCSL057) always runs; the
    dynamic fairness check (FCSL055/056/059) runs iff the program
    declares a claim in :data:`FAIRNESS_CLAIMS`.
    """
    graph, diags = lockorder_target(target)
    if target.program in FAIRNESS_CLAIMS:
        fairness_diags, __ = check_fairness(target.program)
        diags = list(diags) + fairness_diags
    return graph, list(diags)


def live_registry(names: Iterable[str] | None = None) -> list[Diagnostic]:
    """Liveness sweep over the selected (default: all) registered programs.

    Unlike the lint/race sweeps this includes the ``demo=True`` rows —
    they exist precisely so the FCSL05x positive cases live in-tree, so a
    full sweep exits 1 *by design* (the two-lock demo's FCSL050)."""
    from ..structures.registry import registry_programs

    infos = registry_programs()
    known = {info.name for info in infos}
    wanted = tuple(names) if names is not None else None
    if wanted is not None:
        unknown = sorted(set(wanted) - known)
        if unknown:
            raise KeyError(
                f"unknown registry program(s) {unknown}; known: {sorted(known)}"
            )
    out: list[Diagnostic] = []
    for info in infos:
        if wanted is not None and info.name not in wanted:
            continue
        __, diags = live_target(target_for(info.name))
        out.extend(diags)
    return out

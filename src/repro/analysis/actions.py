"""Action rules (FCSL010-014): static checks on atomic actions.

The central rule is **footprint escape** (FCSL010): an action's ``step``
must only mutate heap cells inside its declared ``footprint``.  The
dynamic checker (:func:`repro.core.action.check_action`) compares heap
*deltas*, which misses writes that happen to restore the old value; here
every state fed to ``step`` is instrumented with the recording heap shim
(:mod:`repro.analysis.heapshim`), so any touch — even a no-op rewrite —
of an out-of-footprint cell is caught.

The remaining rules mirror the action metatheory of §3.3 without
exploring schedules: domain growth must be declared (``allocates``,
FCSL011), every effect must match idle or a declared transition
(FCSL012), actions should be executable somewhere in the model (FCSL013)
and carry a real name (FCSL014).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.action import Action
from ..core.concurroid import Concurroid
from ..core.state import State
from .diagnostics import Diagnostic, diag, loc_of
from .heapshim import effective_log, instrument_state

#: Cap on (state, args) executions per action — lint must stay fast.
MAX_RUNS = 400


def lint_action(
    action: Action,
    states: Iterable[State],
    args_family: Sequence[tuple] = ((),),
    *,
    subject: str = "",
    max_runs: int = MAX_RUNS,
) -> list[Diagnostic]:
    """Run every action rule on one action over one state family."""
    states = list(states)
    out: list[Diagnostic] = []
    conc: Concurroid = action.concurroid
    loc = loc_of(type(action).step) or loc_of(action)

    # FCSL014 — the default name makes every report unreadable.
    if action.name == Action.name:
        out.append(
            diag(
                "FCSL014",
                f"action {type(action).__name__} kept the default name "
                f"{Action.name!r}",
                subject=subject,
                obj=type(action).__name__,
                loc=loc,
            )
        )

    ever_safe = False
    runs = 0
    escape_reported = False
    alloc_reported = False
    corr_reported = False
    for state in states:
        if runs >= max_runs:
            break
        for args in args_family:
            if runs >= max_runs:
                break
            if not _safe(action, state, args):
                continue
            ever_safe = True
            runs += 1
            rec_state, reads = instrument_state(state)
            try:
                __, post = action.step(rec_state, *args)
            except Exception:  # noqa: BLE001 - totality is the dynamic checker's job
                continue
            # Only mutations whose results were installed in the post state
            # count — discarded pure views (e.g. resource projections) don't.
            log = effective_log(post, reads=reads)

            # FCSL010 — touched cells outside the declared footprint.
            # Ownership *transfers* (a cell freed from one component and
            # grafted into another with its value intact) leave the real
            # heap untouched — they erase to no machine operation and are
            # exempt, exactly like the dynamic erasure check treats them.
            if not escape_reported:
                try:
                    footprint = frozenset(action.footprint(state, *args))
                except Exception:  # noqa: BLE001
                    footprint = frozenset()
                escaped_set = log.touched - footprint
                if escaped_set:
                    escaped_set -= _transfers(conc, state, post, log)
                escaped = sorted(escaped_set, key=lambda p: p.addr)
                if escaped:
                    cells = ", ".join(repr(p) for p in escaped)
                    out.append(
                        diag(
                            "FCSL010",
                            f"action {action.name!r} touches {cells} outside "
                            f"its declared footprint {sorted(footprint, key=lambda p: p.addr)!r}",
                            subject=subject,
                            obj=action.name,
                            loc=loc,
                        )
                    )
                    escape_reported = True

            # FCSL011 — real-heap domain change without allocates=True.
            if not alloc_reported and not action.allocates:
                try:
                    before = conc.real_heap(state).dom()
                    after = conc.real_heap(post).dom()
                except Exception:  # noqa: BLE001
                    before = after = frozenset()
                if before != after:
                    out.append(
                        diag(
                            "FCSL011",
                            f"action {action.name!r} changes the real heap domain "
                            f"({sorted(before ^ after, key=lambda p: p.addr)!r}) "
                            "but declares allocates=False",
                            subject=subject,
                            obj=action.name,
                            loc=loc,
                        )
                    )
                    alloc_reported = True

            # FCSL012 — the step is neither idle nor any declared transition.
            if not corr_reported and not _corresponds(conc, state, post):
                out.append(
                    diag(
                        "FCSL012",
                        f"action {action.name!r} steps to a state matching neither "
                        "idle nor any declared transition",
                        subject=subject,
                        obj=action.name,
                        loc=loc,
                    )
                )
                corr_reported = True

    # FCSL013 — never executable anywhere in the model.
    if states and not ever_safe:
        out.append(
            diag(
                "FCSL013",
                f"action {action.name!r} is safe in none of the "
                f"{len(states)} modelled state(s)",
                subject=subject,
                obj=action.name,
                loc=loc,
            )
        )

    return out


_MISSING = object()


def _transfers(conc: Concurroid, state: State, post: State, log) -> frozenset:
    """Cells that moved between components without a real-heap change."""
    candidates = log.frees & log.allocs
    if not candidates:
        return frozenset()
    try:
        before = conc.real_heap(state)
        after = conc.real_heap(post)
    except Exception:  # noqa: BLE001 - can't prove a transfer: no exemption
        return frozenset()
    return frozenset(
        p
        for p in candidates
        if before.get(p, _MISSING) == after.get(p, _MISSING)
    )


def _safe(action: Action, state: State, args: tuple) -> bool:
    try:
        return bool(action.safe(state, *args))
    except Exception:  # noqa: BLE001 - a crashing guard is "not safe"
        return False


def _corresponds(conc: Concurroid, state: State, post: State) -> bool:
    """Idle, or one declared transition step, reaches ``post``."""
    if post == state:
        return True
    for t in conc.transitions():
        try:
            for __, succ in t.successors(state):
                if succ == post:
                    return True
        except Exception:  # noqa: BLE001
            continue
    return False

"""fcsl-deps: per-obligation static dependency analysis.

The obligation cache invalidates on whole-module source text: editing one
action re-runs every obligation of its case study.  This module computes,
for each obligation a verifier *would* run, the precise set of case-study
**definitions** it can reach — the dependency cone — so the engine can key
cache entries per obligation and re-verify only the cone of an edit
(``repro verify --incremental``, :mod:`repro.engine.depgraph`).

The analysis has three layers:

* :class:`DefIndex` — an AST index of one module's *file text*: every
  top-level function, every method (``Class.method``), a per-class body
  residue (decorators, class-level constants) and a module-level residue
  (``<toplevel>``: imports, constants, everything outside a def), each
  with a content digest.  Reading the file — not ``inspect`` — means an
  on-disk edit is visible without re-importing, exactly like
  :func:`repro.engine.fingerprint.module_source`.

* The **reachability walk** — obligations are collected without being
  executed (:class:`repro.core.verify.collecting_obligations`) and each
  closure is walked: bytecode (``co_names`` over the nested code-object
  tree), captured cells, default arguments, bound ``self`` objects,
  resolved module globals, class hierarchies and instance attribute
  graphs.  Framework code (``repro`` minus the case studies) is
  *traversed* — its attribute reads matter — but never recorded: the
  framework digest already keys every cache entry.  Instance attributes
  are expanded only for names the walked code can mention (a
  flow-insensitive attribute filter, iterated to fixpoint), which is
  what keeps a stability obligation over ``lock.quiescent`` from
  depending on ``lock.write_action``.

* **Dependency-hygiene diagnostics** — FCSL060-066, reported through the
  shared :mod:`repro.analysis.diagnostics` machinery (``repro deps``,
  ``--select``): mutable-global reads the fingerprints cannot see,
  closures escaping the repro package, dynamic dispatch forcing a
  conservative whole-module edge, protocol/client module cycles,
  monolithic cones, colliding obligation names, and exhausted walks.

Soundness contract (gated by tests/test_incremental.py): the cone is a
conservative over-approximation — it may contain definitions the
obligation never executes (a wasted re-verification), but a definition
whose edit can change the verdict must be in the cone.  Any analysis
trouble therefore degrades to a *coarser* edge (whole module, whole
program), never to a missing one.
"""

from __future__ import annotations

import ast
import dis
import hashlib
import importlib.util
import sys
import types
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Iterable, Sequence

from .diagnostics import Diagnostic, diag

#: Definitions are tracked per-definition only for the case studies; the
#: rest of ``repro`` is covered wholesale by the framework digest.
TRACKED_PREFIX = "repro.structures."

#: Pseudo-definition name for a module's outside-any-def residue.
TOPLEVEL = "<toplevel>"

#: Pseudo-definition name for a conservative whole-module edge.
WHOLE_MODULE = "<module>"

#: Builtin names whose presence in *case-study* bytecode defeats static
#: attribute resolution (framework uses of them are deliberate and
#: reviewed; a case study reaching for them gets a whole-module edge).
_DYNAMIC_BUILTINS = frozenset(
    {"getattr", "setattr", "delattr", "eval", "exec", "__import__", "vars"}
)

#: Walk budget: object expansions per obligation before the analysis
#: declares itself incomplete (FCSL066) and falls back to the
#: whole-program fingerprint.
WALK_BUDGET = 120_000


def _is_stdlib(module: str) -> bool:
    top = module.partition(".")[0]
    return top in sys.stdlib_module_names or top == "builtins"


def _resolve_import(spec: str, importer: str) -> list[types.ModuleType]:
    """Already-imported modules an ``IMPORT_NAME spec`` inside ``importer``
    can denote.  The bytecode does not retain the relative-import level,
    so every ancestry-prefixed candidate found in ``sys.modules`` is
    returned — over-approximating only ever adds edges."""
    parts = importer.split(".")
    candidates = [spec] if spec else []
    for i in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:i])
        candidates.append(f"{prefix}.{spec}" if spec else prefix)
    out: list[types.ModuleType] = []
    for cand in dict.fromkeys(candidates):
        mod = sys.modules.get(cand)
        if mod is not None:
            out.append(mod)
    return out


def _is_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


def _is_tracked(module: str | None) -> bool:
    return bool(module) and module.startswith(TRACKED_PREFIX)


@dataclass(frozen=True)
class Definition:
    """One fingerprintable unit of a tracked module."""

    module: str
    #: Index key (``func``, ``Class`` residue, ``Class.method``),
    #: :data:`TOPLEVEL`, or :data:`WHOLE_MODULE`.
    name: str

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"


class DefIndex:
    """Definition-granularity digest index over one module's file text."""

    def __init__(self, module: str, text: str):
        self.module = module
        self.digests: dict[str, str] = {}
        self._build(text)

    @staticmethod
    def source_of(module: str) -> str:
        spec = importlib.util.find_spec(module)
        if spec is None or spec.origin is None or not Path(spec.origin).is_file():
            raise ModuleNotFoundError(f"cannot locate source for {module!r}")
        return Path(spec.origin).read_text(encoding="utf-8")

    @classmethod
    def for_module(cls, module: str) -> "DefIndex":
        return cls(module, cls.source_of(module))

    @staticmethod
    def _span(node: ast.AST) -> tuple[int, int]:
        """1-based inclusive line span, decorators included."""
        start = node.lineno
        for dec in getattr(node, "decorator_list", []):
            start = min(start, dec.lineno)
        return start, node.end_lineno or node.lineno

    def _digest_lines(self, lines: Sequence[str], spans: Iterable[tuple[int, int]]) -> str:
        digest = hashlib.sha256()
        for start, end in spans:
            for line in lines[start - 1 : end]:
                digest.update(line.encode("utf-8"))
        return digest.hexdigest()

    def _residue_digest(
        self, lines: Sequence[str], total: tuple[int, int], holes: list[tuple[int, int]]
    ) -> str:
        """Digest of a span minus its hole spans (class/module residue)."""
        covered = [False] * (len(lines) + 2)
        for start, end in holes:
            for i in range(start, end + 1):
                if i < len(covered):
                    covered[i] = True
        digest = hashlib.sha256()
        for i in range(total[0], min(total[1], len(lines)) + 1):
            if not covered[i]:
                digest.update(lines[i - 1].encode("utf-8"))
        return digest.hexdigest()

    def _build(self, text: str) -> None:
        lines = text.splitlines(keepends=True)
        tree = ast.parse(text)
        top_spans: list[tuple[int, int]] = []
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                span = self._span(node)
                top_spans.append(span)
                self.digests[node.name] = self._digest_lines(lines, [span])
            elif isinstance(node, ast.ClassDef):
                span = self._span(node)
                top_spans.append(span)
                method_spans: list[tuple[int, int]] = []
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mspan = self._span(child)
                        method_spans.append(mspan)
                        self.digests[f"{node.name}.{child.name}"] = self._digest_lines(
                            lines, [mspan]
                        )
                # Class residue: bases, decorators, class-level constants.
                self.digests[node.name] = self._residue_digest(
                    lines, span, method_spans
                )
        self.digests[TOPLEVEL] = self._residue_digest(
            lines, (1, len(lines)), top_spans
        )
        self.digests[WHOLE_MODULE] = hashlib.sha256(
            text.encode("utf-8")
        ).hexdigest()

    def resolve(self, qualname: str) -> str | None:
        """Index key for a runtime ``__qualname__`` (``None`` = unindexable:
        the definition does not live in this file's text)."""
        head = qualname.split(".<locals>.")[0].split(".<locals>")[0]
        if head in self.digests:
            return head
        parts = head.split(".")
        for width in (2, 1):
            candidate = ".".join(parts[:width])
            if candidate in self.digests:
                return candidate
        if head.startswith("<"):  # module-level <lambda>/<listcomp>: residue
            return TOPLEVEL
        return None


# -- code-object summaries (shared across obligations and programs) ------------


@dataclass
class _CodeSummary:
    """Static facts of one code object's nested tree."""

    names: frozenset[str]
    #: The subset of ``names`` the code can *read* (LOAD_ATTR/LOAD_GLOBAL/
    #: …).  A pure store (``self._draw = …``) cannot observe the stored
    #: attribute, so stores do not unlock attribute expansion — without
    #: this, an eager constructor that builds sibling objects
    #: (``self._a = A(self); self._b = B(self)``) would pull every
    #: sibling into every cone that reaches the constructor.
    load_names: frozenset[str]
    #: IMPORT_NAME operands: function-*local* imports bind to locals, so
    #: the imported objects never appear in ``__globals__`` — the walk
    #: must resolve them itself (``from ..semantics.explore import
    #: explore`` inside ``check_triple`` is how the whole interpreter is
    #: reached).
    imports: tuple[str, ...]
    #: ``(global_name, attr)`` pairs from ``self.<attr> = Global(...)``
    #: statements in the code object itself (not nested defs): the
    #: eager-construction pattern.  For a constructor, the attr is the
    #: name under which the constructed object becomes reachable — the
    #: *guard*: the object's class can stay constructor-only until some
    #: reachable code loads that attr.
    ctor_stores: tuple[tuple[str, str], ...]
    codes: tuple[types.CodeType, ...]  # nested code objects (lambdas, comprehensions)
    dynamic: bool  # mentions a dynamic-dispatch builtin


_CODE_SUMMARIES: dict[tuple[types.CodeType, bool], _CodeSummary] = {}

#: Instruction opnames that read a name (vs store/delete it), across the
#: supported CPython versions (LOAD_METHOD pre-3.12 and its LOAD_ATTR
#: successor, the 3.12+ super/dict-or-globals forms).
_LOAD_OPS = frozenset(
    {
        "LOAD_ATTR",
        "LOAD_METHOD",
        "LOAD_GLOBAL",
        "LOAD_NAME",
        "LOAD_DEREF",
        "LOAD_CLASSDEREF",
        "LOAD_SUPER_ATTR",
        "LOAD_FROM_DICT_OR_GLOBALS",
        "LOAD_FROM_DICT_OR_DEREF",
        "IMPORT_NAME",
        "IMPORT_FROM",
    }
)


def _summarize_code(
    code: types.CodeType, *, skip_lambdas: bool = False
) -> _CodeSummary:
    """Summarize a code object's nested tree.

    ``skip_lambdas`` is the setup-cone variant: a nested lambda never
    executes at its definition site, so its loads say nothing about what
    runs *during setup* — including them floods the setup name filter
    with every obligation body's attribute reads.  Lambdas reached as
    captured data are summarized (fully) by the per-obligation walks.
    """
    key = (code, skip_lambdas)
    cached = _CODE_SUMMARIES.get(key)
    if cached is not None:
        return cached
    names: set[str] = set()
    loads: set[str] = set()
    imports: set[str] = set()
    stores: list[tuple[str, str]] = []
    nested: list[types.CodeType] = []
    stack = [code]
    while stack:
        c = stack.pop()
        names.update(c.co_names)
        names.update(c.co_freevars)
        pending: str | None = None  # last LOAD_GLOBAL with no store since
        for inst in dis.get_instructions(c):
            if inst.opname in _LOAD_OPS and isinstance(inst.argval, str):
                loads.add(inst.argval)
            if inst.opname == "IMPORT_NAME" and isinstance(inst.argval, str):
                imports.add(inst.argval)
            if c is code:
                if inst.opname == "LOAD_GLOBAL":
                    pending = inst.argval
                elif inst.opname == "STORE_ATTR":
                    if pending is not None:
                        stores.append((pending, inst.argval))
                    pending = None
                elif inst.opname.startswith("STORE_"):
                    pending = None
        for const in c.co_consts:
            if isinstance(const, types.CodeType):
                if skip_lambdas and const.co_name == "<lambda>":
                    continue
                nested.append(const)
                stack.append(const)
    summary = _CodeSummary(
        names=frozenset(names),
        load_names=frozenset(loads),
        imports=tuple(sorted(imports)),
        ctor_stores=tuple(stores),
        codes=tuple(nested),
        dynamic=bool(names & _DYNAMIC_BUILTINS),
    )
    _CODE_SUMMARIES[key] = summary
    return summary


# -- inert-object cache --------------------------------------------------------

_PRIMITIVES = (type(None), bool, int, float, complex, str, bytes, bytearray, range)

#: Walk verdicts decidable from the type alone.  Every branch of
#: :meth:`_InertCache._walk` dispatches on facts of ``type(obj)`` —
#: computing them once per class (classes are few and long-lived, so
#: this process-level cache cannot grow the way per-instance memos can)
#: turns the per-node cost of walking thousands of fresh ``State``
#: objects per sweep into one dict hit.
_K_INERT, _K_CODE, _K_SEQ, _K_DICT, _K_TRACKED, _K_INSTANCE = range(6)

_CODE_TYPES = (
    types.FunctionType,
    types.MethodType,
    types.CodeType,
    types.ModuleType,
    type,
    property,
    staticmethod,
    classmethod,
    partial,
)

_CLASS_FACTS: dict[type, tuple[int, tuple[str, ...]]] = {}


def _class_facts(cls: type) -> tuple[int, tuple[str, ...]]:
    """``(kind, slot_names)`` for instances of ``cls``.

    ``kind`` mirrors the branch :meth:`_InertCache._walk` would take;
    ``slot_names`` is the flattened ``__slots__`` chain (instance kinds
    read it instead of rescanning the MRO per object).  ``callable()``
    is a type-level property in CPython (``tp_call``), so the code check
    looks for ``__call__`` in the MRO's own dicts — ``hasattr`` would
    find ``type.__call__`` on every class via the metaclass.
    """
    facts = _CLASS_FACTS.get(cls)
    if facts is not None:
        return facts
    if issubclass(cls, _PRIMITIVES) or getattr(cls, "__deps_opaque__", False):
        # ``__deps_opaque__``: the class declares its instances carry
        # only derived analysis facts (e.g. ``StaticPrepass`` memos) —
        # walking them would make cones depend on sibling-program
        # execution history, not on the obligation's sources.
        kind = _K_INERT
    elif issubclass(cls, _CODE_TYPES) or any(
        "__call__" in k.__dict__ for k in cls.__mro__
    ):
        kind = _K_CODE
    elif issubclass(cls, (tuple, list, set, frozenset)):
        kind = _K_SEQ
    elif issubclass(cls, dict):
        kind = _K_DICT
    elif any(_is_tracked(getattr(k, "__module__", None)) for k in cls.__mro__):
        kind = _K_TRACKED
    else:
        kind = _K_INSTANCE
    slots = tuple(
        slot
        for klass in cls.__mro__
        for slot in (getattr(klass, "__slots__", ()) or ())
    )
    facts = (kind, slots)
    _CLASS_FACTS[cls] = facts
    return facts


class _InertCache:
    """Objects provably unable to reach code or tracked definitions.

    Verifier closures capture large value graphs (protocol closures of
    thousands of ``State`` objects); none of them can name a definition,
    and proving that once — shared across every walker of one program's
    analysis — is what keeps the walk proportional to the *code* graph,
    not the *state* graph.  Entries pin the object: an ``id`` is only a
    valid key while its object is alive, which is why
    :func:`analyze_obligations` scopes one cache per analysis instead of
    letting a long-lived sweep process pin every dead state graph it
    ever walked.
    """

    def __init__(self) -> None:
        self._known: dict[int, tuple[Any, bool]] = {}

    def reaches_code(self, obj: Any) -> bool:
        known = self._known.get(id(obj))
        if known is not None:
            return known[1]
        on_path: dict[int, Any] = {}
        result = self._walk(obj, on_path)
        return result

    def proven_inert(self, obj: Any) -> bool:
        """Memo-only check (never walks): True iff ``obj`` has already
        been proven unable to reach code.  Walkers consult it at enqueue
        time, so one walker's proof spares every later walker the queue
        churn of the same value graph."""
        known = self._known.get(id(obj))
        return known is not None and known[0] is obj and not known[1]

    def _walk(self, obj: Any, on_path: dict[int, Any]) -> bool:
        kind, slots = _class_facts(type(obj))
        if kind == _K_INERT:
            return False
        oid = id(obj)
        known = self._known.get(oid)
        if known is not None:
            return known[1]
        if kind == _K_CODE or kind == _K_TRACKED:
            self._known[oid] = (obj, True)
            return True
        if oid in on_path:  # cycle: decided by the rest of the graph
            return False
        on_path[oid] = obj
        try:
            if kind == _K_SEQ:
                reaches = any(self._walk(x, on_path) for x in obj)
            elif kind == _K_DICT:
                reaches = any(
                    self._walk(k, on_path) or self._walk(v, on_path)
                    for k, v in obj.items()
                )
            else:
                reaches = False
                d = getattr(obj, "__dict__", None)
                if isinstance(d, dict):
                    reaches = any(self._walk(v, on_path) for v in d.values())
                if not reaches:
                    for slot in slots:
                        try:
                            value = getattr(obj, slot)
                        except AttributeError:
                            continue
                        if self._walk(value, on_path):
                            reaches = True
                            break
        finally:
            on_path.pop(oid, None)
        self._known[oid] = (obj, reaches)
        return reaches


_INERT = _InertCache()


def _instance_values(obj: Any) -> Iterable[Any]:
    """Instance attribute values: ``__dict__`` plus ``__slots__``."""
    d = getattr(obj, "__dict__", None)
    if isinstance(d, dict):
        yield from d.values()
    for slot in _class_facts(type(obj))[1]:
        try:
            yield getattr(obj, slot)
        except AttributeError:
            continue


def _instance_items(obj: Any) -> Iterable[tuple[str, Any]]:
    d = getattr(obj, "__dict__", None)
    if isinstance(d, dict):
        yield from d.items()
    for slot in _class_facts(type(obj))[1]:
        try:
            yield slot, getattr(obj, slot)
        except AttributeError:
            continue


# -- the dependency cone -------------------------------------------------------


@dataclass
class DependencyCone:
    """Everything one obligation's verdict can depend on."""

    obligation: str
    category: str
    definitions: set[Definition] = field(default_factory=set)
    #: ``module.qualname`` of reached non-repro, non-stdlib definitions.
    externals: set[str] = field(default_factory=set)
    #: ``module:name`` of mutable module globals the cone reads.
    mutable_globals: set[str] = field(default_factory=set)
    #: human notes for dynamic-dispatch fallbacks (FCSL062).
    dynamic: set[str] = field(default_factory=set)
    #: directed module edges discovered while walking (FCSL063 input).
    module_edges: set[tuple[str, str]] = field(default_factory=set)
    #: True when the walk gave up (budget/collection trouble): the
    #: obligation must key on the whole-program fingerprint.
    coarse: bool = False


class _ConeWalker:
    """One obligation's reachability walk (shares the process caches).

    ``setup=True`` selects the *setup-cone* variant used for the
    verifier entry point itself: only code that can **execute during
    setup** matters there (factories, constructors, class residues,
    toplevel residues), so framework functions are not traversed — the
    framework digest covers them, they never statically reference a case
    study, and traversing them would union every attribute name the
    checker mentions (``step``, ``requires``, …) into the filter,
    flooding the setup cone with every method of every reached class.
    Method *bodies* reached only through captured objects are the
    per-obligation walks' job.
    """

    def __init__(
        self,
        cone: DependencyCone,
        indexes: dict[str, DefIndex | None],
        *,
        setup: bool = False,
        attr_cache: dict[int, tuple[Any, tuple[tuple[str, Any], ...]]] | None = None,
        inert: _InertCache | None = None,
    ):
        self.cone = cone
        self.indexes = indexes
        self.setup = setup
        self._inert = inert if inert is not None else _INERT
        self.names: set[str] = set()
        # Append-ordered log of ``names``: expanded objects remember how
        # far into the log they have seen (an epoch), so name growth
        # replays only the suffix instead of copying the whole set per
        # visited instance.
        self._name_log: list[str] = []
        # Instance attr items, computed once per object per analysis and
        # shared across the program's walkers (the entry pins the object,
        # keeping its ``id`` valid for the cache's lifetime).
        self._attrs = attr_cache if attr_cache is not None else {}
        self._seen: dict[int, Any] = {}
        # Classes already visited, by expansion mode (pins the class).
        # ``True`` = full names-filtered method expansion (the class's
        # instances are reachable data, or its constructor is called
        # from ordinary code — the fresh instance can flow anywhere).
        # ``False`` = referrer-filtered (the class is referenced from
        # *inside another constructor*: eager-construction stores the
        # instance on ``self``, where the load-name instance filter
        # governs it — only what the constructing code itself loads,
        # plus ``__init__``/``__new__``, joins the cone).  Reaching a
        # restricted class through data later upgrades it to full.
        self._class_mode: dict[int, tuple[type, bool]] = {}
        #: Accumulated referrer load-names per restricted class.
        self._class_ref_loads: dict[int, set[str]] = {}
        #: Guarded restricted classes: ``(cls, src, guard_attrs)`` — the
        #: attrs its constructing ctor stored it under.  When any guard
        #: attr enters ``names`` (some reachable code loads it), the
        #: stored instance is exposed and the class upgrades to full.
        self._class_guards: list[tuple[type, str | None, set[str]]] = []
        # Instances/classes already expanded, with the name-log epoch
        # they were expanded under: when the name set grows, they are
        # revisited for exactly the names logged since.
        self._expanded: dict[int, tuple[Any, int]] = {}
        self._budget = WALK_BUDGET
        self._queue: list[
            tuple[Any, str | None, bool, frozenset[str] | None]
        ] = []

    # -- index plumbing -------------------------------------------------------

    def _index(self, module: str) -> DefIndex | None:
        if module not in self.indexes:
            try:
                self.indexes[module] = DefIndex.for_module(module)
            except Exception:  # noqa: BLE001 - unindexable: conservative edges
                self.indexes[module] = None
        return self.indexes[module]

    def _record(self, module: str, name: str, src: str | None) -> None:
        self.cone.definitions.add(Definition(module, name))
        if src is not None and src != module:
            self.cone.module_edges.add((src, module))

    def _record_qualname(self, module: str, qualname: str, src: str | None) -> None:
        index = self._index(module)
        key = index.resolve(qualname) if index is not None else None
        if key is None:
            self.cone.dynamic.add(f"{module}:{qualname} (unindexable definition)")
            self._record(module, WHOLE_MODULE, src)
        else:
            self._record(module, key, src)

    # -- the walk -------------------------------------------------------------

    def _add_names(self, names: Iterable[str]) -> None:
        for name in names:
            if name not in self.names:
                self.names.add(name)
                self._name_log.append(name)

    def _attr_items(self, obj: Any) -> tuple[tuple[str, Any], ...]:
        cached = self._attrs.get(id(obj))
        if cached is not None and cached[0] is obj:
            return cached[1]
        items = tuple(_instance_items(obj))
        self._attrs[id(obj)] = (obj, items)
        return items

    def run(self, *roots: Any) -> DependencyCone:
        for root in roots:
            self._enqueue(root, None)
        while True:
            grew = self._drain()
            if not grew and not self._queue:
                break
        return self.cone

    def _drain(self) -> bool:
        """Process the queue; returns True when the name set grew (which
        re-arms the attribute fixpoint over expanded objects)."""
        before = len(self.names)
        while self.queue_pop():
            pass
        if len(self.names) == before:
            return False
        # New attribute names can unlock attrs on already-walked objects.
        log = self._name_log
        for oid, (obj, upto) in list(self._expanded.items()):
            if upto >= len(log):
                continue
            fresh = set(log[upto:])
            self._expanded[oid] = (obj, len(log))
            self._expand_attrs(obj, fresh)
        # ... and expose guarded ctor-stored objects (upgrade to full).
        for entry in list(self._class_guards):
            cls, src, guards = entry
            if guards & self.names:
                self._class_guards.remove(entry)
                self._enqueue(cls, src)
        return True

    def queue_pop(self) -> bool:
        if not self._queue or self.cone.coarse:
            self._queue.clear()
            return False
        obj, src, full, ref_loads = self._queue.pop()
        self._visit(obj, src, full, ref_loads)
        return True

    def _enqueue(
        self,
        obj: Any,
        src: str | None,
        *,
        full: bool = True,
        ref_loads: frozenset[str] | None = None,
    ) -> None:
        """Queue ``obj``; ``full``/``ref_loads`` only matter for classes
        (see ``_class_mode``) — only constructor-sourced class references
        pass ``full=False``, everything else takes the conservative
        default."""
        if obj is None or isinstance(obj, _PRIMITIVES):
            return
        if self._inert.proven_inert(obj):
            return  # the same early-out _visit_instance would take
        if isinstance(obj, type):
            mode = self._class_mode.get(id(obj))
            if mode is not None and mode[1]:
                return  # already fully expanded: covers everything
            if full:
                self._class_mode[id(obj)] = (obj, True)
                self._queue.append((obj, src, True, None))
                return
            loads = set(ref_loads or ())
            prev = self._class_ref_loads.get(id(obj))
            if prev is None:
                self._class_mode[id(obj)] = (obj, False)
                self._class_ref_loads[id(obj)] = set(loads)
                self._queue.append((obj, src, False, frozenset(loads)))
            else:
                fresh = loads - prev
                if fresh:  # a new referrer named new attrs: re-expand those
                    prev.update(fresh)
                    self._queue.append((obj, src, False, frozenset(fresh)))
            return
        if id(obj) in self._seen:
            return
        self._seen[id(obj)] = obj
        self._queue.append((obj, src, True, None))

    def _spend(self) -> bool:
        self._budget -= 1
        if self._budget <= 0 and not self.cone.coarse:
            self.cone.coarse = True
        return not self.cone.coarse

    def _visit(
        self,
        obj: Any,
        src: str | None,
        full: bool = True,
        ref_loads: frozenset[str] | None = None,
    ) -> None:
        if not self._spend():
            return
        if isinstance(obj, types.MethodType):
            self._enqueue(obj.__self__, src)
            obj = obj.__func__
        if isinstance(obj, (staticmethod, classmethod)):
            obj = obj.__func__
        if isinstance(obj, property):
            for accessor in (obj.fget, obj.fset, obj.fdel):
                self._enqueue(accessor, src)
            return
        if isinstance(obj, partial):
            self._enqueue(obj.func, src)
            for arg in obj.args:
                self._enqueue(arg, src)
            for value in obj.keywords.values():
                self._enqueue(value, src)
            return
        if isinstance(obj, types.FunctionType):
            self._visit_function(obj, src)
            return
        if isinstance(obj, types.BuiltinFunctionType):
            return
        if isinstance(obj, types.ModuleType):
            self._visit_module(obj, src)
            return
        if isinstance(obj, type):
            self._visit_class(obj, src, full, ref_loads)
            return
        if isinstance(obj, (tuple, list, set, frozenset)):
            # Inert-check the container itself: one walk proves a whole
            # state family inert and memoizes it, so every later walker
            # skips it at enqueue instead of re-enqueuing each member.
            if not self._inert.reaches_code(obj):
                return
            for item in obj:
                self._enqueue(item, src)
            return
        if isinstance(obj, dict):
            if not self._inert.reaches_code(obj):
                return
            for key, value in obj.items():
                self._enqueue(key, src)
                self._enqueue(value, src)
            return
        self._visit_instance(obj, src)

    def _visit_function(self, fn: types.FunctionType, src: str | None) -> None:
        module = fn.__module__ or ""
        if self.setup and _is_repro(module) and not _is_tracked(module):
            return  # setup cone: framework code neither runs case-study
            # definitions nor references them statically.
        summary = _summarize_code(fn.__code__, skip_lambdas=self.setup)
        self._add_names(summary.load_names)
        if _is_tracked(module):
            self._record_qualname(module, fn.__qualname__, src)
            if summary.dynamic:
                self.cone.dynamic.add(
                    f"{module}:{fn.__qualname__} (dynamic-dispatch builtin)"
                )
                self._record(module, WHOLE_MODULE, src)
        elif not _is_repro(module) and not _is_stdlib(module):
            self.cone.externals.add(f"{module}.{fn.__qualname__}")
        # Class references out of a *constructor* get referrer-filtered
        # expansion (``_class_mode``): an eager ``__init__`` that builds
        # sibling objects (``self._a = A(self); self._b = B(self)``)
        # stores them on ``self``, where the instance-attribute filter
        # governs them — full expansion here would pull every sibling's
        # methods into every cone that reaches the constructor.  The
        # same applies to the implicit ``__class__`` cell of zero-arg
        # ``super()`` in *any* function (a by-name reference, and
        # ``super().m()`` puts ``m`` in the referrer's load names).
        is_ctor = fn.__name__ in ("__init__", "__new__")
        for name, cell in zip(fn.__code__.co_freevars, fn.__closure__ or ()):
            try:
                value = cell.cell_contents
            except ValueError:  # empty cell
                continue
            is_ref = name == "__class__" and isinstance(value, type)
            self._enqueue(
                value,
                module or src,
                full=not is_ref,
                ref_loads=summary.load_names if is_ref else None,
            )
        for default in fn.__defaults__ or ():
            self._enqueue(default, module or src)
        for default in (fn.__kwdefaults__ or {}).values():
            self._enqueue(default, module or src)
        # Resolved globals: load names over-approximate (attribute reads
        # shadow same-named globals), which only ever adds edges — never
        # loses one.  A class a *constructor* loads and stores onto an
        # attribute (``self._a = A(self)``) is expanded referrer-only,
        # guarded on the stored attr name: loads of the attr anywhere in
        # the cone expose the instance and upgrade the class to full.
        ctor_pairs: dict[str, set[str]] = {}
        if is_ctor:
            for gname, attr in summary.ctor_stores:
                ctor_pairs.setdefault(gname, set()).add(attr)
        fn_globals = fn.__globals__
        for name in summary.load_names:
            if name not in fn_globals:
                continue
            value = fn_globals[name]
            if (
                isinstance(value, type)
                and name in ctor_pairs
                and not (ctor_pairs[name] & self.names)
            ):
                self._enqueue(
                    value, module, full=False, ref_loads=summary.load_names
                )
                self._class_guards.append((value, module, ctor_pairs[name]))
            else:
                self._visit_global(module, name, value)
        # Function-local imports bind to locals, not globals: resolve
        # the imported modules (relative forms against the importer's
        # package ancestry) and walk the members the code can load.
        for spec in summary.imports:
            for mod in _resolve_import(spec, module):
                self._visit_import(mod, module, summary.load_names)

    def _visit_import(
        self, mod: types.ModuleType, src: str, loads: frozenset[str]
    ) -> None:
        """Walk the members of a locally-imported module that the
        importing code can load — member-directed, so a tracked-module
        import costs definition edges, not a whole-module edge."""
        name = mod.__name__
        if _is_stdlib(name):
            return
        if not _is_repro(name):
            self.cone.externals.add(name)
        mod_vars = vars(mod)
        for attr in loads:
            if attr in mod_vars:
                self._visit_global(name, attr, mod_vars[attr])

    def _visit_global(self, module: str, name: str, value: Any) -> None:
        if isinstance(value, type):
            self._enqueue(value, module)
            return
        if isinstance(
            value,
            (
                types.FunctionType,
                types.BuiltinFunctionType,
                types.ModuleType,
            ),
        ):
            self._enqueue(value, module)
            return
        # Module-level data: its assignment lives in the module's
        # top-level residue, so the cone must include it.
        if _is_tracked(module):
            self._record(module, TOPLEVEL, None)
        if isinstance(value, (list, dict, set, bytearray)):
            self.cone.mutable_globals.add(f"{module}:{name}")
        self._enqueue(value, module)

    def _visit_module(self, mod: types.ModuleType, src: str | None) -> None:
        name = mod.__name__
        if _is_tracked(name):
            # A whole imported case-study module: conservative module edge.
            self._record(name, WHOLE_MODULE, src)
        elif not _is_repro(name) and not _is_stdlib(name):
            self.cone.externals.add(name)

    def _visit_class(
        self,
        cls: type,
        src: str | None,
        full: bool = True,
        ref_loads: frozenset[str] | None = None,
    ) -> None:
        for klass in cls.__mro__:
            module = getattr(klass, "__module__", "") or ""
            if klass is object:
                continue
            if _is_tracked(module):
                self._record_qualname(module, klass.__qualname__, src)
            elif not _is_repro(module) and not _is_stdlib(module):
                self.cone.externals.add(f"{module}.{klass.__qualname__}")
            if full:
                self._expand_class(klass, self.names | {"__init__", "__new__"})
                # Replaying a name the ctor names already covered is
                # harmless: ``_enqueue`` dedups by object identity.
                self._expanded.setdefault(
                    id(klass), (klass, len(self._name_log))
                )
            else:
                # Referrer-filtered: the cone covers instantiating the
                # class plus whatever the referring constructor itself
                # loads; methods invoked anywhere else only matter once
                # an instance is reachable (which upgrades to full).
                self._expand_class(
                    klass, set(ref_loads or ()) | {"__init__", "__new__"}
                )

    def _expand_class(self, klass: type, names: set[str]) -> None:
        for attr, value in vars(klass).items():
            if attr in names:
                self._enqueue(value, getattr(klass, "__module__", None))

    def _visit_instance(self, obj: Any, src: str | None) -> None:
        if not self._inert.reaches_code(obj):
            return
        self._enqueue(type(obj), src)
        self._expanded[id(obj)] = (obj, len(self._name_log))
        self._expand_attrs(obj, self.names)

    def _expand_attrs(self, obj: Any, names: set[str]) -> None:
        if isinstance(obj, type):
            self._expand_class(obj, names)
            return
        src = getattr(type(obj), "__module__", None)
        for attr, value in self._attr_items(obj):
            if attr in names:
                self._enqueue(value, src)


# -- per-program analysis ------------------------------------------------------


@dataclass
class ObligationDeps:
    """One planned obligation plus its walked cone."""

    name: str
    category: str
    cone: DependencyCone


@dataclass
class DependencyAnalysis:
    """The full fcsl-deps result for one program."""

    program: str
    obligations: list[ObligationDeps]
    #: Shared definition digests: ``module -> index`` (``None`` when the
    #: module's source could not be indexed).
    indexes: dict[str, DefIndex | None]
    #: Obligation names colliding within the program (FCSL065): the
    #: engine must fall back to whole-program verification.
    duplicates: tuple[str, ...] = ()
    #: True when obligation collection itself failed (FCSL066).
    collection_failed: bool = False

    @property
    def usable(self) -> bool:
        """Whether per-obligation keys are meaningful for this program."""
        return not self.collection_failed and not self.duplicates

    def definition_digest(self, defn: Definition) -> str | None:
        index = self.indexes.get(defn.module)
        if index is None:
            return None
        return index.digests.get(defn.name)

    def cone_of(self, obligation: str) -> DependencyCone | None:
        for dep in self.obligations:
            if dep.name == obligation:
                return dep.cone
        return None

    def definitions_tracked(self) -> set[Definition]:
        out: set[Definition] = set()
        for dep in self.obligations:
            out.update(dep.cone.definitions)
        return out

    def affected_by(self, module: str, name: str) -> set[str]:
        """Obligation names whose cone contains the given definition
        (module edges and coarse cones count as containing everything in
        their module / the program)."""
        hit: set[str] = set()
        for dep in self.obligations:
            if dep.cone.coarse:
                hit.add(dep.name)
                continue
            for defn in dep.cone.definitions:
                if defn.module != module:
                    continue
                if defn.name == name or defn.name == WHOLE_MODULE:
                    hit.add(dep.name)
                    break
        return hit

    def module_cycles(self) -> list[tuple[str, ...]]:
        """Cycles in the union module-edge graph (Tarjan SCCs > 1)."""
        edges: dict[str, set[str]] = {}
        for dep in self.obligations:
            for a, b in dep.cone.module_edges:
                edges.setdefault(a, set()).add(b)
                edges.setdefault(b, set())
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        cycles: list[tuple[str, ...]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(edges.get(v, ())):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    cycles.append(tuple(sorted(scc)))

        for v in sorted(edges):
            if v not in index:
                strongconnect(v)
        return cycles

    def diagnostics(self) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        if self.collection_failed:
            out.append(
                diag(
                    "FCSL066",
                    "obligation collection failed; every obligation keys on "
                    "the whole-program fingerprint",
                    subject=self.program,
                )
            )
            return out
        for name in self.duplicates:
            out.append(
                diag(
                    "FCSL065",
                    f"obligation name {name!r} is used more than once; "
                    "per-obligation fingerprints collide",
                    subject=self.program,
                    obj=name,
                )
            )
        seen_globals: set[str] = set()
        seen_externals: set[str] = set()
        seen_dynamic: set[str] = set()
        total = self.definitions_tracked()
        for dep in self.obligations:
            cone = dep.cone
            if cone.coarse:
                out.append(
                    diag(
                        "FCSL066",
                        "dependency walk exhausted its budget; this "
                        "obligation keys on the whole-program fingerprint",
                        subject=self.program,
                        obj=dep.name,
                    )
                )
            for key in sorted(cone.mutable_globals - seen_globals):
                seen_globals.add(key)
                out.append(
                    diag(
                        "FCSL060",
                        f"obligation {dep.name!r} reads mutable module "
                        f"global {key}; edits to its contents are invisible "
                        "to content fingerprints",
                        subject=self.program,
                        obj=key,
                    )
                )
            for key in sorted(cone.externals - seen_externals):
                seen_externals.add(key)
                out.append(
                    diag(
                        "FCSL061",
                        f"obligation {dep.name!r} reaches {key}, outside "
                        "the repro package; its source is not fingerprinted",
                        subject=self.program,
                        obj=key,
                    )
                )
            for note in sorted(cone.dynamic - seen_dynamic):
                seen_dynamic.add(note)
                out.append(
                    diag(
                        "FCSL062",
                        f"conservative whole-module edge: {note}",
                        subject=self.program,
                        obj=note,
                    )
                )
            if (
                total
                and len(self.obligations) > 1
                and not cone.coarse
                and cone.definitions >= total
            ):
                out.append(
                    diag(
                        "FCSL064",
                        f"obligation {dep.name!r} depends on every tracked "
                        f"definition ({len(total)}); incremental "
                        "re-verification cannot skip it",
                        subject=self.program,
                        obj=dep.name,
                    )
                )
        for cycle in self.module_cycles():
            out.append(
                diag(
                    "FCSL063",
                    "module dependency cycle: " + " <-> ".join(cycle),
                    subject=self.program,
                    obj=cycle[0],
                )
            )
        return out


def analyze_obligations(info, plan=None) -> DependencyAnalysis:
    """Collect ``info``'s obligation plan (without executing it) and walk
    every obligation's dependency cone.

    ``info`` is a :class:`~repro.structures.registry.ProgramInfo`.  A
    caller that already holds the program's :class:`ObligationPlan` list
    (the engine's collect-while-verifying work units) passes it as
    ``plan`` and skips the collection run entirely.  Any failure is
    *contained*: collection trouble yields an analysis marked unusable,
    walk trouble yields a coarse cone — callers fall back to
    whole-program fingerprints, never crash a sweep.
    """
    from ..core.verify import collecting_obligations

    indexes: dict[str, DefIndex | None] = {}
    for module in info.modules:
        try:
            indexes[module] = DefIndex.for_module(module)
        except Exception:  # noqa: BLE001
            indexes[module] = None
    if plan is None:
        try:
            with collecting_obligations() as collector:
                info.run_verifier()
            plan = list(collector)
        except Exception:  # noqa: BLE001 - collection must not crash callers
            return DependencyAnalysis(
                info.name, [], indexes, collection_failed=True
            )
    else:
        plan = list(plan)

    names = [item.name for item in plan]
    duplicates = tuple(sorted({n for n in names if names.count(n) > 1}))

    # The setup cone: everything the verifier entry point (and the
    # factories it statically calls) can *execute while building* the
    # obligations.  The captured objects an obligation closes over were
    # built by this code, so an edit to it can change any verdict — it
    # is unioned into every obligation.  The walk runs in setup mode
    # (see :class:`_ConeWalker`): framework code is not traversed, so
    # the cone stays at factories/constructors/residues instead of
    # flooding to every method of every reached class.
    attrs: dict[int, tuple[Any, tuple[tuple[str, Any], ...]]] = {}
    inert = _InertCache()
    setup = DependencyCone(obligation="<setup>", category="")
    _ConeWalker(setup, indexes, setup=True, attr_cache=attrs, inert=inert).run(
        info.verifier, dict(info.verifier_kwargs)
    )

    obligations: list[ObligationDeps] = []
    for item in plan:
        cone = DependencyCone(obligation=item.name, category=item.category)
        _ConeWalker(cone, indexes, attr_cache=attrs, inert=inert).run(item.fn)
        cone.definitions.update(setup.definitions)
        cone.externals.update(setup.externals)
        cone.mutable_globals.update(setup.mutable_globals)
        cone.dynamic.update(setup.dynamic)
        cone.module_edges.update(setup.module_edges)
        cone.coarse = cone.coarse or setup.coarse
        obligations.append(ObligationDeps(item.name, item.category, cone))
    return DependencyAnalysis(info.name, obligations, indexes, duplicates)


def deps_registry(names: Iterable[str] | None = None) -> list[Diagnostic]:
    """Dependency-hygiene diagnostics for the registry (``repro deps``)."""
    from ..structures.registry import all_programs, registry_programs

    if names is None:
        programs = all_programs()
    else:
        known = {info.name: info for info in registry_programs()}
        unknown = sorted(set(names) - set(known))
        if unknown:
            raise KeyError(
                f"unknown registry program(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        programs = tuple(known[n] for n in names)
    out: list[Diagnostic] = []
    for info in programs:
        out.extend(analyze_obligations(info).diagnostics())
    return out

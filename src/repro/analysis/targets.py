"""Lint targets: the 11 registry case studies, packaged for the linter.

Each :class:`LintTarget` bundles what the rules need for one Table 1
program: the concurroids it *introduces* (clients of existing libraries
introduce none — the "-" rows), a modelled state family, the atomic
actions with representative argument families (the same tables the
dynamic verifiers use), the ascribed specs, stability assertions, the
client programs with their ambient label scope, and the PCM instances.

State families come from :func:`bounded_closure` — a non-raising variant
of :func:`repro.core.concurroid.protocol_closure` that reports truncation
instead of failing, so large models (the flat combiner's closure runs to
six figures) are *sampled* and the reachability-dependent rules are
automatically suppressed for them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Sequence

from ..core.autostab import AutoAssertion
from ..core.concurroid import Concurroid
from ..core.prog import Prog
from ..core.spec import Spec
from ..core.state import State
from ..pcm.base import PCM

#: Default cap on closure sizes for lint models.
CLOSURE_CAP = 4_000


def bounded_closure(
    conc: Concurroid,
    initials: Sequence[State],
    cap: int = CLOSURE_CAP,
) -> tuple[list[State], bool]:
    """Like ``protocol_closure`` but truncates instead of raising.

    Returns ``(states, exhaustive)``; when not exhaustive, callers must
    treat the family as a sample (no dead-transition conclusions).
    """
    seen: set[State] = set()
    frontier: deque[State] = deque()
    for s in initials:
        if s not in seen:
            seen.add(s)
            frontier.append(s)
    truncated = False
    while frontier:
        current = frontier.popleft()
        successors: list[State] = []
        for t in conc.transitions():
            try:
                successors.extend(s2 for __, s2 in t.successors(current))
            except Exception:  # noqa: BLE001 - lint must not die on a bad guard
                continue
        successors.extend(conc.env_moves(current))
        for succ in successors:
            if succ not in seen:
                if len(seen) >= cap:
                    truncated = True
                    break
                seen.add(succ)
                frontier.append(succ)
        if truncated:
            break
    return sorted(seen, key=repr), not truncated


def bounded_closure_many(
    concs: Sequence[Concurroid],
    initials: Sequence[State],
    cap: int = CLOSURE_CAP,
) -> tuple[list[State], bool]:
    """Interleaved closure under several concurroids' transitions.

    Like :func:`bounded_closure` but the frontier expands under every
    concurroid's transitions and environment moves — the state family of
    a world composing independent protocols (e.g. the two-lock demo),
    where each protocol's reachable region depends on the other's.
    """
    seen: set[State] = set()
    frontier: deque[State] = deque()
    for s in initials:
        if s not in seen:
            seen.add(s)
            frontier.append(s)
    truncated = False
    while frontier:
        current = frontier.popleft()
        successors: list[State] = []
        for conc in concs:
            for t in conc.transitions():
                try:
                    successors.extend(s2 for __, s2 in t.successors(current))
                except Exception:  # noqa: BLE001 - lint must not die on a bad guard
                    continue
            successors.extend(conc.env_moves(current))
        for succ in successors:
            if succ not in seen:
                if len(seen) >= cap:
                    truncated = True
                    break
                seen.add(succ)
                frontier.append(succ)
        if truncated:
            break
    return sorted(seen, key=repr), not truncated


@dataclass
class LintTarget:
    """Everything fcsl-lint needs about one case study."""

    program: str
    #: concurroids this program *introduces* (empty for pure clients)
    concurroids: tuple[Concurroid, ...] = ()
    #: the modelled state family and whether it is exhaustive
    states: tuple[State, ...] = ()
    exhaustive: bool = True
    #: (action, args_family) pairs, mirroring the dynamic verifier tables
    actions: tuple[tuple, ...] = ()
    #: (spec, states-the-spec-is-ascribed-over) pairs — a spec's pre may
    #: address a different state family than the protocol model (e.g.
    #: span_root's closed world)
    specs: tuple[tuple[Spec, tuple[State, ...]], ...] = ()
    assertions: tuple[AutoAssertion, ...] = ()
    #: (prog, name, ambient-labels) triples; the ambient scope is the
    #: label set of the world the program runs under (None disables the
    #: scoping rules)
    programs: tuple[tuple[Prog, str, frozenset | None], ...] = ()
    pcms: tuple[PCM, ...] = ()


# -- builders (one per Table 1 row) ----------------------------------------------------------


def _lock_target(name: str, make_lock: Callable, actions_of: Callable) -> LintTarget:
    from ..structures.locks.verify import (
        LABEL,
        bump_client,
        lock_initial_state,
    )

    lock = make_lock()
    conc = lock.concurroid
    initials = [
        lock_initial_state(lock, a, b) for a in (0, 1) for b in (0, 1)
    ]
    states, exhaustive = bounded_closure(conc, initials)
    spec = Spec(
        "bump-client",
        pre=lambda s: lock.quiescent(s),
        post=lambda r, s2, s1: (
            lock.quiescent(s2)
            and lock.client_self(s2) == lock.client_self(s1) + 1
        ),
    )
    assertions = (
        AutoAssertion(
            name="my-contribution-constant",
            predicate=lambda s: lock.client_self(s) == 0,
            shape="self-framed",
        ),
    )
    states = tuple(states)
    return LintTarget(
        program=name,
        concurroids=(conc,),
        states=states,
        exhaustive=exhaustive,
        actions=tuple(actions_of(lock)),
        specs=((spec, states),),
        assertions=assertions,
        programs=((bump_client(lock), "bump-client", frozenset({LABEL})),),
        pcms=(conc.pcms()[LABEL],),
    )


def _cas_lock() -> LintTarget:
    from ..structures.locks.verify import RES_CELL, make_counter_cas_lock

    def actions(lock):
        return (
            (lock.try_acquire_action, ((),)),
            (lock.read_action, ((RES_CELL,),)),
            (lock.write_action, ((RES_CELL, 0), (RES_CELL, 2))),
        )

    return _lock_target("CAS-lock", make_counter_cas_lock, actions)


def _ticketed_lock() -> LintTarget:
    from ..structures.locks.verify import RES_CELL, make_counter_ticketed_lock

    def actions(lock):
        return (
            (lock.draw_action, ((),)),
            (lock.read_owner_action, ((),)),
            (lock.read_action, ((RES_CELL,),)),
            (lock.write_action, ((RES_CELL, 0), (RES_CELL, 2))),
        )

    return _lock_target("Ticketed lock", make_counter_ticketed_lock, actions)


def _cg_increment() -> LintTarget:
    from ..structures.cg_increment import (
        incr,
        incr_spec,
        incr_twice_parallel,
        initial_state,
        make_increment_lock,
        model_states,
    )

    lock = make_increment_lock()
    states = tuple(model_states(lock, aux_bound=1))
    ambient = frozenset(initial_state(lock, 0, 0).labels())
    return LintTarget(
        program="CG increment",
        states=states,
        specs=((incr_spec(lock, 1), states),),
        programs=(
            (incr(lock), "incr", ambient),
            (incr_twice_parallel(lock), "incr || incr", ambient),
        ),
    )


def _cg_allocator() -> LintTarget:
    from ..heap import pts, ptr
    from ..structures.allocator import (
        AllocatorStructure,
        alloc_spec,
        dealloc_spec,
    )

    alloc = AllocatorStructure()
    initials = [
        alloc.initial_state(pool=()),
        alloc.initial_state(pool=(101,)),
        alloc.initial_state(pool=(101, 102)),
        alloc.initial_state(pool=(101,), my_heap=pts(ptr(103), 0)),
    ]
    states, exhaustive = bounded_closure(alloc.concurroid, initials)
    states = tuple(states)
    ambient = frozenset(alloc.initial_state().labels())
    return LintTarget(
        program="CG allocator",
        concurroids=(alloc.concurroid,),
        states=states,
        exhaustive=exhaustive,
        actions=(
            (alloc.take_action, ((),)),
            (alloc.put_action, ((ptr(101),), (ptr(103),))),
        ),
        specs=(
            (alloc_spec(alloc), states),
            (dealloc_spec(alloc, ptr(103)), states),
        ),
        programs=(
            (alloc.alloc(), "alloc", ambient),
            (alloc.dealloc(ptr(103)), "dealloc", ambient),
        ),
        pcms=tuple(alloc.concurroid.pcms().values()),
    )


def _pair_snapshot() -> LintTarget:
    from ..structures.pair_snapshot import (
        PairSnapshotActions,
        PairSnapshotConcurroid,
        X,
        initial_state,
        make_read_pair,
        read_pair_spec,
        write_prog,
        write_spec,
    )

    conc = PairSnapshotConcurroid()
    actions = PairSnapshotActions(conc)
    states, exhaustive = bounded_closure(conc, [initial_state(conc)])
    states = tuple(states)
    ambient = frozenset(initial_state(conc).labels())
    return LintTarget(
        program="Pair snapshot",
        concurroids=(conc,),
        states=states,
        exhaustive=exhaustive,
        actions=(
            (actions.read_x, ((),)),
            (actions.read_y, ((),)),
            (actions.write_x, ((1,),)),
            (actions.write_y, ((1,),)),
        ),
        specs=((read_pair_spec(conc), states), (write_spec(conc, X, 1), states)),
        programs=(
            (make_read_pair(actions), "read_pair", ambient),
            (write_prog(actions, X, 1), "write x", ambient),
        ),
        pcms=tuple(conc.pcms().values()),
    )


def _treiber() -> LintTarget:
    from ..heap.pointers import NULL, ptr
    from ..structures.treiber import TB_LABEL, push_spec, pop_spec
    from ..structures.treiber_verify import model_states, model_structure

    model = model_structure()
    states = tuple(model_states(model))
    ambient = frozenset(model.initial_state().labels())
    node_args = ((ptr(60),), (ptr(101),))
    cas_args = (
        (NULL, ptr(101)),
        (ptr(60), ptr(101)),
        (ptr(60), NULL),
        (ptr(61), ptr(60)),
    )
    return LintTarget(
        program="Treiber stack",
        concurroids=(model.concurroid,),
        states=states,
        exhaustive=True,
        actions=(
            (model.read_top, ((),)),
            (model.read_node, node_args),
            (model.cas_push, cas_args),
            (model.cas_pop, cas_args),
            (model.prep_node, ((ptr(101), (1, NULL)),)),
        ),
        specs=(
            (push_spec(model.treiber, 1), states),
            (pop_spec(model.treiber), states),
        ),
        programs=(
            (model.push(1), "push", ambient),
            (model.pop(), "pop", ambient),
        ),
        pcms=(model.concurroid.pcms()[TB_LABEL],),
    )


def _spanning_tree() -> LintTarget:
    from ..heap import heap_of, ptr
    from ..heap.pointers import NULL
    from ..structures.spanning_tree import (
        LEFT,
        RIGHT,
        SpanActions,
        SpanTreeConcurroid,
        closed_world_state,
        make_span,
        make_span_root,
        open_world_state,
        span_root_spec,
        span_spec,
    )
    from ..structures.spanning_tree_verify import span_model_states

    conc = SpanTreeConcurroid()
    actions = SpanActions(conc)
    states = tuple(span_model_states(conc, max_nodes=2))
    node_args = ((ptr(1),), (ptr(2),))
    side_args = ((ptr(1), LEFT), (ptr(1), RIGHT), (ptr(2), LEFT), (ptr(2), RIGHT))
    span = make_span(actions)
    graph = heap_of({ptr(1): (False, NULL, NULL)})
    # span runs inside the open world ({sp, pv}); span_root *installs* sp
    # via hide, so it is scoped (and its spec ascribed) in the closed
    # world where only pv is ambient.
    open_ambient = frozenset(open_world_state(conc, graph).labels())
    closed = closed_world_state(graph)
    return LintTarget(
        program="Spanning tree",
        concurroids=(conc,),
        states=states,
        exhaustive=True,
        actions=(
            (actions.trymark, node_args),
            (actions.read_child, side_args),
            (actions.nullify, side_args),
        ),
        specs=(
            (span_spec(conc, ptr(1)), states),
            (span_root_spec(ptr(1)), (closed,)),
        ),
        programs=(
            (span(ptr(1)), "span", open_ambient),
            (make_span_root(actions, ptr(1)), "span_root", frozenset(closed.labels())),
        ),
        pcms=tuple(conc.pcms().values()),
    )


def _flat_combiner() -> LintTarget:
    from ..structures.flat_combiner import FlatCombiner, flat_combine_spec, initial_state
    from ..structures.flat_combiner_verify import SLOT_A, SLOT_B, model_concurroid

    mconc = model_concurroid()
    mfc = FlatCombiner(mconc)
    states, exhaustive = bounded_closure(mconc, [initial_state(mconc)], cap=1_500)
    states = tuple(states)
    ambient = frozenset(initial_state(mconc).labels())
    slot_args = ((SLOT_A,), (SLOT_B,))
    return LintTarget(
        program="Flat combiner",
        concurroids=(mconc,),
        states=states,
        exhaustive=exhaustive,
        actions=(
            (mfc.try_acquire_slot, slot_args),
            (mfc.register, ((SLOT_A, "push", 1), (SLOT_A, "pop", None))),
            (mfc.read_slot, slot_args),
            (mfc.try_combine_lock, ((),)),
            (mfc.help, slot_args),
            (mfc.combine_unlock, ((),)),
            (mfc.collect, slot_args),
            (mfc.release_slot, slot_args),
        ),
        specs=((flat_combine_spec(mconc, "push", 1), states),),
        programs=(
            (mfc.flat_combine(SLOT_A, "push", 1), "flat_combine push", ambient),
        ),
        pcms=tuple(mconc.pcms().values()),
    )


def _seq_stack() -> LintTarget:
    from ..structures.seq_stack import SeqStack

    stack = SeqStack()
    ops = (("push", 1), ("push", 2), ("pop", None))
    initial = stack.initial_state()
    return LintTarget(
        program="Seq. stack",
        states=(initial,),
        specs=((stack.sequential_spec(ops), (initial,)),),
        programs=(
            (stack.run_ops(ops), "run_ops push,push,pop", frozenset(initial.labels())),
        ),
    )


def _fc_stack() -> LintTarget:
    from ..structures.fc_stack import FCStack, SLOTS

    stack = FCStack()
    initial = stack.initial_state()
    ambient = frozenset(initial.labels())
    return LintTarget(
        program="FC-stack",
        states=(initial,),
        specs=((stack.push_spec(1), (initial,)), (stack.pop_spec(), (initial,))),
        programs=(
            (stack.push(SLOTS[0], 1), "fc push", ambient),
            (stack.pop(SLOTS[1]), "fc pop", ambient),
        ),
    )


def _prod_cons() -> LintTarget:
    from ..structures.prodcons import prod_cons, prod_cons_spec
    from ..structures.treiber import TreiberStructure

    structure = TreiberStructure(max_ops=3, pool=(101,))
    initial = structure.initial_state()
    return LintTarget(
        program="Prod/Cons",
        states=(initial,),
        specs=((prod_cons_spec(structure, (1,)), (initial,)),),
        programs=(
            (
                prod_cons(structure, (1,)),
                "producer || consumer",
                frozenset(initial.labels()),
            ),
        ),
    )


def _two_lock_demo() -> LintTarget:
    from ..structures.locks.demo import (
        RES_OF,
        deadlock_par,
        demo_initial_state,
        ladder,
        make_demo_locks,
    )

    la, lb = make_demo_locks()
    initials = [
        demo_initial_state(la, lb, a1, b1, a2, b2)
        for a1 in (0, 1)
        for b1 in (0, 1)
        for a2 in (0, 1)
        for b2 in (0, 1)
    ]
    states, exhaustive = bounded_closure_many(
        (la.concurroid, lb.concurroid), initials
    )
    states = tuple(states)
    ambient = frozenset(initials[0].labels())

    def lock_actions(lock):
        res = RES_OF[lock.concurroid.label]
        return (
            (lock.try_acquire_action, ((),)),
            (lock.read_action, ((res,),)),
            (lock.write_action, ((res, 0), (res, 1))),
        )

    return LintTarget(
        program="Two-lock demo",
        concurroids=(la.concurroid, lb.concurroid),
        states=states,
        exhaustive=exhaustive,
        actions=lock_actions(la) + lock_actions(lb),
        programs=(
            (deadlock_par(la, lb), "ladder(la,lb) || ladder(lb,la)", ambient),
            (ladder(la, lb), "ladder(la,lb)", ambient),
        ),
        pcms=(
            la.concurroid.pcms()[la.concurroid.label],
            lb.concurroid.pcms()[lb.concurroid.label],
        ),
    )


def _unfair_lock() -> LintTarget:
    from ..structures.locks.verify import RES_CELL
    from ..structures.locks.demo import make_unfair_lock

    def actions(lock):
        return (
            (lock.try_acquire_action, ((),)),
            (lock.read_action, ((RES_CELL,),)),
            (lock.write_action, ((RES_CELL, 0), (RES_CELL, 2))),
        )

    return _lock_target("Unfair lock demo", make_unfair_lock, actions)


#: registry name -> target builder (must cover structures/registry.py exactly)
TARGET_BUILDERS: dict[str, Callable[[], LintTarget]] = {
    "CAS-lock": _cas_lock,
    "Ticketed lock": _ticketed_lock,
    "CG increment": _cg_increment,
    "CG allocator": _cg_allocator,
    "Pair snapshot": _pair_snapshot,
    "Treiber stack": _treiber,
    "Spanning tree": _spanning_tree,
    "Flat combiner": _flat_combiner,
    "Seq. stack": _seq_stack,
    "FC-stack": _fc_stack,
    "Prod/Cons": _prod_cons,
    # Demo rows (registry ``demo=True``): swept by fcsl-live, resolvable
    # by explicit name in lint/race, excluded from the default sweeps.
    "Two-lock demo": _two_lock_demo,
    "Unfair lock demo": _unfair_lock,
}


@lru_cache(maxsize=None)
def target_for(name: str) -> LintTarget:
    """Build (and cache) the lint target of one registry program."""
    try:
        builder = TARGET_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"no lint target for registry program {name!r}; "
            f"known: {sorted(TARGET_BUILDERS)}"
        ) from None
    return builder()

"""PCM rules (FCSL040-044): algebra checks on a symbolic sample.

Thin lint front-end over :mod:`repro.pcm.laws` — the same law checkers
the verifier runs, but reported as stable diagnostics with locations, so
a broken algebra is caught at definition time rather than as a failed
``Libs`` obligation deep inside a verification run.
"""

from __future__ import annotations

from ..pcm.base import PCM
from ..pcm.laws import (
    check_associativity,
    check_commutativity,
    check_unit_law,
    check_unit_valid,
    check_validity_monotone,
)
from .diagnostics import Diagnostic, diag, loc_of


def lint_pcm(pcm: PCM, *, subject: str = "") -> list[Diagnostic]:
    """Run every PCM rule on one instance."""
    out: list[Diagnostic] = []
    pcm_name = type(pcm).__name__
    loc = loc_of(pcm)

    def report(code: str, violations) -> None:
        for v in violations[:1]:  # one witness per law is enough
            out.append(
                diag(
                    code,
                    f"{pcm_name}: {v}",
                    subject=subject,
                    obj=pcm_name,
                    loc=loc,
                )
            )

    try:
        sample = tuple(pcm.sample())
    except Exception as exc:  # noqa: BLE001 - a crashing sample breaks every law
        return [
            diag(
                "FCSL043",
                f"{pcm_name}: sample() raised {type(exc).__name__}: {exc}",
                subject=subject,
                obj=pcm_name,
                loc=loc,
            )
        ]

    if len(sample) < 2:
        out.append(
            diag(
                "FCSL043",
                f"{pcm_name}: sample has {len(sample)} element(s); "
                "commutativity/associativity checks are vacuous",
                subject=subject,
                obj=pcm_name,
                loc=loc,
            )
        )

    report("FCSL040", check_commutativity(pcm, sample))
    report("FCSL041", check_associativity(pcm, sample))
    report("FCSL042", check_unit_law(pcm, sample) + check_unit_valid(pcm))
    report("FCSL044", check_validity_monotone(pcm, sample))
    return out

"""The verifier pre-pass: lint facts that discharge dynamic obligations.

:func:`repro.core.stability.check_stability` is the verifier's per-
assertion brute force: an interference-closure BFS from every start
state.  For a large class of assertions that exploration is provably
redundant, and this module proves it *statically* (per model, amortized
over all its stability obligations):

1. **Environment closure** — every environment move from every modelled
   state lands back inside the modelled family (one sweep per
   ``(concurroid, states)`` pair, cached).
2. **Self preservation** — those moves never change any label's ``self``
   projection (checked in the same sweep; this is the other-preservation
   metatheory fact seen from the observer's side).
3. **Self-framedness** — the assertion is constant on classes of states
   sharing all ``self`` components (:func:`repro.analysis.specs.probe_self_framed`).

Given 1-3, any interference path from a start state where the assertion
holds stays inside the start's self-projection class, where the
assertion is constantly true — so ``check_stability`` would return no
issues.  :meth:`StaticPrepass.discharges` says exactly when that
argument applies; the hook in ``check_stability`` then skips the BFS and
the report shows the skip count.  Verdicts are identical by
construction: only obligations whose dynamic outcome is provably empty
are skipped.

Usage::

    with static_prepass() as facts:
        report = verify_cas_lock()
    assert facts.skipped  # e.g. the contribution-stable(a=...) family
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from ..core.concurroid import Concurroid
from ..core.state import State
from ..core.verify import set_prepass
from .specs import probe_self_framed


class StaticPrepass:
    """Lint-fact store consulted by ``check_stability``."""

    #: fcsl-deps: the dependency walker must not traverse this memo.
    #: Its contents are derived facts over already-fingerprinted sources
    #: — but they accumulate across a shared verification process, so a
    #: cone that included them would depend on which *sibling* programs
    #: happened to run first (nondeterministic fingerprints, spurious
    #: re-verification).
    __deps_opaque__ = True

    def __init__(self) -> None:
        #: (conc id, states fingerprint) -> env-closure sweep verdict
        self._sweeps: dict[tuple, bool] = {}
        self._pinned: list[Concurroid] = []  # keep ids stable while cached
        #: names of obligations discharged statically, in order
        self.skipped: list[str] = []
        #: how many obligations consulted the pre-pass
        self.consulted: int = 0
        #: (world id, prog id, init) -> interference oracle (see below)
        self._oracles: dict[tuple, object] = {}
        self._oracle_pins: list[object] = []  # keep ids stable while cached

    # -- the public hook ----------------------------------------------------

    def discharges(
        self,
        assertion: Callable[[State], bool],
        name: str,
        conc: Concurroid,
        states: Iterable[State],
    ) -> bool:
        """True iff the stability BFS for ``assertion`` is provably empty."""
        self.consulted += 1
        states = tuple(states)
        if not states:
            return False
        if not self._env_closed_and_self_preserving(conc, states):
            return False
        framed, __ = probe_self_framed(assertion, states)
        if not framed:
            return False
        self.skipped.append(name)
        return True

    # -- the interference oracle hook ----------------------------------------

    def interference(self, world, init: State, prog):
        """The POR oracle for one scenario, memoized per (world, program,
        initial state) so re-checks of the same triple (retries, multiple
        spec ascriptions) amortize the analysis.  Consulted by
        :func:`repro.core.verify.check_triple` when POR is on."""
        from .interference import analyze_program

        key = (id(world), id(prog), init)
        if key not in self._oracles:
            self._oracle_pins.extend((world, prog))
            self._oracles[key] = analyze_program(world, init, prog)
        return self._oracles[key]

    @property
    def oracles_built(self) -> int:
        """How many distinct scenario oracles this pre-pass has built."""
        return len(self._oracles)

    # -- the amortized model sweep ------------------------------------------

    def _env_closed_and_self_preserving(
        self, conc: Concurroid, states: tuple[State, ...]
    ) -> bool:
        key = (id(conc), len(states), hash(states))
        if key not in self._sweeps:
            self._pinned.append(conc)
            self._sweeps[key] = self._sweep(conc, states)
        return self._sweeps[key]

    @staticmethod
    def _sweep(conc: Concurroid, states: tuple[State, ...]) -> bool:
        universe = set(states)
        try:
            for s in states:
                for s2 in conc.env_moves(s):
                    if s2 not in universe:
                        return False  # family is not env-closed
                    for lbl in s.labels():
                        if s2.self_of(lbl) != s.self_of(lbl):
                            return False  # env changed a self projection
        except Exception:  # noqa: BLE001 - fail closed
            return False
        return True


@contextmanager
def static_prepass() -> Iterator[StaticPrepass]:
    """Install a :class:`StaticPrepass` for the dynamic verifiers run
    inside the ``with`` block; always uninstalled on exit."""
    facts = StaticPrepass()
    set_prepass(facts)
    try:
        yield facts
    finally:
        set_prepass(None)

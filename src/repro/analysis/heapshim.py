"""A recording :class:`~repro.heap.Heap` shim.

The footprint-escape rule (FCSL010) needs to know which cells an action's
``step`` *touched*, not just which cells ended up different — an
update that rewrites a cell with its old value is invisible to a
before/after diff but is still a write outside the declared footprint.
The shim is a ``Heap`` subclass whose mutating operations return new
recording heaps carrying the accumulated operation sets, so chained
updates (``h.update(p, v).update(q, w)``) stay tracked.

Heaps are persistent, so a "mutation" only matters if its result is
*installed* in the action's post state — pure view computations (for
example carving the protected resource out of a joint heap with
``joint.free(lock_cell)``) derive heaps that are read and discarded.
Accordingly the operation sets ride on each derived heap instance, and
:func:`effective_log` aggregates only the heaps present in a given
(post) state.  Reads go to a shared :class:`HeapLog` since observation
is harmless wherever it happens.

Recording heaps are *observationally identical* to plain heaps (equality,
hashing, PCM structure are inherited), so instrumented states flow
through unmodified action code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..core.state import State, SubjState
from ..heap.heap import Heap
from ..heap.pointers import Ptr

_EMPTY: frozenset[Ptr] = frozenset()


@dataclass
class HeapLog:
    """Cells touched by heap operations (an aggregation of op sets)."""

    reads: set[Ptr] = field(default_factory=set)
    writes: set[Ptr] = field(default_factory=set)
    allocs: set[Ptr] = field(default_factory=set)
    frees: set[Ptr] = field(default_factory=set)

    @property
    def touched(self) -> frozenset[Ptr]:
        return frozenset(self.writes | self.allocs | self.frees)


class RecordingHeap(Heap):
    """A heap whose derived heaps carry the mutations that produced them."""

    __slots__ = ("_log", "_writes", "_allocs", "_frees")

    def __init__(
        self,
        items=None,
        *,
        log: HeapLog,
        writes: frozenset[Ptr] = _EMPTY,
        allocs: frozenset[Ptr] = _EMPTY,
        frees: frozenset[Ptr] = _EMPTY,
        _valid: bool = True,
    ):
        super().__init__(items, _valid=_valid)
        self._log = log
        self._writes = writes
        self._allocs = allocs
        self._frees = frees

    def _rewrap(
        self,
        out: Heap,
        *,
        writes: Iterable[Ptr] = (),
        allocs: Iterable[Ptr] = (),
        frees: Iterable[Ptr] = (),
    ) -> "RecordingHeap":
        w = self._writes | frozenset(writes)
        a = self._allocs | frozenset(allocs)
        f = self._frees | frozenset(frees)
        if not out.is_valid:
            return RecordingHeap(
                None, log=self._log, writes=w, allocs=a, frees=f, _valid=False
            )
        return RecordingHeap(
            dict(out.items()), log=self._log, writes=w, allocs=a, frees=f
        )

    # -- reads ---------------------------------------------------------------

    def get(self, p: Ptr, default: Any = None) -> Any:
        self._log.reads.add(p)
        return super().get(p, default)

    def __getitem__(self, p: Ptr) -> Any:
        self._log.reads.add(p)
        return super().__getitem__(p)

    # -- mutations (rewrap with the op recorded, so chains keep tracking) ------

    def update(self, p: Ptr, value: Any) -> "Heap":
        return self._rewrap(super().update(p, value), writes={p})

    def free(self, p: Ptr) -> "Heap":
        return self._rewrap(super().free(p), writes={p}, frees={p})

    def alloc(self, value: Any) -> tuple[Ptr, "Heap"]:
        p, out = super().alloc(value)
        return p, self._rewrap(out, writes={p}, allocs={p})

    def join(self, other: Heap) -> "Heap":
        # Join-extension is how connector-style steps graft donated cells in;
        # the grafted cells are domain growth, i.e. writes.
        out = super().join(other)
        grafted = other.dom() if other.is_valid else frozenset()
        return self._rewrap(out, writes=grafted, allocs=grafted)

    def remove_all(self, doms: Iterable[Ptr]) -> "Heap":
        doms = frozenset(doms)
        removed = doms & self.dom()
        return self._rewrap(
            super().remove_all(doms), writes=removed, frees=removed
        )


def instrument_state(state: State) -> tuple[State, HeapLog]:
    """Replace every heap-valued component of ``state`` with a recording
    heap sharing one read log; non-heap components pass through untouched."""
    log = HeapLog()

    def wrap(value: Any) -> Any:
        if isinstance(value, Heap) and not isinstance(value, RecordingHeap):
            if not value.is_valid:
                return RecordingHeap(None, log=log, _valid=False)
            return RecordingHeap(dict(value.items()), log=log)
        return value

    parts = {
        lbl: SubjState(
            wrap(comp.self_), wrap(comp.joint), wrap(comp.other)
        )
        for lbl, comp in state.items()
    }
    return State(parts), log


def effective_log(state: State, reads: HeapLog | None = None) -> HeapLog:
    """The mutations that *flowed into* ``state``.

    Aggregates the op sets of every :class:`RecordingHeap` found in
    ``state``'s components; derived heaps that an action computed and
    discarded (pure views) contribute nothing.  ``reads`` optionally
    supplies the shared read log from :func:`instrument_state`.
    """
    log = HeapLog(reads=set(reads.reads) if reads is not None else set())
    for __, comp in state.items():
        for value in (comp.self_, comp.joint, comp.other):
            if isinstance(value, RecordingHeap):
                log.writes |= value._writes
                log.allocs |= value._allocs
                log.frees |= value._frees
    return log

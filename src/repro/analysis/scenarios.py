"""Representative ``Main``-triple scenarios of every registry program,
reusable outside their verification functions.

The POR soundness gate (tests/test_por_equiv.py), the POR benchmark
(benchmarks/bench_por.py) and the evaluation report all need the same
thing: one or more concrete (world, initial state, program) triples per
Table 1 case study, with the exploration bounds its verification uses,
so reduced and unreduced searches can be compared head-to-head.  The
builders here mirror the scenarios inside each ``verify_*`` function —
same programs, same bounds — plus two extra pair-snapshot client
compositions that showcase the reduction (two ``read_pair`` instances
commute on everything but the shared version cells).

Builders are zero-argument thunks so importing this module stays cheap;
structure modules load only when a scenario is actually built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.world import World

#: A scenario builder's result: everything explore() needs.
Built = tuple


@dataclass(frozen=True)
class PorScenario:
    """One registry Main scenario with its exploration bounds."""

    #: Registry row (``repro.structures.registry``) this is drawn from.
    program: str
    #: Scenario tag, unique within the program.
    label: str
    #: Zero-arg thunk -> (world, initial state, program).
    build: Callable[[], Built]
    max_steps: int
    env_budget: int
    max_configs: int = 200_000
    #: Whether symmetry reduction preserves the terminal set exactly
    #: modulo result-pair permutation.  False only when identical
    #: sibling threads feed *order-sensitive* join logic (the spanning
    #: tree writes its left or right edge slot depending on which child
    #: won the marking race), where the reduction keeps one
    #: representative terminal per orbit — the standard quotient
    #: semantics; the verdict is still exact because every registry spec
    #: is invariant under the orbit map.
    sym_exact: bool = True

    @property
    def key(self) -> str:
        return f"{self.program}/{self.label}"


def _cas_lock() -> Built:
    from ..structures.locks.verify import (
        bump_client,
        lock_initial_state,
        lock_world,
        make_counter_cas_lock,
    )
    from ..core.prog import par

    lock = make_counter_cas_lock()
    return (
        lock_world(lock),
        lock_initial_state(lock, 0, 0),
        par(bump_client(lock), bump_client(lock)),
    )


def _ticketed_lock() -> Built:
    from ..structures.locks.verify import (
        bump_client,
        lock_initial_state,
        lock_world,
        make_counter_ticketed_lock,
    )
    from ..core.prog import par

    lock = make_counter_ticketed_lock()
    return (
        lock_world(lock),
        lock_initial_state(lock, 0, 0),
        par(bump_client(lock), bump_client(lock)),
    )


def _cg_increment() -> Built:
    from ..structures.cg_increment import (
        incr_twice_parallel,
        initial_state,
        make_increment_lock,
        make_world,
    )

    lock = make_increment_lock()
    return (make_world(lock), initial_state(lock, 0, 0), incr_twice_parallel(lock))


def _cg_allocator() -> Built:
    from ..structures.allocator import AllocatorStructure
    from ..core.prog import par

    alloc = AllocatorStructure()
    return (
        World((alloc.concurroid,)),
        alloc.initial_state(pool=(101, 102)),
        par(alloc.alloc(), alloc.alloc()),
    )


def _pair_snapshot(shape: str) -> Built:
    from ..structures.pair_snapshot import (
        X,
        PairSnapshotActions,
        PairSnapshotConcurroid,
        initial_state,
        make_read_pair,
        write_prog,
    )
    from ..core.prog import par

    conc = PairSnapshotConcurroid()
    actions = PairSnapshotActions(conc)
    rp = lambda: make_read_pair(actions)  # noqa: E731 - fresh Prog per use
    wx = lambda: write_prog(actions, X, 1)  # noqa: E731
    progs = {
        "rp||rp": par(rp(), rp()),
        "rp||(rp||wx)": par(rp(), par(rp(), wx())),
        "rp||wx": par(rp(), wx()),
        # The scaling scenario: three symmetric readers under heavy
        # interference — the largest registry exploration, used by
        # bench_parallel_explore.py to demonstrate the parallel speedup.
        "rp||(rp||rp)": par(rp(), par(rp(), rp())),
    }
    return (World((conc,)), initial_state(conc), progs[shape])


def _treiber() -> Built:
    from ..structures.treiber_verify import small_structure
    from ..core.prog import par

    structure = small_structure()
    return (
        World((structure.concurroid,)),
        structure.initial_state(),
        par(structure.push(0), structure.push(1)),
    )


def _flat_combiner() -> Built:
    from ..structures.flat_combiner import FlatCombiner, initial_state
    from ..structures.flat_combiner_verify import SLOT_A, SLOT_B, scenario_concurroid
    from ..core.prog import par

    conc = scenario_concurroid()
    fc = FlatCombiner(conc)
    return (
        World((conc,)),
        initial_state(conc),
        par(fc.flat_combine(SLOT_A, "push", 1), fc.flat_combine(SLOT_B, "pop", None)),
    )


def _fc_stack() -> Built:
    from ..structures.fc_stack import FCStack
    from ..core.prog import par

    stack = FCStack()
    return (
        stack.world(),
        stack.initial_state(),
        par(stack.push(stack.slots[0], 1), stack.pop(stack.slots[1])),
    )


def _prod_cons() -> Built:
    from ..structures.prodcons import prod_cons
    from ..structures.treiber import TreiberStructure

    structure = TreiberStructure(max_ops=3, pool=(101,))
    return (
        World((structure.concurroid,)),
        structure.initial_state(),
        prod_cons(structure, (1,)),
    )


def _seq_stack() -> Built:
    from ..structures.seq_stack import SeqStack

    stack = SeqStack()
    ops = (("push", 0), ("pop", None))
    return (stack.world(), stack.initial_state(), stack.run_ops(ops))


def _spanning_tree() -> Built:
    from ..structures.spanning_tree import (
        SpanActions,
        SpanTreeConcurroid,
        closed_world_state,
        make_span_root,
    )
    from ..structures.spanning_tree_verify import connected_graph_family, root_world

    h, root = connected_graph_family(2)[-1]  # the largest small connected graph
    return (
        root_world(),
        closed_world_state(h),
        make_span_root(SpanActions(SpanTreeConcurroid()), root),
    )


#: Every registry program appears at least once (the soundness gate
#: iterates this list); bounds mirror the verify_* functions.
POR_SCENARIOS: tuple[PorScenario, ...] = (
    PorScenario("CAS-lock", "bump||bump", _cas_lock, 60, 1),
    PorScenario("Ticketed lock", "bump||bump", _ticketed_lock, 60, 1),
    PorScenario("CG increment", "incr||incr", _cg_increment, 40, 1),
    PorScenario("CG allocator", "alloc||alloc", _cg_allocator, 50, 0),
    PorScenario(
        "Pair snapshot", "rp||rp", lambda: _pair_snapshot("rp||rp"), 60, 1
    ),
    PorScenario(
        "Pair snapshot",
        "rp||(rp||wx)",
        lambda: _pair_snapshot("rp||(rp||wx)"),
        60,
        0,
    ),
    PorScenario(
        "Pair snapshot", "rp||wx", lambda: _pair_snapshot("rp||wx"), 60, 2
    ),
    PorScenario("Treiber stack", "push||push", _treiber, 60, 0, 400_000),
    PorScenario("Flat combiner", "push||pop", _flat_combiner, 36, 0, 300_000),
    PorScenario("FC-stack", "push||pop", _fc_stack, 80, 0, 300_000),
    PorScenario("Prod/Cons", "prodcons(1)", _prod_cons, 300, 0, 500_000),
    PorScenario("Seq. stack", "push;pop", _seq_stack, 120, 0),
    # Both root edges lead to the same node, so the two span() children
    # are identical programs racing to mark it; the join writes the
    # winning edge slot, making the terminal heaps mirror images — the
    # one registry program whose symmetry quotient is a strict subset.
    PorScenario(
        "Spanning tree", "span_root/2", _spanning_tree, 80, 0, sym_exact=False
    ),
)


def _two_lock_demo() -> Built:
    from ..structures.locks.demo import (
        demo_initial_state,
        demo_world,
        ladder,
        make_demo_locks,
    )

    la, lb = make_demo_locks()
    return (demo_world(la, lb), demo_initial_state(la, lb), ladder(la, lb))


def _unfair_lock_demo() -> Built:
    from ..structures.locks.demo import make_unfair_lock
    from ..structures.locks.verify import (
        bump_client,
        lock_initial_state,
        lock_world,
    )
    from ..core.prog import par

    lock = make_unfair_lock()
    return (
        lock_world(lock),
        lock_initial_state(lock, 0, 0),
        par(bump_client(lock), bump_client(lock)),
    )


#: The two ``demo=True`` registry rows (deliberately defective fcsl-live
#: positive cases, name-resolvable but excluded from default sweeps);
#: bounds mirror their verify_* Main triples.
DEMO_SCENARIOS: tuple[PorScenario, ...] = (
    PorScenario("Two-lock demo", "ladder-la-lb", _two_lock_demo, 40, 1),
    PorScenario("Unfair lock demo", "bump||bump", _unfair_lock_demo, 80, 1),
)

#: The exploration-equivalence gate (tests/test_explore_equiv.py) runs
#: every registry program *including* the demo rows through the
#: parallel/symmetry/POR/liveness combination matrix.
EXPLORE_SCENARIOS: tuple[PorScenario, ...] = POR_SCENARIOS + DEMO_SCENARIOS

#: The largest registry exploration: three symmetric pair-snapshot
#: readers under two interference steps.  Big enough (>10k configs,
#: tens of seconds serial) that frontier-sharded parallel exploration
#: shows a wall-clock win; bench_parallel_explore.py measures it.
BENCH_SCENARIO = PorScenario(
    "Pair snapshot",
    "rp||(rp||rp)",
    lambda: _pair_snapshot("rp||(rp||rp)"),
    90,
    2,
    500_000,
)


def por_scenarios(names: Iterable[str] | None = None) -> list[PorScenario]:
    """The scenario list, optionally filtered to some registry programs."""
    if names is None:
        return list(POR_SCENARIOS)
    wanted = set(names)
    known = {s.program for s in POR_SCENARIOS}
    unknown = sorted(wanted - known)
    if unknown:
        raise KeyError(f"no POR scenario for {unknown}; known: {sorted(known)}")
    return [s for s in POR_SCENARIOS if s.program in wanted]


def run_scenario(
    scenario: PorScenario,
    *,
    por: bool,
    liveness: bool = False,
    symmetry: bool = False,
    parallel: int = 1,
    compact: bool = True,
):
    """Explore one scenario, reduced or not, with its verification bounds.

    ``por=True`` lets explore() build the interference oracle itself
    (``analyze_config``); analysis trouble fails open to the unreduced
    search, so the result is comparable either way.  ``liveness=True``
    additionally arms the bounded livelock detector — observational by
    construction, which tests/test_liveness_equiv.py checks against
    these same scenarios.  ``symmetry``/``parallel``/``compact`` select
    the PR-7 scaling reductions, compared against the serial explorer by
    tests/test_explore_equiv.py over :data:`EXPLORE_SCENARIOS`.
    """
    from ..semantics.explore import explore
    from ..semantics.interp import initial_config

    world, init, prog = scenario.build()
    config = initial_config(world, init, prog)
    return explore(
        config,
        max_steps=scenario.max_steps,
        env_budget=scenario.env_budget,
        max_configs=scenario.max_configs,
        por=por,
        liveness=liveness,
        symmetry=symmetry,
        parallel=parallel,
        compact=compact,
    )


def terminal_signature(result) -> frozenset:
    """A comparable image of an exploration's terminal set.

    POR must preserve it exactly: same results, same final shared
    states.  (Thread-private bookkeeping like remaining step budgets may
    differ across prunings; results and shared state may not.)
    """
    return frozenset(
        (repr(c.result), c.shared_signature()) for c in result.terminals
    )

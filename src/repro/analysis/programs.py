"""Program rules (FCSL030-033): a static walk of the prog DSL.

Programs are deep-embedded (:mod:`repro.core.prog`) except for two
opaque spots: ``Bind`` continuations and ``Call`` bodies are Python
closures.  The walker treats them the way :func:`repro.semantics.trees.tree_size`
does — it *probes* continuations with candidate values (a permissive
``_Probe`` object plus a few common scalars) under ``try/except``, and
expands ``Call`` nodes with recursion cut on the callee's identity — so
every reachable branch of the program tree is seen without running any
action.

Rules:

* FCSL030 — a recursive knot (``ffix``) none of whose unfoldings performs
  an atomic action: the operational semantics can only spin, guaranteed
  divergence.
* FCSL031 — ``par`` applied to the *same* program object twice.
* FCSL032 — ``hide`` installing a label the enclosing scope already has.
* FCSL033 — an action whose concurroid needs labels the scope (ambient
  world + enclosing hides) does not provide.

Every rule is conservative: anything unprobeable is assumed innocent, and
the walk carries a node budget, so no rule can loop or false-positive on
opaque control flow.
"""

from __future__ import annotations

from typing import Iterable

from ..core.prog import ActCall, Bind, Call, HideProg, Par, Prog, Ret
from ..semantics.trees import try_kont
from .diagnostics import Diagnostic, diag, loc_of

#: Total DSL nodes visited per program before the walker gives up.
MAX_NODES = 20_000


class _Probe:
    """A value that survives most continuation code: falsy, never equal to
    anything, and closed under common operations."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return False

    def __ne__(self, other: object) -> bool:
        return True

    def __hash__(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter((_Probe(), _Probe()))

    def __getitem__(self, __) -> "_Probe":
        return _Probe()

    def __call__(self, *__, **___) -> "_Probe":
        return _Probe()

    def __repr__(self) -> str:
        return "<lint probe>"


def _arith(self, *__):
    return _Probe()


for _name in (
    "__add__", "__radd__", "__sub__", "__rsub__", "__mul__", "__rmul__",
    "__neg__", "__and__", "__or__", "__lt__", "__le__", "__gt__", "__ge__",
):
    setattr(_Probe, _name, _arith)

#: Values each continuation is probed with; every one that produces a
#: program contributes a branch to the walk.
PROBE_VALUES: tuple = (_Probe(), None, True, False)


def _call_key(node: Call) -> tuple:
    """Identity of the recursive knot behind a ``Call``.

    ``ffix`` wraps every unfolding in the same lambda *code*, so the code
    object alone conflates distinct knots; the closure cells (the ``rec``
    and generator the lambda captures) disambiguate.
    """
    fn = node.fn
    code = getattr(fn, "__code__", None)
    if code is None:
        return ("opaque", id(fn))
    cells = getattr(fn, "__closure__", None) or ()
    ids = []
    for cell in cells:
        try:
            ids.append(id(cell.cell_contents))
        except ValueError:  # empty cell
            ids.append(0)
    return (id(code), tuple(ids))


def lint_prog(
    prog: Prog,
    *,
    ambient_labels: Iterable[str] | None = None,
    subject: str = "",
    name: str = "program",
    max_nodes: int = MAX_NODES,
) -> list[Diagnostic]:
    """Run every program rule on one program.

    ``ambient_labels`` is the label set the enclosing world provides; pass
    ``None`` to disable the scoping rules (FCSL032/FCSL033 need it).
    """
    out: list[Diagnostic] = []
    scope0 = frozenset(ambient_labels) if ambient_labels is not None else None
    budget = [max_nodes]
    expanded: dict[tuple, tuple[bool, frozenset]] = {}
    stack: list[tuple] = []
    flagged: set[tuple] = set()

    def walk(node: Prog, scope: frozenset | None) -> tuple[bool, frozenset]:
        """Returns ``(has_act, open_rec_keys)`` for the subtree: whether any
        unfolding performs an action, and which enclosing recursive knots
        the subtree re-enters."""
        if budget[0] <= 0:
            return True, frozenset()  # out of budget: assume innocent
        budget[0] -= 1

        if isinstance(node, Ret):
            return False, frozenset()

        if isinstance(node, ActCall):
            if scope is not None:
                labels = frozenset(node.action.concurroid.labels)
                if not labels <= scope:
                    out.append(
                        diag(
                            "FCSL033",
                            f"{name}: action {node.action.name!r} needs labels "
                            f"{sorted(labels - scope)!r} the scope does not provide "
                            f"(scope: {sorted(scope)!r})",
                            subject=subject,
                            obj=node.action.name,
                            loc=loc_of(type(node.action).step),
                        )
                    )
            return True, frozenset()

        if isinstance(node, Bind):
            has_act, rec = walk(node.first, scope)
            for value in PROBE_VALUES:
                result = try_kont(node.cont, value)
                if isinstance(result, Prog):
                    a, r = walk(result, scope)
                    has_act, rec = has_act or a, rec | r
            return has_act, rec

        if isinstance(node, Par):
            if node.left is node.right:
                out.append(
                    diag(
                        "FCSL031",
                        f"{name}: both par branches are the same program object; "
                        "each branch must carry its own self contribution",
                        subject=subject,
                        obj=name,
                    )
                )
            la, lr = walk(node.left, scope)
            ra, rr = walk(node.right, scope)
            return la or ra, lr | rr

        if isinstance(node, HideProg):
            installed = frozenset(node.concurroid.labels)
            if scope is not None and installed & scope:
                out.append(
                    diag(
                        "FCSL032",
                        f"{name}: hide installs label(s) "
                        f"{sorted(installed & scope)!r} already present in scope",
                        subject=subject,
                        obj=",".join(sorted(installed)),
                        loc=loc_of(node.concurroid),
                    )
                )
            inner = scope | installed if scope is not None else None
            return walk(node.body, inner)

        if isinstance(node, Call):
            key = _call_key(node)
            if key in stack:
                return False, frozenset((key,))
            if key in expanded:
                return expanded[key]
            try:
                body = node.expand()
            except Exception:  # noqa: BLE001 - unprobeable body: assume innocent
                return True, frozenset()
            stack.append(key)
            try:
                has_act, rec = walk(body, scope)
            finally:
                stack.pop()
            if key in rec and not has_act and key not in flagged:
                flagged.add(key)
                label = getattr(node, "label", None) or "<call>"
                out.append(
                    diag(
                        "FCSL030",
                        f"{name}: recursive knot {label!r} performs no atomic "
                        "action in any unfolding — guaranteed divergence",
                        subject=subject,
                        obj=label,
                        loc=loc_of(node.fn),
                    )
                )
            result = (has_act, rec - {key})
            expanded[key] = result
            return result

        return True, frozenset()  # unknown node type: assume innocent

    walk(prog, scope0)
    return out


def walk_act_calls(prog: Prog, *, max_nodes: int = MAX_NODES) -> list[ActCall]:
    """Every ``ActCall`` node the walker can reach (helper for tests and
    future rules)."""
    found: list[ActCall] = []
    budget = [max_nodes]
    expanded: set[tuple] = set()

    def walk(node: Prog) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        if isinstance(node, ActCall):
            found.append(node)
        elif isinstance(node, Bind):
            walk(node.first)
            for value in PROBE_VALUES:
                result = try_kont(node.cont, value)
                if isinstance(result, Prog):
                    walk(result)
        elif isinstance(node, Par):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, HideProg):
            walk(node.body)
        elif isinstance(node, Call):
            key = _call_key(node)
            if key in expanded:
                return
            expanded.add(key)
            try:
                body = node.expand()
            except Exception:  # noqa: BLE001
                return
            walk(body)

    walk(prog)
    return found

"""fcsl-lint: static analysis of concurroid/action/PCM/spec/program
definitions, plus the verifier pre-pass built on its facts.

Entry points:

* :func:`repro.analysis.runner.lint_registry` — sweep the Table 1 case
  studies (the ``python -m repro lint`` CLI).
* :func:`repro.analysis.race.race_registry` — the race/interference
  rules alone (the ``python -m repro race`` CLI).
* :func:`repro.analysis.liveness.live_registry` — lock-order, deadlock
  and bounded-liveness rules (FCSL050+, the ``python -m repro live``
  CLI), with :mod:`repro.analysis.lockorder` supplying the static
  lock-order graph.
* :func:`repro.analysis.interference.analyze_program` — the footprint /
  commutativity analysis behind ``explore(..., por=True)``.
* :func:`repro.analysis.prepass.static_prepass` — context manager that
  lets the dynamic verifiers skip provably-redundant stability
  obligations.
"""

from .deps import (
    Definition,
    DependencyAnalysis,
    DependencyCone,
    analyze_obligations,
    deps_registry,
)
from .diagnostics import (
    CODES,
    Diagnostic,
    SelectorError,
    Severity,
    render_json,
    render_text,
    select,
    worst_severity,
)
from .interference import (
    Footprint,
    ProgramInterference,
    action_footprint,
    analyze_config,
    analyze_program,
    footprints_conflict,
)
from .liveness import (
    FAIRNESS_CLAIMS,
    check_fairness,
    fairness_issues,
    find_live_cycles,
    live_registry,
    live_target,
)
from .lockorder import LockOrderGraph, build_lock_order, lockorder_target
from .prepass import StaticPrepass, static_prepass
from .race import race_registry, race_target
from .runner import lint_registry, lint_target

__all__ = [
    "CODES",
    "Definition",
    "DependencyAnalysis",
    "DependencyCone",
    "Diagnostic",
    "FAIRNESS_CLAIMS",
    "Footprint",
    "LockOrderGraph",
    "ProgramInterference",
    "SelectorError",
    "Severity",
    "StaticPrepass",
    "action_footprint",
    "analyze_config",
    "analyze_obligations",
    "analyze_program",
    "build_lock_order",
    "check_fairness",
    "deps_registry",
    "fairness_issues",
    "find_live_cycles",
    "footprints_conflict",
    "lint_registry",
    "lint_target",
    "live_registry",
    "live_target",
    "lockorder_target",
    "race_registry",
    "race_target",
    "render_json",
    "render_text",
    "select",
    "static_prepass",
    "worst_severity",
]

"""fcsl-lint: static analysis of concurroid/action/PCM/spec/program
definitions, plus the verifier pre-pass built on its facts.

Entry points:

* :func:`repro.analysis.runner.lint_registry` — sweep the Table 1 case
  studies (the ``python -m repro lint`` CLI).
* :func:`repro.analysis.prepass.static_prepass` — context manager that
  lets the dynamic verifiers skip provably-redundant stability
  obligations.
"""

from .diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    render_json,
    render_text,
    select,
    worst_severity,
)
from .prepass import StaticPrepass, static_prepass
from .runner import lint_registry, lint_target

__all__ = [
    "CODES",
    "Diagnostic",
    "Severity",
    "StaticPrepass",
    "lint_registry",
    "lint_target",
    "render_json",
    "render_text",
    "select",
    "static_prepass",
    "worst_severity",
]

"""Static interference and commutativity analysis (the core of fcsl-race).

Three layers, each usable on its own:

1. **Footprints** (:func:`action_footprint`): run an atomic action over a
   family of modelled states behind the recording-heap shim
   (:mod:`repro.analysis.heapshim`) and aggregate which label-attributed
   heap cells its guard reads, its step reads and writes, which ``self``
   components it changes (and whether those changes are history-style
   *appends*), and whether it is observably pure.  No program is ever
   executed under a scheduler — this is the same state-family sampling
   the linter uses.

2. **Instance collection** (:func:`collect_program`,
   :func:`collect_config`): walk a program tree (or a live
   configuration's threads) gathering every atomic-action *instance*
   ``(action, args)``, the statically-parallel pairs (instances on
   opposite sides of some ``par``), and the sequential-order pairs.
   Continuations are probed concolically: besides the opaque probe
   values the ``FCSL030`` walker uses, every value an action was
   *observed* to return over the state family is fed back into the
   walk, so value-dependent branches (spin loops, version checks)
   are discovered instead of silently skipped.

3. **Independence** (:class:`ProgramInterference`): a statically-parallel
   pair *commutes* when (a) the actions' cell footprints are disjoint
   (writes of one never touch cells the other reads or writes) and
   (b) a full diamond probe over the state family succeeds in both
   directions — applying one action's corresponding transitions as an
   environment move never toggles the other's guard, never changes its
   return value, and closes the diamond to the same state.  Anything
   that fails, raises, or cannot be resolved (unknown arguments, no
   transition correspondence) is *dependent* — every approximation in
   this module errs toward interference, never toward independence.

The resulting :class:`ProgramInterference` is the oracle behind
``explore(..., por=True)``: a thread's pending instance is an *ample*
singleton only if it is independent of every instance any parallel
thread may ever run, every runnable thread's view is a member of the
modelled state family, and every pending action is safe — otherwise the
explorer falls back to full expansion at that configuration.  See
``docs/RACES.md`` for the soundness argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.action import Action
from ..core.concurroid import Concurroid, Transition
from ..core.prog import ActCall, Bind, Call, HideProg, Par, Prog, Ret
from ..core.state import State
from ..heap import Heap, Ptr
from .heapshim import effective_log, instrument_state
from .programs import MAX_NODES, PROBE_VALUES, _call_key, _Probe

#: An action instance as the interpreter keys it: ``(id(action), args)``
#: (matching :meth:`repro.semantics.interp.Config.pending_action`).
InstanceKey = tuple

#: A cell qualified by the label whose component holds it.
Cell = tuple  # (label, Ptr)

#: Cap on (state, args) runs per footprint probe.
MAX_FOOTPRINT_RUNS = 400

#: Cap on the POR state family; a truncated closure disables reduction.
FAMILY_CAP = 4_000

#: Concolic collection rounds (observed values fed back into the walk).
COLLECT_ROUNDS = 4

#: Elementary probe operations (state x transition evaluations) allowed per
#: analysis.  Exhausting it marks every remaining pair *dependent* — the
#: fail-closed direction — so analysis cost is bounded without ever
#: claiming an independence that was not fully checked.
PROBE_BUDGET = 120_000

#: Cap on distinct action instances the concolic collector will chase.  A
#: program whose instance set blows past this (value-rich loops like the
#: allocator's take/retry) is marked *incomplete*, which disables every
#: eligibility claim — again the fail-closed direction — instead of
#: burning minutes probing footprints that cannot yield a reduction.
MAX_INSTANCES = 40

#: Label used when a touched pointer matches no component of the pre-state
#: (e.g. a freshly allocated private cell).
UNATTRIBUTED = "?"


# -- footprints -----------------------------------------------------------------------


@dataclass(frozen=True)
class Footprint:
    """Observed effect summary of one action instance over a state family."""

    action: str
    labels: frozenset  # labels of the action's own concurroid
    guard_reads: frozenset  # cells the guard (``safe``) reads
    reads: frozenset  # cells read by guard or step
    writes: frozenset  # cells written, allocated or freed
    self_touch: frozenset  # labels whose ``self`` component changes
    joint_aux: frozenset  # labels whose non-heap joint state changes
    hist_appends: frozenset  # self changes that only ever grow
    pure: bool  # every observed run returned the state unchanged
    runs: int  # how many (state, args) runs informed this

    @property
    def touched(self) -> frozenset:
        return self.reads | self.writes

    def widened(self, *, extra_writes: Iterable[Cell] = ()) -> "Footprint":
        """A strictly coarser footprint (for the soundness mutation test)."""
        return Footprint(
            action=self.action,
            labels=self.labels,
            guard_reads=self.guard_reads,
            reads=self.reads,
            writes=self.writes | frozenset(extra_writes),
            self_touch=self.self_touch,
            joint_aux=self.joint_aux,
            hist_appends=self.hist_appends,
            pure=False,
            runs=self.runs,
        )

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "labels": sorted(self.labels),
            "guard_reads": sorted(map(repr, self.guard_reads)),
            "reads": sorted(map(repr, self.reads)),
            "writes": sorted(map(repr, self.writes)),
            "self_touch": sorted(self.self_touch),
            "joint_aux": sorted(self.joint_aux),
            "hist_appends": sorted(self.hist_appends),
            "pure": self.pure,
            "runs": self.runs,
        }


def _owners(state: State, p: Ptr) -> frozenset:
    """Labels whose components hold ``p`` (over-approximate on ambiguity)."""
    labels = set()
    for label, comp in state.items():
        for part in (comp.self_, comp.joint, comp.other):
            if isinstance(part, Heap) and part.is_valid and p in part:
                labels.add(label)
    return frozenset(labels) if labels else frozenset((UNATTRIBUTED,))


def _attribute(state: State, ptrs: Iterable[Ptr]) -> set:
    cells = set()
    for p in ptrs:
        for label in _owners(state, p):
            cells.add((label, p))
    return cells


def _safe(action: Action, state: State, args: tuple) -> bool:
    try:
        return bool(action.safe(state, *args))
    except Exception:  # noqa: BLE001 - a crashing guard is "not safe"
        return False


def _extends(old: Any, new: Any) -> bool:
    """Best-effort "``new`` grew out of ``old``" (history-style append)."""
    try:
        if hasattr(old, "items") and hasattr(new, "items"):
            return set(old.items()) <= set(new.items())
        if isinstance(old, frozenset) and isinstance(new, frozenset):
            return old <= new
        if isinstance(old, int) and isinstance(new, int):
            return old <= new
    except Exception:  # noqa: BLE001 - exotic components: not an append
        return False
    return False


def action_footprint(
    action: Action,
    args: tuple,
    states: Sequence[State],
    *,
    max_runs: int = MAX_FOOTPRINT_RUNS,
) -> tuple[Footprint, frozenset]:
    """Probe ``action(*args)`` over ``states``.

    Returns the aggregated :class:`Footprint` plus the set of (hashable)
    values the action was observed to return — fuel for the concolic
    instance collector.
    """
    guard_reads: set = set()
    reads: set = set()
    writes: set = set()
    self_touch: set = set()
    joint_aux: set = set()
    hist_appends: set = set()
    observed: set = set()
    pure = True
    runs = 0
    for s in states:
        if runs >= max_runs:
            break
        inst, log = instrument_state(s)
        if not _safe(action, inst, args):
            continue
        guard_reads |= _attribute(s, log.reads)
        try:
            value, post = action.step(inst, *args)
        except Exception:  # noqa: BLE001 - crashing step: no run recorded
            continue
        runs += 1
        try:
            hash(value)
            observed.add(value)
        except TypeError:
            pass
        eff = effective_log(post, reads=log)
        reads |= _attribute(s, eff.reads)
        writes |= _attribute(s, eff.writes | eff.frees)
        writes |= _attribute(post, eff.allocs)
        if post != inst:
            pure = False
        for label, comp in s.items():
            if label not in post:
                continue
            post_comp = post[label]
            if post_comp.self_ != comp.self_:
                self_touch.add(label)
                if _extends(comp.self_, post_comp.self_):
                    hist_appends.add(label)
            if post_comp.joint != comp.joint and not isinstance(comp.joint, Heap):
                joint_aux.add(label)
    fp = Footprint(
        action=getattr(action, "name", repr(action)),
        labels=frozenset(action.concurroid.labels),
        guard_reads=frozenset(guard_reads),
        reads=frozenset(reads | guard_reads),
        writes=frozenset(writes),
        self_touch=frozenset(self_touch),
        joint_aux=frozenset(joint_aux),
        hist_appends=frozenset(hist_appends),
        pure=pure,
        runs=runs,
    )
    return fp, frozenset(observed)


# -- instance collection ----------------------------------------------------------------


def _has_probe(value: Any) -> bool:
    if isinstance(value, _Probe):
        return True
    if isinstance(value, (tuple, list)):
        return any(_has_probe(v) for v in value)
    return False


def instance_key(node: ActCall) -> InstanceKey | None:
    """The interpreter-compatible key of an action instance, or ``None``
    when the arguments are unhashable (then no runtime key can match)."""
    key = (id(node.action), node.args)
    try:
        hash(key)
    except TypeError:
        return None
    return key


@dataclass
class CollectedProgram:
    """Instances and their static ordering relations for one program tree."""

    #: key -> representative ActCall node.
    instances: dict = field(default_factory=dict)
    #: frozenset({a, b}) for instances on opposite sides of some ``par``.
    par_pairs: set = field(default_factory=set)
    #: (a, b) for instances where ``a`` sequentially precedes ``b``.
    seq_pairs: set = field(default_factory=set)
    #: keys whose arguments contain probe values (unresolvable statically).
    unresolved: set = field(default_factory=set)
    #: False when a Call failed to expand or the node budget ran out.
    complete: bool = True
    has_hide: bool = False

    def merge_parallel(self, other: "CollectedProgram") -> None:
        """Fold ``other`` in as a *parallel* sibling of everything here."""
        for a in self.instances:
            for b in other.instances:
                self.par_pairs.add(frozenset((a, b)))
        self.absorb(other)

    def merge_sequential(self, other: "CollectedProgram") -> None:
        """Fold ``other`` in as running *after* everything here."""
        for a in self.instances:
            for b in other.instances:
                self.seq_pairs.add((a, b))
        self.absorb(other)

    def absorb(self, other: "CollectedProgram") -> None:
        self.instances.update(other.instances)
        self.par_pairs |= other.par_pairs
        self.seq_pairs |= other.seq_pairs
        self.unresolved |= other.unresolved
        self.complete = self.complete and other.complete
        self.has_hide = self.has_hide or other.has_hide


def collect_program(
    prog: Prog,
    *,
    probe_pool: Iterable[Any] = PROBE_VALUES,
    max_nodes: int = MAX_NODES,
) -> CollectedProgram:
    """Walk a program tree, probing continuations with ``probe_pool``."""
    budget = [max_nodes]
    expanded: set = set()

    def walk(node: Prog) -> CollectedProgram:
        out = CollectedProgram()
        if budget[0] <= 0:
            out.complete = False
            return out
        budget[0] -= 1
        if isinstance(node, Ret):
            return out
        if isinstance(node, ActCall):
            key = instance_key(node)
            if key is None:
                out.complete = False
                return out
            out.instances[key] = node
            if _has_probe(node.args):
                out.unresolved.add(key)
            return out
        if isinstance(node, Par):
            left = walk(node.left)
            right = walk(node.right)
            left.merge_parallel(right)
            return left
        if isinstance(node, Bind):
            out = walk(node.first)
            rest = CollectedProgram()
            for value in probe_pool:
                try:
                    nxt = node.cont(value)
                except Exception:  # noqa: BLE001 - branch rejects this probe
                    continue
                if isinstance(nxt, Prog):
                    rest.absorb(walk(nxt))
            out.merge_sequential(rest)
            return out
        if isinstance(node, Call):
            try:
                key = _call_key(node)
            except Exception:  # noqa: BLE001 - unkeyable call
                out.complete = False
                return out
            if key in expanded:
                return out
            expanded.add(key)
            try:
                body = node.expand()
            except Exception:  # noqa: BLE001 - unexpandable call
                out.complete = False
                return out
            return walk(body)
        if isinstance(node, HideProg):
            out = walk(node.body)
            out.has_hide = True
            return out
        out.complete = False  # unknown node kind: fail closed
        return out

    return walk(prog)


def _thread_tree(threads: Mapping[int, Any]) -> dict:
    """tid -> set of (transitive) child tids, from the ThreadCtx parents."""
    children: dict = {tid: set() for tid in threads}
    for tid, th in threads.items():
        parent = getattr(th, "parent", None)
        while parent is not None and parent in children:
            children[parent].add(tid)
            parent = getattr(threads.get(parent), "parent", None)
    return children


def collect_config(
    config: Any,
    *,
    probe_pool: Iterable[Any] = PROBE_VALUES,
    max_nodes: int = MAX_NODES,
) -> CollectedProgram:
    """Collect instances from a live configuration's threads.

    Each thread contributes its current program plus the programs its
    pending continuations produce under probing; two live threads are
    parallel unless one is an ancestor (a forker awaiting the join) of
    the other.
    """
    threads = dict(config.threads)
    per_thread: dict = {}
    for tid, th in threads.items():
        col = CollectedProgram()
        current = getattr(th, "current", None)
        if isinstance(current, Prog):
            col.absorb(
                collect_program(
                    current, probe_pool=probe_pool, max_nodes=max_nodes
                )
            )
        for kont in getattr(th, "konts", ()) or ():
            rest = CollectedProgram()
            for value in probe_pool:
                try:
                    nxt = kont(value)
                except Exception:  # noqa: BLE001 - kont rejects this probe
                    continue
                if isinstance(nxt, Prog):
                    rest.absorb(
                        collect_program(
                            nxt, probe_pool=probe_pool, max_nodes=max_nodes
                        )
                    )
            col.merge_sequential(rest)
        per_thread[tid] = col
    descendants = _thread_tree(threads)
    out = CollectedProgram()
    tids = sorted(per_thread)
    for i, t in enumerate(tids):
        for u in tids[i + 1 :]:
            if u in descendants.get(t, ()) or t in descendants.get(u, ()):
                continue  # forker vs its own child: sequential via join
            for a in per_thread[t].instances:
                for b in per_thread[u].instances:
                    out.par_pairs.add(frozenset((a, b)))
    for col in per_thread.values():
        out.absorb(col)
    return out


# -- transition correspondence and the diamond probe ------------------------------------


class _Budget:
    """Mutable probe-operation allowance shared across one analysis."""

    __slots__ = ("left",)

    def __init__(self, n: int) -> None:
        self.left = n

    def spend(self, n: int = 1) -> bool:
        self.left -= n
        return self.left >= 0


def corresponding_moves(
    action: Action,
    args: tuple,
    states: Sequence[State],
    transitions: Sequence[Transition],
    budget: _Budget | None = None,
) -> frozenset | None:
    """The ``(transition index, param)`` moves that replay every non-idle
    step of ``action(*args)`` over ``states``; ``None`` when some observed
    step matches no declared transition (then nothing can be proven)."""
    budget = budget if budget is not None else _Budget(PROBE_BUDGET)
    moves: set = set()
    for s in states:
        if not _safe(action, s, args):
            continue
        try:
            __, post = action.step(s, *args)
        except Exception:  # noqa: BLE001 - crashing step: unknown effect
            return None
        if post == s:
            continue
        matched = False
        for ti, t in enumerate(transitions):
            try:
                for param, succ in t.successors(s):
                    if not budget.spend():
                        return None  # out of probe budget: fail closed
                    if succ == post:
                        try:
                            hash(param)
                        except TypeError:
                            return None
                        moves.add((ti, param))
                        matched = True
                        break
            except Exception:  # noqa: BLE001 - transition probing failed
                return None
            if matched:
                break
        if not matched:
            return None
    return frozenset(moves)


def _diamond_commutes(
    obs_action: Action,
    obs_args: tuple,
    mover_conc: Concurroid,
    mover_transitions: Sequence[Transition],
    mover_moves: frozenset,
    states: Sequence[State],
    budget: _Budget | None = None,
) -> bool:
    """Does every mover move (seen as an environment step) commute with the
    observer action on every modelled state?  Guard preserved both ways,
    value unchanged, diamond closes to the same state."""
    budget = budget if budget is not None else _Budget(PROBE_BUDGET)
    for s in states:
        try:
            flipped = mover_conc._transpose_own(s)
        except Exception:  # noqa: BLE001 - untransposable state
            return False
        for ti, param in mover_moves:
            if not budget.spend():
                return False  # out of probe budget: fail closed
            t = mover_transitions[ti]
            try:
                if not t.requires(flipped, param):
                    continue
                s2 = mover_conc._transpose_own(t.effect(flipped, param))
            except Exception:  # noqa: BLE001 - move not replayable here
                return False
            if s2 == s:
                continue
            safe1 = _safe(obs_action, s, obs_args)
            safe2 = _safe(obs_action, s2, obs_args)
            if safe1 != safe2:
                return False  # the mover toggles the observer's guard
            if not safe1:
                continue
            try:
                v1, p1 = obs_action.step(s, *obs_args)
                v2, p2 = obs_action.step(s2, *obs_args)
            except Exception:  # noqa: BLE001
                return False
            if v1 != v2:
                return False  # the mover changes the observer's result
            try:
                p1f = mover_conc._transpose_own(p1)
                if not t.requires(p1f, param):
                    return False  # the observer disables the mover
                p1m = mover_conc._transpose_own(t.effect(p1f, param))
            except Exception:  # noqa: BLE001
                return False
            if p1m != p2:
                return False  # the diamond does not close
    return True


def footprints_conflict(fa: Footprint, fb: Footprint) -> bool:
    """Cell-level conflict: one's writes meet the other's reads or writes.
    Widening either footprint can only turn False into True (the mutation
    test in tests/test_interference.py pins this direction)."""
    return bool(fa.writes & fb.touched) or bool(fb.writes & fa.touched)


# -- the state family -------------------------------------------------------------------


def state_family(
    world: Any,
    initials: Iterable[State],
    *,
    cap: int = FAMILY_CAP,
) -> frozenset | None:
    """Closure of ``initials`` under every concurroid's own transitions,
    environment moves and fork/join realignments (PCM splits moved between
    ``self`` and ``other``).  ``None`` when the closure exceeds ``cap`` —
    the caller must then treat every view as unmodelled (POR disabled)."""
    seen: set = set(initials)
    frontier = list(seen)
    concs = list(world.concurroids)
    transitions = {id(c): tuple(c.transitions()) for c in concs}

    def push(s: State) -> None:
        if s not in seen:
            seen.add(s)
            frontier.append(s)

    while frontier:
        if len(seen) > cap:
            return None
        s = frontier.pop()
        for conc in concs:
            for t in transitions[id(conc)]:
                try:
                    for __, succ in t.successors(s):
                        push(succ)
                except Exception:  # noqa: BLE001 - transition rejects state
                    continue
            try:
                for succ in conc.env_moves(s):
                    push(succ)
            except Exception:  # noqa: BLE001 - env probing rejects state
                continue
            for label, pcm in conc.pcms().items():
                if label not in s:
                    continue
                comp = s[label]
                try:
                    for kept, gone in pcm.splits(comp.self_):
                        push(
                            s.set(
                                label,
                                comp.with_self(kept).with_other(
                                    pcm.join(comp.other, gone)
                                ),
                            )
                        )
                    for kept, gone in pcm.splits(comp.other):
                        push(
                            s.set(
                                label,
                                comp.with_other(kept).with_self(
                                    pcm.join(comp.self_, gone)
                                ),
                            )
                        )
                except Exception:  # noqa: BLE001 - unsplittable component
                    continue
    return frozenset(seen)


# -- the oracle -------------------------------------------------------------------------


@dataclass(frozen=True)
class Edge:
    """One may-not-commute pair of the interference graph."""

    a: InstanceKey
    b: InstanceKey
    a_name: str
    b_name: str
    reason: str

    def to_dict(self) -> dict:
        return {"a": self.a_name, "b": self.b_name, "reason": self.reason}


@dataclass
class ProgramInterference:
    """Interference graph + independence oracle for one program.

    ``pairs`` maps every statically-parallel pair to ``None`` (proven
    commuting) or a reason string (may-not-commute).  ``eligible`` holds
    the instance keys that are independent of *every* statically-parallel
    partner — the candidates for singleton ample sets.
    """

    collected: CollectedProgram
    footprints: dict  # key -> Footprint | None
    pairs: dict  # frozenset({a, b}) -> str | None
    eligible: frozenset
    family: frozenset | None  # None: closure truncated, POR disabled
    names: dict = field(default_factory=dict)  # key -> display name

    # -- explore()-facing API ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.family is not None and bool(self.eligible)

    def knows(self, key: InstanceKey) -> bool:
        return key in self.collected.instances and key not in self.collected.unresolved

    def action_of(self, key: InstanceKey) -> ActCall:
        return self.collected.instances[key]

    def key_eligible(self, key: InstanceKey) -> bool:
        return key in self.eligible

    def view_in_family(self, view: State) -> bool:
        return self.family is not None and view in self.family

    # -- reporting --------------------------------------------------------------------

    def edges(self) -> list:
        out = []
        for pair, reason in sorted(
            self.pairs.items(), key=lambda kv: sorted(map(repr, kv[0]))
        ):
            if reason is None:
                continue
            keys = sorted(pair, key=repr)
            a, b = (keys[0], keys[-1]) if len(keys) > 1 else (keys[0], keys[0])
            out.append(
                Edge(a, b, self.names.get(a, "?"), self.names.get(b, "?"), reason)
            )
        return out

    def independent_pairs(self) -> int:
        return sum(1 for reason in self.pairs.values() if reason is None)

    def summary(self) -> dict:
        return {
            "instances": len(self.collected.instances),
            "parallel_pairs": len(self.pairs),
            "independent_pairs": self.independent_pairs(),
            "edges": len(self.pairs) - self.independent_pairs(),
            "eligible": sorted(self.names.get(k, "?") for k in self.eligible),
            "family_states": len(self.family) if self.family is not None else None,
            "complete": self.collected.complete,
            "por_enabled": self.enabled,
        }


def _display_name(node: ActCall) -> str:
    name = getattr(node.action, "name", type(node.action).__name__)
    return f"{name}{node.args!r}" if node.args else str(name)


def _concolic_collect(
    collect: Callable[[Iterable[Any]], CollectedProgram],
    states: Sequence[State],
    *,
    rounds: int = COLLECT_ROUNDS,
) -> tuple[CollectedProgram, dict]:
    """Iterate collection <-> footprint probing until no new instances
    appear: observed return values become continuation probes."""
    pool: list = list(PROBE_VALUES)
    pooled: set = set()
    footprints: dict = {}
    collected = collect(pool)
    for __ in range(rounds):
        if len(collected.instances) > MAX_INSTANCES:
            collected.complete = False  # value blow-up: no eligibility
            break
        fresh = False
        for key, node in list(collected.instances.items()):
            if key in footprints:
                continue
            fresh = True
            if key in collected.unresolved:
                footprints[key] = None
                continue
            fp, observed = action_footprint(node.action, node.args, states)
            footprints[key] = fp if fp.runs else None
            for value in observed:
                if value not in pooled:
                    pooled.add(value)
                    pool.append(value)
        if not fresh:
            break
        collected = collect(pool)
    for key in collected.instances:
        footprints.setdefault(key, None)
    return collected, footprints


def _analyze(
    world: Any,
    initials: Sequence[State],
    collect: Callable[[Iterable[Any]], CollectedProgram],
    *,
    family_cap: int = FAMILY_CAP,
) -> ProgramInterference:
    family = state_family(world, initials, cap=family_cap)
    probe_states: Sequence[State] = (
        sorted(family, key=repr) if family is not None else list(initials)
    )
    collected, footprints = _concolic_collect(collect, probe_states)
    names = {k: _display_name(n) for k, n in collected.instances.items()}

    transitions = {id(c): tuple(c.transitions()) for c in world.concurroids}
    budget = _Budget(PROBE_BUDGET)
    corr_cache: dict = {}

    def corr(key: InstanceKey) -> frozenset | None:
        if key not in corr_cache:
            node = collected.instances[key]
            trans = transitions.get(id(node.action.concurroid))
            if trans is None:  # concurroid not installed in this world
                corr_cache[key] = None
            else:
                corr_cache[key] = corresponding_moves(
                    node.action, node.args, probe_states, trans, budget
                )
        return corr_cache[key]

    def independent(a: InstanceKey, b: InstanceKey) -> str | None:
        fa, fb = footprints.get(a), footprints.get(b)
        if fa is None or fb is None:
            return "unknown-footprint"
        if footprints_conflict(fa, fb):
            return "heap-overlap"
        ca, cb = corr(a), corr(b)
        if ca is None or cb is None:
            return "no-transition-correspondence"
        na, nb = collected.instances[a], collected.instances[b]
        if ca and not _diamond_commutes(
            nb.action,
            nb.args,
            na.action.concurroid,
            transitions[id(na.action.concurroid)],
            ca,
            probe_states,
            budget,
        ):
            return "diamond-failure"
        if cb and not _diamond_commutes(
            na.action,
            na.args,
            nb.action.concurroid,
            transitions[id(nb.action.concurroid)],
            cb,
            probe_states,
            budget,
        ):
            return "diamond-failure"
        return None

    pairs: dict = {}
    for pair in collected.par_pairs:
        keys = sorted(pair, key=repr)
        a, b = (keys[0], keys[-1]) if len(keys) > 1 else (keys[0], keys[0])
        pairs[pair] = independent(a, b)

    eligible = set()
    if collected.complete and family is not None:
        for key in collected.instances:
            if key in collected.unresolved:
                continue
            partners = [p for p in pairs if key in p]
            if all(pairs[p] is None for p in partners):
                eligible.add(key)
    return ProgramInterference(
        collected=collected,
        footprints=footprints,
        pairs=pairs,
        eligible=frozenset(eligible),
        family=family,
        names=names,
    )


def analyze_program(
    world: Any,
    init: State,
    prog: Prog,
    *,
    family_cap: int = FAMILY_CAP,
) -> ProgramInterference:
    """Interference analysis of one scenario: program tree + initial state."""
    return _analyze(
        world,
        [init],
        lambda pool: collect_program(prog, probe_pool=pool),
        family_cap=family_cap,
    )


def analyze_config(config: Any, *, family_cap: int = FAMILY_CAP) -> ProgramInterference:
    """Interference analysis of a live configuration (``explore(por=True)``)."""
    initials = []
    for tid in sorted(config.threads):
        try:
            initials.append(config.view_for(tid))
        except Exception:  # noqa: BLE001 - unviewable thread: skip seed
            continue
    return _analyze(
        config.world,
        initials,
        lambda pool: collect_config(config, probe_pool=pool),
        family_cap=family_cap,
    )

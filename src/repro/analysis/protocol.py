"""Protocol rules (FCSL001-006): static checks on concurroid definitions.

These rules inspect a concurroid against a *modelled* state family —
usually a bounded protocol closure — without running the metatheory
checker or the model checker.  ``exhaustive`` says whether the family is
the full reachable set; reachability-dependent rules (dead transitions,
inert entangled parts) only fire on exhaustive families, so a truncated
closure can never produce a false positive.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.concurroid import Concurroid, Transition
from ..core.entangle import Entangled
from ..core.state import State
from .diagnostics import Diagnostic, diag, loc_of


def _transition_loc(t: Transition):
    return loc_of(t.requires) or loc_of(t.effect)


def lint_concurroid(
    conc: Concurroid,
    states: Iterable[State],
    *,
    exhaustive: bool = True,
    subject: str = "",
) -> list[Diagnostic]:
    """Run every protocol rule on one concurroid over one state family."""
    states = list(states)
    out: list[Diagnostic] = []
    transitions: Sequence[Transition] = tuple(conc.transitions())

    # FCSL003/FCSL004 — pure name hygiene, no states needed.
    seen: dict[str, Transition] = {}
    for t in transitions:
        base = t.name.rsplit(".", 1)[-1]
        if base == "idle":
            out.append(
                diag(
                    "FCSL003",
                    f"transition {t.name!r} shadows the implicit idle transition",
                    subject=subject,
                    obj=t.name,
                    loc=_transition_loc(t),
                )
            )
        if t.name in seen:
            out.append(
                diag(
                    "FCSL004",
                    f"transition name {t.name!r} declared more than once",
                    subject=subject,
                    obj=t.name,
                    loc=_transition_loc(t),
                )
            )
        else:
            seen[t.name] = t

    if not states:
        return out

    coherent = [s for s in states if _safe_coherent(conc, s)]

    # FCSL001 — the protocol admits no modelled state at all.
    if not coherent:
        out.append(
            diag(
                "FCSL001",
                f"coherence rejects all {len(states)} modelled state(s)",
                subject=subject,
                obj=type(conc).__name__,
                loc=loc_of(conc.coherent),
            )
        )
        return out  # everything below would be vacuous noise

    # FCSL005 — a label the concurroid owns but no modelled state carries.
    for lbl in conc.labels:
        if not any(lbl in s.labels() for s in states):
            out.append(
                diag(
                    "FCSL005",
                    f"owned label {lbl!r} appears in no modelled state",
                    subject=subject,
                    obj=lbl,
                    loc=loc_of(conc),
                )
            )

    if not exhaustive:
        return out

    # FCSL002 — transitions enabled nowhere in the reachable family.
    for t in transitions:
        if not any(_enabled_somewhere(t, s) for s in coherent):
            out.append(
                diag(
                    "FCSL002",
                    f"transition {t.name!r} is enabled in no reachable state",
                    subject=subject,
                    obj=t.name,
                    loc=_transition_loc(t),
                )
            )

    # FCSL006 — an entangled component no transition ever changes.
    if isinstance(conc, Entangled):
        for part in conc.parts:
            part_labels = tuple(part.labels)
            if _part_inert(transitions, coherent, part_labels):
                out.append(
                    diag(
                        "FCSL006",
                        f"entangled part {type(part).__name__} "
                        f"(labels {part_labels!r}) is never changed by any transition",
                        subject=subject,
                        obj=",".join(part_labels),
                        loc=loc_of(part),
                    )
                )

    return out


def _safe_coherent(conc: Concurroid, state: State) -> bool:
    try:
        return bool(conc.coherent(state))
    except Exception:  # noqa: BLE001 - a crashing predicate rejects the state
        return False


_NOTHING = object()


def _enabled_somewhere(t: Transition, state: State) -> bool:
    try:
        # `None` is a legitimate parameter (the default family), so probe
        # with a sentinel rather than truthiness.
        return next(iter(t.enabled_params(state)), _NOTHING) is not _NOTHING
    except Exception:  # noqa: BLE001 - a crashing guard enables nothing
        return False


def _part_inert(
    transitions: Sequence[Transition],
    states: Sequence[State],
    part_labels: tuple[str, ...],
) -> bool:
    """True when no transition successor differs from its source at any of
    ``part_labels`` across the whole family."""
    for s in states:
        for t in transitions:
            try:
                successors = list(t.successors(s))
            except Exception:  # noqa: BLE001
                continue
            for __, succ in successors:
                for lbl in part_labels:
                    if lbl in s.labels() and s[lbl] != succ[lbl]:
                        return False
    return True

"""Spec and assertion rules (FCSL020-022).

Two kinds of static evidence about specifications:

* **Self-framedness** (FCSL020, and the verifier pre-pass): a predicate
  is *observably self-framed* over a state family when its value depends
  only on the ``self`` projection of the state — it is constant on every
  class of states sharing all ``self`` components.  §7's lemma-overloading
  automation (:mod:`repro.core.autostab`) discharges such assertions with
  zero exploration, so an ``opaque``-shaped assertion that the probe finds
  self-framed is being brute-forced needlessly.

* **Bytecode inspection** (FCSL021/022): a ``Spec``'s postcondition binds
  the pre-state snapshot (its third parameter, the logical variable of
  the paper's binary postconditions); if the compiled body never loads
  it, the logical variable is bound but unread.  Dually a precondition
  that rejects every modelled state makes the whole triple vacuous.
"""

from __future__ import annotations

import dis
from types import CodeType
from typing import Callable, Iterable, Sequence

from ..core.autostab import AutoAssertion
from ..core.spec import Spec
from ..core.state import State
from .diagnostics import Diagnostic, diag, loc_of

# -- the self-framedness probe (shared with the pre-pass) -----------------------------------


def self_projection(state: State) -> tuple:
    """The ``self`` components of every label, as a hashable key."""
    return tuple((lbl, state.self_of(lbl)) for lbl in sorted(state.labels()))


def probe_self_framed(
    predicate: Callable[[State], bool],
    states: Iterable[State],
) -> tuple[bool, int]:
    """Is ``predicate`` constant on self-projection classes of ``states``?

    Returns ``(framed, evidence)`` where ``evidence`` counts the states
    that shared a class with an earlier state (0 evidence = vacuously
    framed: every class was a singleton).  Any exception from the
    predicate makes the probe fail closed.
    """
    classes: dict[tuple, bool] = {}
    evidence = 0
    for s in states:
        try:
            key = self_projection(s)
            value = bool(predicate(s))
        except Exception:  # noqa: BLE001 - fail closed
            return False, 0
        if key in classes:
            evidence += 1
            if classes[key] != value:
                return False, evidence
        else:
            classes[key] = value
    return True, evidence


def lint_auto_assertions(
    assertions: Sequence[AutoAssertion],
    states: Iterable[State],
    *,
    subject: str = "",
) -> list[Diagnostic]:
    """FCSL020 — opaque assertions the probe finds self-framed."""
    states = list(states)
    out: list[Diagnostic] = []
    for assertion in assertions:
        if assertion.shape != "opaque":
            continue
        framed, evidence = probe_self_framed(assertion.predicate, states)
        if framed and evidence > 0:
            out.append(
                diag(
                    "FCSL020",
                    f"assertion {assertion.name!r} is observably self-framed "
                    f"({evidence} corroborating state(s)) but shaped 'opaque'; "
                    "declare it with self_framed() for free stability",
                    subject=subject,
                    obj=assertion.name,
                    loc=loc_of(assertion.predicate),
                )
            )
    return out


# -- bytecode-level spec rules ---------------------------------------------------------------

_LOADS = frozenset(
    {"LOAD_FAST", "LOAD_FAST_CHECK", "LOAD_FAST_AND_CLEAR", "LOAD_DEREF", "LOAD_CLASSDEREF"}
)


def _loads_name(code: CodeType, name: str) -> bool:
    for ins in dis.get_instructions(code):
        if ins.opname in _LOADS and ins.argval == name:
            return True
    for const in code.co_consts:  # closures defined inside the body
        if isinstance(const, CodeType) and _loads_name(const, name):
            return True
    return False


def param_is_read(fn: Callable, index: int) -> bool:
    """Does ``fn`` ever read its ``index``-th positional parameter?

    Conservative: anything not introspectable (builtins, partials,
    ``*args`` signatures) counts as read.
    """
    code = getattr(fn, "__code__", None)
    if code is None or code.co_argcount <= index:
        return True
    return _loads_name(code, code.co_varnames[index])


def lint_spec(
    spec: Spec,
    states: Iterable[State] = (),
    *,
    subject: str = "",
) -> list[Diagnostic]:
    """FCSL021/FCSL022 on one spec (states optional, for FCSL022)."""
    out: list[Diagnostic] = []

    # FCSL021 — post(r, post_state, pre_state) never reads pre_state.
    if not param_is_read(spec.post, 2):
        out.append(
            diag(
                "FCSL021",
                f"spec {spec.name!r}: the postcondition binds the pre-state "
                "snapshot but never reads it",
                subject=subject,
                obj=spec.name,
                loc=loc_of(spec.post),
            )
        )

    # FCSL022 — the precondition holds in no modelled state.
    states = list(states)
    if states and not any(_safe_pre(spec, s) for s in states):
        out.append(
            diag(
                "FCSL022",
                f"spec {spec.name!r}: the precondition rejects all "
                f"{len(states)} modelled state(s); the triple is vacuous",
                subject=subject,
                obj=spec.name,
                loc=loc_of(spec.pre),
            )
        )
    return out


def _safe_pre(spec: Spec, state: State) -> bool:
    try:
        return bool(spec.pre(state))
    except Exception:  # noqa: BLE001
        return False

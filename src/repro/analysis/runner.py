"""The registry sweep: lint every case study of Table 1.

``lint_target`` runs every rule module over one :class:`LintTarget`;
``lint_registry`` sweeps all programs of
:mod:`repro.structures.registry` (the sweep fails loudly if a registry
row has no lint target, so adding a 12th case study forces a lint
story for it too).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .actions import lint_action
from .diagnostics import Diagnostic
from .pcm_rules import lint_pcm
from .programs import lint_prog
from .protocol import lint_concurroid
from .race import race_target
from .specs import lint_auto_assertions, lint_spec
from .targets import TARGET_BUILDERS, LintTarget, target_for


def lint_target(target: LintTarget) -> list[Diagnostic]:
    """Every rule module over one target, concatenated."""
    out: list[Diagnostic] = []
    for conc in target.concurroids:
        out.extend(
            lint_concurroid(
                conc,
                target.states,
                exhaustive=target.exhaustive,
                subject=target.program,
            )
        )
    for action, args_family in target.actions:
        out.extend(
            lint_action(action, target.states, args_family, subject=target.program)
        )
    for spec, spec_states in target.specs:
        out.extend(lint_spec(spec, spec_states, subject=target.program))
    out.extend(
        lint_auto_assertions(target.assertions, target.states, subject=target.program)
    )
    for prog, name, ambient in target.programs:
        out.extend(
            lint_prog(
                prog,
                ambient_labels=ambient,
                subject=target.program,
                name=name,
            )
        )
    for pcm in target.pcms:
        out.extend(lint_pcm(pcm, subject=target.program))
    out.extend(race_target(target))
    return out


def missing_targets() -> list[str]:
    """Registry programs without a lint target (should always be empty)."""
    from ..structures.registry import registry_programs

    return [
        info.name
        for info in registry_programs()
        if info.name not in TARGET_BUILDERS
    ]


def lint_registry(
    names: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint the selected (default: all) registry case studies."""
    from ..structures.registry import all_programs

    wanted: Sequence[str] | None = tuple(names) if names is not None else None
    missing = missing_targets()
    if missing:
        raise KeyError(f"registry programs without lint targets: {missing}")
    if wanted is not None:
        known = {info.name for info in all_programs()}
        unknown = sorted(set(wanted) - known)
        if unknown:
            raise KeyError(
                f"unknown registry program(s) {unknown}; known: {sorted(known)}"
            )
    out: list[Diagnostic] = []
    for info in all_programs():
        if wanted is not None and info.name not in wanted:
            continue
        out.extend(lint_target(target_for(info.name)))
    return out

"""fcsl-race: race-shaped defect rules (FCSL045-048) over lint targets.

The rules consume the same facts the POR oracle does — observed
footprints (:func:`repro.analysis.interference.action_footprint`),
concolically collected program instances with their sequential order,
and environment moves of the declared concurroids — and flag patterns
that are races *in the protocol*, before any schedule is enumerated:

* FCSL045 — **non-atomic read-modify-write**: a program reads a cell and
  later writes it in a *different* atomic action, the writer's guard
  does not re-read the cell (no CAS-style recheck), and the protocol
  lets the environment change the cell at some state where the writer
  is enabled.  Lock-protected RMWs are exempt automatically: while the
  writer is enabled (lock held) no environment move can touch the cell.
* FCSL046 — **stale read without recheck**: a read of an
  environment-mutable cell is followed by writes, and no downstream
  action's guard ever re-reads the cell.  Reported as a warning (the
  continuation may re-validate the value in ways a guard probe cannot
  see); suppressed whenever the program walk was incomplete or any
  instance has statically unresolvable arguments.
* FCSL047 — **unstable other-sensitive assertion**: a declared
  :class:`~repro.core.autostab.AutoAssertion` holds at some modelled
  state but an environment move falsifies it — the assertion is not
  closed under the declared transitions, so it cannot be ascribed.
* FCSL048 — **foreign footprint**: an action's observed heap footprint
  contains cells attributed to labels outside its own concurroid.

Every rule errs toward silence on anything unprobeable: the acceptance
bar is zero false positives on the clean registry.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.concurroid import Concurroid
from ..core.state import State
from .diagnostics import Diagnostic, diag, loc_of
from .interference import (
    UNATTRIBUTED,
    _concolic_collect,
    _safe,
    collect_program,
)
from .targets import LintTarget, TARGET_BUILDERS, target_for

#: Cap on states sampled per target by the race rules (diagnostics only
#: lose recall from sampling, never precision).
RACE_STATE_CAP = 300

#: Cap on environment moves probed per (state, concurroid).
RACE_ENV_CAP = 64


def _cell_values(state: State, label: str, p) -> tuple:
    """Every value held at ``p`` inside ``label``'s heap components (the
    projections can legitimately disagree only transiently, so the tuple
    is the honest observation)."""
    from ..heap import Heap

    if label not in state:
        return ()
    comp = state[label]
    out = []
    for part in (comp.self_, comp.joint, comp.other):
        if isinstance(part, Heap) and part.is_valid and p in part:
            out.append(part[p])
    return tuple(out)


def _env_changes_cell(concs: Sequence[Concurroid], s: State, cell) -> bool:
    """Can one environment step change the observable value at ``cell``?"""
    label, p = cell
    before = _cell_values(s, label, p)
    for conc in concs:
        try:
            for i, s2 in enumerate(conc.env_moves(s)):
                if i >= RACE_ENV_CAP:
                    break
                if _cell_values(s2, label, p) != before:
                    return True
        except Exception:  # noqa: BLE001 - unprobeable env: assume silent
            continue
    return False


def _target_concurroids(target: LintTarget, collected_actions: Iterable) -> list:
    concs: dict[int, Concurroid] = {id(c): c for c in target.concurroids}
    for action in collected_actions:
        conc = getattr(action, "concurroid", None)
        if conc is not None:
            concs.setdefault(id(conc), conc)
    return list(concs.values())


# -- FCSL045 / FCSL046: program-order rules ----------------------------------------------


def _program_rules(target: LintTarget, states: Sequence[State]) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for prog, name, __ in target.programs:
        collected, footprints = _concolic_collect(
            lambda pool, prog=prog: collect_program(prog, probe_pool=pool),
            states,
        )
        concs = _target_concurroids(
            target, (n.action for n in collected.instances.values())
        )
        if not concs:
            continue
        fired: set = set()
        for a, b in sorted(collected.seq_pairs, key=repr):
            fa, fb = footprints.get(a), footprints.get(b)
            if fa is None or fb is None:
                continue
            na, nb = collected.instances[a], collected.instances[b]
            for cell in sorted(fa.reads & fb.writes, key=repr):
                if cell[0] == UNATTRIBUTED or cell in fb.guard_reads:
                    continue  # unattributable, or CAS-style recheck
                mark = (name, na.action.name, nb.action.name, cell)
                if mark in fired:
                    continue
                if any(
                    _safe(nb.action, s, nb.args) and _env_changes_cell(concs, s, cell)
                    for s in states
                ):
                    fired.add(mark)
                    out.append(
                        diag(
                            "FCSL045",
                            f"{name}: {na.action.name!r} reads {cell[1]!r} and "
                            f"{nb.action.name!r} later writes it without its guard "
                            "re-reading the cell, while the environment can change "
                            "it in between (non-atomic read-modify-write)",
                            subject=target.program,
                            obj=nb.action.name,
                            loc=loc_of(type(nb.action).step),
                        )
                    )
        if not collected.complete or collected.unresolved:
            continue  # FCSL046 needs the full downstream picture
        for a in sorted(collected.instances, key=repr):
            fa = footprints.get(a)
            if fa is None:
                continue
            na = collected.instances[a]
            downstream = [
                b for (x, b) in collected.seq_pairs if x == a and footprints.get(b)
            ]
            writers = [b for b in downstream if footprints[b].writes]
            if not writers:
                continue
            for cell in sorted(fa.reads - fa.writes, key=repr):
                if cell[0] == UNATTRIBUTED:
                    continue
                if any(cell in footprints[b].guard_reads for b in downstream):
                    continue  # some downstream guard rechecks the cell
                mark = (name, na.action.name, cell)
                if mark in fired:
                    continue
                if any(
                    _safe(collected.instances[b].action, s, collected.instances[b].args)
                    and _env_changes_cell(concs, s, cell)
                    for b in writers
                    for s in states
                ):
                    fired.add(mark)
                    out.append(
                        diag(
                            "FCSL046",
                            f"{name}: the value {na.action.name!r} reads from "
                            f"{cell[1]!r} can go stale (the environment may change "
                            "the cell before the later writes run) and no "
                            "downstream guard re-reads it",
                            subject=target.program,
                            obj=na.action.name,
                            loc=loc_of(type(na.action).step),
                        )
                    )
    return out


# -- FCSL047: assertion stability under declared transitions ------------------------------


def _assertion_rules(target: LintTarget, states: Sequence[State]) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    concs = list(target.concurroids)
    if not concs:
        return out
    for assertion in target.assertions:
        witness = None
        for s in states:
            try:
                if not assertion.predicate(s):
                    continue
            except Exception:  # noqa: BLE001 - unprobeable assertion
                break
            for conc in concs:
                try:
                    for i, s2 in enumerate(conc.env_moves(s)):
                        if i >= RACE_ENV_CAP:
                            break
                        if not assertion.predicate(s2):
                            witness = (s, s2)
                            break
                except Exception:  # noqa: BLE001
                    continue
                if witness:
                    break
            if witness:
                break
        if witness:
            out.append(
                diag(
                    "FCSL047",
                    f"assertion {assertion.name!r} holds at a modelled state but "
                    "an environment move falsifies it — not closed under the "
                    "declared transitions, so it cannot be ascribed",
                    subject=target.program,
                    obj=assertion.name,
                    loc=loc_of(assertion.predicate),
                )
            )
    return out


# -- FCSL048: footprint containment -------------------------------------------------------


def _footprint_rules(target: LintTarget, states: Sequence[State]) -> list[Diagnostic]:
    from .interference import action_footprint

    out: list[Diagnostic] = []
    for action, args_family in target.actions:
        own = frozenset(action.concurroid.labels)
        foreign: set = set()
        for args in args_family:
            fp, __ = action_footprint(action, tuple(args), states)
            foreign |= {
                cell
                for cell in fp.touched | fp.guard_reads
                if cell[0] != UNATTRIBUTED and cell[0] not in own
            }
        if foreign:
            cells = ", ".join(sorted(f"{lbl}:{p!r}" for lbl, p in foreign))
            out.append(
                diag(
                    "FCSL048",
                    f"action {action.name!r} touches heap cells of foreign "
                    f"label(s): {cells} (own labels: {sorted(own)!r})",
                    subject=target.program,
                    obj=action.name,
                    loc=loc_of(type(action).step),
                )
            )
    return out


# -- entry points -------------------------------------------------------------------------


def race_target(target: LintTarget) -> list[Diagnostic]:
    """Every race rule over one lint target, concatenated."""
    states = tuple(target.states[:RACE_STATE_CAP])
    if not states:
        return []
    out = _program_rules(target, states)
    out.extend(_assertion_rules(target, states))
    out.extend(_footprint_rules(target, states))
    return out


def race_registry(names: Iterable[str] | None = None) -> list[Diagnostic]:
    """Race-rule sweep over the selected (default: all) registry programs."""
    from ..structures.registry import all_programs

    wanted = tuple(names) if names is not None else None
    if wanted is not None:
        known = {info.name for info in all_programs()}
        unknown = sorted(set(wanted) - known)
        if unknown:
            raise KeyError(
                f"unknown registry program(s) {unknown}; known: {sorted(known)}"
            )
    missing = [
        info.name for info in all_programs() if info.name not in TARGET_BUILDERS
    ]
    if missing:
        raise KeyError(f"registry programs without lint targets: {missing}")
    out: list[Diagnostic] = []
    for info in all_programs():
        if wanted is not None and info.name not in wanted:
            continue
        out.extend(race_target(target_for(info.name)))
    return out

"""Static lock-order derivation and deadlock diagnostics (fcsl-live).

The race rules (:mod:`repro.analysis.race`) ask "can two accesses
collide?".  This module asks the *liveness* questions: which atomic
actions behave like lock acquisitions, in what order does each program
nest them, and does the union of those orders admit a deadlock?

Nothing here relies on actions being literal locks.  The analysis
derives lock-like behaviour observationally, from the same state-family
sampling the linter and fcsl-race use:

1. **Self-guarded instances** (:func:`_self_guarded`): an instance ``Y``
   is guarded by label ``L`` when two modelled states that differ *only*
   in ``L``'s self component disagree about ``safe(Y)`` — ``Y``'s guard
   reads a capability that lives in the subjective state (for a real
   lock: "I hold it").
2. **Acquire / release classification** (:func:`_classify_program`): an
   instance ``X`` *acquires* when running it at some modelled state
   flips a guarded instance from unsafe to safe (it confers the
   capability); it *releases* when it flips one from safe to unsafe.
   The set of instances an acquire flips — its *flip-set* — is the
   lock's observational identity: acquires and releases whose flip-sets
   overlap act on the same lock, which keeps two mutexes that happen to
   share a label (the flat combiner's slots vs its combiner lock)
   separate, and unifies aliases of one lock across programs.
3. **The lock-order graph** (:class:`LockOrderGraph`): edge ``A -> B``
   when some program acquires ``B`` sequentially after ``A`` with no
   intervening release of ``A`` ("A held while acquiring B").  A cycle
   is deadlock potential (FCSL050); the remaining FCSL05x rules read
   the same facts (see the diagnostics table).

Every rule errs toward silence on anything unprobeable — incomplete
collection, unresolved arguments, missing releases in the modelled
fragment — mirroring fcsl-race's zero-false-positive bar on the clean
registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.prog import ActCall, Bind, Call, HideProg, Par, Prog, Ret
from ..core.state import State
from ..semantics.trees import try_kont
from .diagnostics import Diagnostic, diag, loc_of
from .interference import (
    UNATTRIBUTED,
    CollectedProgram,
    _concolic_collect,
    _display_name,
    _has_probe,
    _safe,
    action_footprint,
    collect_program,
)
from .programs import MAX_NODES, PROBE_VALUES, _call_key
from .race import _cell_values, _env_changes_cell, _target_concurroids
from .targets import LintTarget

#: Cap on states sampled per target (same rationale as RACE_STATE_CAP:
#: sampling loses recall, never precision).
LIVE_STATE_CAP = 300


def _sample_states(states: Sequence[State], cap: int = LIVE_STATE_CAP) -> tuple:
    """A deterministic stride sample across the whole family.

    A plain prefix of the repr-sorted closure can miss entire protocol
    phases (e.g. every state where *this* thread holds the lock), which
    would blind the acquire/release classifier; striding keeps the
    sample spread over all phases.
    """
    if len(states) <= cap:
        return tuple(states)
    stride = -(-len(states) // cap)  # ceil division
    return tuple(states[::stride][:cap])


# -- the graph ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LockEdge:
    """One nesting edge: ``src`` held while ``dst`` is acquired."""

    src: str
    dst: str
    #: the program whose sequential order exhibits the nesting
    program: str
    #: display names of the witnessing acquire pair
    via: str

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "program": self.program,
            "via": self.via,
        }


@dataclass(frozen=True)
class LockOrderGraph:
    """The derived lock-order graph of one lint target."""

    target: str
    #: node name -> sorted display names of its acquire instances
    acquires: Mapping[str, tuple[str, ...]]
    #: node name -> sorted display names of its release instances
    releases: Mapping[str, tuple[str, ...]]
    edges: tuple[LockEdge, ...]
    #: False when any program's instance collection was incomplete —
    #: cycle *absence* is then not established.
    complete: bool = True

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self.acquires))

    def edge_pairs(self) -> frozenset:
        return frozenset((e.src, e.dst) for e in self.edges)

    def cycles(self) -> list[tuple[str, ...]]:
        """Cyclic strongly-connected components (plus self-loops), each a
        sorted node tuple; deterministic across runs."""
        nodes = sorted(set(self.acquires) | {e.src for e in self.edges} | {e.dst for e in self.edges})
        succs: dict[str, list[str]] = {n: [] for n in nodes}
        for e in self.edges:
            succs[e.src].append(e.dst)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        out: list[tuple[str, ...]] = []

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(succs[v]):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                if len(comp) > 1 or v in succs[v]:
                    out.append(tuple(sorted(comp)))

        for n in nodes:
            if n not in index:
                strongconnect(n)
        return sorted(out)

    def with_edge(self, src: str, dst: str) -> "LockOrderGraph":
        """A strictly coarser graph with one synthetic edge added (the
        mutation hook for the cycle-rule tests, analogous to
        ``Footprint.widened``)."""
        acquires = dict(self.acquires)
        for n in (src, dst):
            acquires.setdefault(n, ())
        return LockOrderGraph(
            target=self.target,
            acquires=acquires,
            releases=dict(self.releases),
            edges=self.edges + (LockEdge(src, dst, "<mutation>", "synthetic"),),
            complete=self.complete,
        )

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "nodes": list(self.nodes),
            "acquires": {n: list(v) for n, v in sorted(self.acquires.items())},
            "releases": {n: list(v) for n, v in sorted(self.releases.items())},
            "edges": [e.to_dict() for e in self.edges],
            "cycles": [list(c) for c in self.cycles()],
            "complete": self.complete,
        }


# -- self-guarded instances and acquire/release classification ----------------------------


@dataclass
class _ProgramFacts:
    """Classification output for one program of a target."""

    name: str
    collected: CollectedProgram
    #: acquire key -> flip-set (keys of guarded instances turned safe)
    acquires: dict
    #: release key -> flip-set (keys of guarded instances turned unsafe)
    releases: dict


def _candidates(col: CollectedProgram) -> dict:
    """Instances with statically resolvable arguments, keyed."""
    return {
        key: node
        for key, node in col.instances.items()
        if key not in col.unresolved and not _has_probe(node.args)
    }


def _self_guarded(
    cands: Mapping, states: Sequence[State], safe_of
) -> dict[int, list]:
    """concurroid id -> guarded instance keys.

    An instance is *self-guarded* when transposing its concurroid's
    subjective views (``_transpose_own`` — the same probe the diamond
    check uses) flips its guard at some modelled state: the guard reads
    a capability held in ``self`` ("I own the lock" / "this cell is in
    my private heap").  Guards that read only joint or total state are
    unaffected by the transposition and stay out.
    """
    by_conc: dict[int, list] = {}
    for key, node in sorted(cands.items(), key=lambda kv: repr(kv[0])):
        by_conc.setdefault(id(node.action.concurroid), []).append(key)
    guarded: dict[int, list] = {}
    for cid, keys in by_conc.items():
        conc = cands[keys[0]].action.concurroid
        flipped: list = []
        for i, s in enumerate(states):
            if len(flipped) == len(keys):
                break
            try:
                t = conc._transpose_own(s)
            except Exception:  # noqa: BLE001 - untransposable state
                continue
            for key in keys:
                if key in flipped:
                    continue
                node = cands[key]
                if safe_of(key, i) != _safe(node.action, t, node.args):
                    flipped.append(key)
        if flipped:
            guarded[cid] = sorted(flipped, key=repr)
    return guarded


def _self_changed(s: State, post: State, labels: Iterable) -> bool:
    """Did the step change any of its own labels' subjective components?"""
    for lbl in labels:
        try:
            if post[lbl].self_ != s[lbl].self_:
                return True
        except Exception:  # noqa: BLE001 - label absent on one side
            continue
    return False


def _classify_program(
    col: CollectedProgram, states: Sequence[State], name: str
) -> _ProgramFacts:
    """Derive this program's acquire and release instances with flip-sets."""
    cands = _candidates(col)
    safe_cache: dict = {}

    def safe_of(key, i: int) -> bool:
        mark = (key, i)
        if mark not in safe_cache:
            node = cands[key]
            safe_cache[mark] = _safe(node.action, states[i], node.args)
        return safe_cache[mark]

    guarded = _self_guarded(cands, states, safe_of)
    acquires: dict = {}
    releases: dict = {}
    for key, node in sorted(cands.items(), key=lambda kv: repr(kv[0])):
        watched = guarded.get(id(node.action.concurroid), ())
        if not watched:
            continue
        own = tuple(node.action.concurroid.labels)
        for i, s in enumerate(states):
            if not safe_of(key, i):
                continue
            try:
                __, post = node.action.step(s, *node.args)
            except Exception:  # noqa: BLE001 - crashing step: no claim
                continue
            if post == s or not _self_changed(s, post, own):
                continue  # no capability moved: not lock-shaped
            for y in watched:
                ynode = cands[y]
                before = safe_of(y, i)
                after = _safe(ynode.action, post, ynode.args)
                if after and not before:
                    acquires.setdefault(key, set()).add(y)
                elif before and not after:
                    releases.setdefault(key, set()).add(y)
    return _ProgramFacts(name=name, collected=col, acquires=acquires, releases=releases)


# -- lock identity: union-find over flip-set overlap ---------------------------------------


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict = {}

    def find(self, x):
        self.parent.setdefault(x, x)
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb, key=repr)] = min(ra, rb, key=repr)


def _lock_groups(
    acq_flips: Mapping, rel_flips: Mapping
) -> tuple[dict, dict]:
    """Group acquires+releases whose flip-sets overlap.

    Returns ``(group_of_key, members_of_group)``; group ids are the
    lexicographically-least member key.
    """
    uf = _UnionFind()
    keys = sorted(set(acq_flips) | set(rel_flips), key=repr)
    for k in keys:
        uf.find(k)
    flips = {k: acq_flips.get(k, set()) | rel_flips.get(k, set()) for k in keys}
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            if flips[a] & flips[b]:
                uf.union(a, b)
    group_of = {k: uf.find(k) for k in keys}
    members: dict = {}
    for k, g in group_of.items():
        members.setdefault(g, []).append(k)
    return group_of, members


def _node_names(
    members: Mapping,
    acq_flips: Mapping,
    nodes_by_key: Mapping,
) -> dict:
    """group id -> display node name.

    The name is the group's concurroid label when it is the only lock
    under that label, else ``label/<first acquire>`` (two mutexes of one
    concurroid — e.g. a slot lock vs a combiner lock — stay distinct).
    """
    label_of: dict = {}
    for gid, keys in members.items():
        acq = [k for k in keys if k in acq_flips]
        pool = acq or list(keys)
        labels = sorted(
            {lbl for k in pool for lbl in nodes_by_key[k].action.concurroid.labels},
            key=repr,
        )
        label_of[gid] = str(labels[0]) if labels else UNATTRIBUTED
    # only acquire-bearing groups become graph nodes, so only they compete
    # for the bare label name; release-only groups never force a suffix
    counts: dict = {}
    for gid, keys in members.items():
        if any(k in acq_flips for k in keys):
            counts[label_of[gid]] = counts.get(label_of[gid], 0) + 1
    for gid in members:
        counts.setdefault(label_of[gid], 1)
    names: dict = {}
    for gid, keys in sorted(members.items(), key=lambda kv: repr(kv[0])):
        label = label_of[gid]
        if counts[label] == 1:
            names[gid] = label
        else:
            acq = sorted(
                (_display_name(nodes_by_key[k]) for k in keys if k in acq_flips)
            ) or sorted(_display_name(nodes_by_key[k]) for k in keys)
            names[gid] = f"{label}/{acq[0]}"
    return names


# -- the builder ---------------------------------------------------------------------------


def build_lock_order(target: LintTarget) -> tuple[LockOrderGraph, list[Diagnostic]]:
    """Derive the lock-order graph of one target plus the path-shaped
    FCSL051/052/053/057 diagnostics (cycle detection is separate — see
    :func:`cycle_diagnostics` — so the mutation hook exercises it)."""
    out: list[Diagnostic] = []
    states = _sample_states(target.states)
    facts: list[_ProgramFacts] = []
    complete = True
    for prog, name, __ in target.programs:
        col, __fps = _concolic_collect(
            lambda pool, prog=prog: collect_program(prog, probe_pool=pool),
            states,
        )
        if not col.complete:
            complete = False
            out.append(
                diag(
                    "FCSL057",
                    f"{name}: instance collection did not complete; lock-order "
                    "facts for this program are partial and cycle absence is "
                    "not established",
                    subject=target.program,
                    obj=name,
                )
            )
        if states:
            facts.append(_classify_program(col, states, name))

    # pooled identity: same action objects appear across a target's programs
    acq_flips: dict = {}
    rel_flips: dict = {}
    nodes_by_key: dict = {}
    for f in facts:
        for key, flips in f.acquires.items():
            acq_flips.setdefault(key, set()).update(flips)
            nodes_by_key[key] = f.collected.instances[key]
        for key, flips in f.releases.items():
            rel_flips.setdefault(key, set()).update(flips)
            nodes_by_key[key] = f.collected.instances[key]
    group_of, members = _lock_groups(acq_flips, rel_flips)
    names = _node_names(members, acq_flips, nodes_by_key)

    acquires_out: dict = {}
    releases_out: dict = {}
    for gid, keys in members.items():
        node = names[gid]
        acq = sorted({_display_name(nodes_by_key[k]) for k in keys if k in acq_flips})
        rel = sorted({_display_name(nodes_by_key[k]) for k in keys if k in rel_flips})
        if acq:
            acquires_out[node] = tuple(acq)
            releases_out[node] = tuple(rel)

    # groups that have a release anywhere in the target (FCSL051's gate)
    released_groups = {group_of[k] for k in rel_flips}

    edge_candidates: dict = {}
    for f in facts:
        seq = f.collected.seq_pairs
        prog_releases = sorted(f.releases, key=repr)

        def released_between(a, b, gid) -> bool:
            return any(
                group_of[r] == gid and (a, r) in seq and (r, b) in seq
                for r in prog_releases
            )

        for a, b in sorted(seq, key=repr):
            if a not in f.acquires or b not in f.acquires or a == b:
                continue
            ga, gb = group_of[a], group_of[b]
            if ga == gb:
                continue
            if released_between(a, b, ga):
                continue
            src, dst = names[ga], names[gb]
            via = (
                f.name,
                f"{_display_name(nodes_by_key[a])} then "
                f"{_display_name(nodes_by_key[b])}",
            )
            prev = edge_candidates.get((src, dst))
            if prev is None or via < prev:
                edge_candidates[(src, dst)] = via

        # FCSL051 / FCSL052 need the complete per-program picture
        if not f.collected.complete or f.collected.unresolved:
            continue
        for a in sorted(f.acquires, key=repr):
            ga = group_of[a]
            node = nodes_by_key[a]
            if ga in released_groups and not any(
                group_of[r] == ga and (a, r) in seq for r in prog_releases
            ):
                out.append(
                    diag(
                        "FCSL051",
                        f"{f.name}: {_display_name(node)!r} acquires lock "
                        f"{names[ga]!r} and no sequentially later action on "
                        "this path releases it",
                        subject=target.program,
                        obj=_display_name(node),
                        loc=loc_of(type(node.action).step),
                    )
                )
            if (a, a) in seq and not released_between(a, a, ga):
                out.append(
                    diag(
                        "FCSL052",
                        f"{f.name}: {_display_name(node)!r} re-acquires lock "
                        f"{names[ga]!r} it may already hold, with no release "
                        "in between — self-deadlock for a non-reentrant lock",
                        subject=target.program,
                        obj=_display_name(node),
                        loc=loc_of(type(node.action).step),
                    )
                )

    edges = tuple(
        LockEdge(src, dst, program, via)
        for (src, dst), (program, via) in sorted(edge_candidates.items())
    )
    graph = LockOrderGraph(
        target=target.program,
        acquires=acquires_out,
        releases=releases_out,
        edges=edges,
        complete=complete,
    )

    # FCSL053: parallel acquires of two locks with no nesting edge either way
    pairs = graph.edge_pairs()
    seen_unordered: set = set()
    for f in facts:
        for pair in sorted(f.collected.par_pairs, key=repr):
            keys = sorted(pair, key=repr)
            if len(keys) != 2:
                continue
            a, b = keys
            if a not in f.acquires or b not in f.acquires:
                continue
            ga, gb = group_of[a], group_of[b]
            if ga == gb:
                continue
            na, nb = sorted((names[ga], names[gb]))
            if (na, nb) in pairs or (nb, na) in pairs:
                continue
            if (na, nb) in seen_unordered:
                continue
            seen_unordered.add((na, nb))
            out.append(
                diag(
                    "FCSL053",
                    f"{f.name}: parallel branches acquire {na!r} and {nb!r} "
                    "with no nesting edge either way — deadlock-free, but no "
                    "ordering discipline is established",
                    subject=target.program,
                    obj=f"{na},{nb}",
                )
            )
    return graph, out


def cycle_diagnostics(graph: LockOrderGraph) -> list[Diagnostic]:
    """FCSL050 for every cycle of the (possibly mutated) graph."""
    out = []
    for cycle in graph.cycles():
        witnesses = sorted(
            (e for e in graph.edges if e.src in cycle and e.dst in cycle),
            key=lambda e: (e.src, e.dst),
        )
        shown = "; ".join(f"{e.src}->{e.dst} ({e.program})" for e in witnesses)
        out.append(
            diag(
                "FCSL050",
                f"lock-order cycle through {', '.join(cycle)}: {shown} — a "
                "schedule exists where each thread holds one lock of the "
                "cycle while acquiring the next",
                subject=graph.target,
                obj="->".join(cycle),
            )
        )
    return out


# -- FCSL054: non-progressing loops --------------------------------------------------------


def _knot_stalls(
    target: LintTarget, acts: Sequence[ActCall], states: Sequence[State]
) -> tuple[bool, list]:
    """Can this recursive knot's condition ever change once entered?

    Flags (returns ``True``) only when every action in the knot is
    observably pure and everything it reads — at every modelled state
    where it is enabled — is beyond the environment's reach *and* fully
    determines its behaviour.  Any unprobeable corner answers ``False``.
    """
    concs = _target_concurroids(target, (n.action for n in acts))
    if not concs or not states:
        return False, []
    cells_shown: list = []
    for node in acts:
        if _has_probe(node.args):
            return False, []
        fp, __ = action_footprint(node.action, node.args, states)
        if not fp.runs or not fp.pure:
            return False, []
        cells = sorted(fp.reads | fp.guard_reads, key=repr)
        if any(cell[0] == UNATTRIBUTED for cell in cells):
            return False, []
        live = [s for s in states if _safe(node.action, s, node.args)]
        if not live:
            return False, []
        for cell in cells:
            if any(_env_changes_cell(concs, s, cell) for s in live):
                return False, []
        # behaviour must be a function of (selfs, read cells): otherwise the
        # act reads protocol state (joint aux, other) the env *can* change
        groups: dict = {}
        for s in states:
            selfs = tuple(
                (repr(lbl), repr(s[lbl].self_))
                for lbl in sorted(s.labels(), key=repr)
            )
            vals = tuple(
                (repr(cell), repr(_cell_values(s, cell[0], cell[1])))
                for cell in cells
            )
            if _safe(node.action, s, node.args):
                try:
                    value, __post = node.action.step(s, *node.args)
                    obs = (True, repr(value))
                except Exception:  # noqa: BLE001 - unprobeable step
                    return False, []
            else:
                obs = (False, "")
            if groups.setdefault((selfs, vals), obs) != obs:
                return False, []
        cells_shown.extend(c for c in cells if c not in cells_shown)
    return True, cells_shown


def progress_rules(target: LintTarget) -> list[Diagnostic]:
    """FCSL054 over every program of the target: recursive knots that
    spin on environment-immutable cells."""
    out: list[Diagnostic] = []
    states = _sample_states(target.states)
    for prog, name, __ in target.programs:
        budget = [MAX_NODES]
        expanded: dict[tuple, tuple[dict, frozenset]] = {}
        stack: list[tuple] = []
        flagged: set[tuple] = set()

        def walk(node: Prog) -> tuple[dict, frozenset]:
            """(act nodes of the subtree by id, open recursive knots)."""
            if budget[0] <= 0:
                return {}, frozenset()
            budget[0] -= 1
            if isinstance(node, Ret):
                return {}, frozenset()
            if isinstance(node, ActCall):
                return {id(node): node}, frozenset()
            if isinstance(node, Bind):
                acts, rec = walk(node.first)
                for value in PROBE_VALUES:
                    result = try_kont(node.cont, value)
                    if isinstance(result, Prog):
                        a, r = walk(result)
                        acts.update(a)
                        rec = rec | r
                return acts, rec
            if isinstance(node, Par):
                la, lr = walk(node.left)
                ra, rr = walk(node.right)
                la.update(ra)
                return la, lr | rr
            if isinstance(node, HideProg):
                return walk(node.body)
            if isinstance(node, Call):
                try:
                    key = _call_key(node)
                except Exception:  # noqa: BLE001 - unkeyable call: silent
                    return {}, frozenset()
                if key in stack:
                    return {}, frozenset((key,))
                if key in expanded:
                    return expanded[key]
                try:
                    body = node.expand()
                except Exception:  # noqa: BLE001 - unexpandable: silent
                    return {}, frozenset()
                stack.append(key)
                try:
                    acts, rec = walk(body)
                finally:
                    stack.pop()
                if key in rec and acts and key not in flagged:
                    stalls, cells = _knot_stalls(
                        target, list(acts.values()), states
                    )
                    if stalls:
                        flagged.add(key)
                        label = getattr(node, "label", None) or "<call>"
                        shown = ", ".join(
                            f"{lbl}:{p!r}" for lbl, p in cells
                        ) or "nothing"
                        out.append(
                            diag(
                                "FCSL054",
                                f"{name}: recursive knot {label!r} spins on "
                                f"cells ({shown}) no environment transition "
                                "can change while it is enabled — entered "
                                "unsatisfied, it can never exit",
                                subject=target.program,
                                obj=label,
                                loc=loc_of(node.fn),
                            )
                        )
                result = (acts, rec - {key})
                expanded[key] = result
                return result
            return {}, frozenset()  # unknown node kind: silent

        walk(prog)
    return out


def lockorder_target(target: LintTarget) -> tuple[LockOrderGraph, list[Diagnostic]]:
    """The full static layer for one target: graph + FCSL050-054/057."""
    graph, diags = build_lock_order(target)
    diags = cycle_diagnostics(graph) + diags + progress_rules(target)
    return graph, diags

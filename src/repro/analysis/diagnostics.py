"""Diagnostic core of fcsl-lint.

Every rule in :mod:`repro.analysis` reports through this module: a
:class:`Diagnostic` carries a *stable* code (``FCSL001``..), a severity,
the object it fired on, a human message and — when the offending object
is ordinary Python (a transition's ``requires``, an action's ``step``, a
spec's ``post``) — the source location of that definition.

The code table is append-only: codes are part of the tool's interface
(``--select FCSL010``, CI baselines), so renumbering is a breaking
change.  New rules take the next free number in their block:

* ``FCSL00x`` — protocol (concurroid) rules
* ``FCSL01x`` — atomic-action rules
* ``FCSL02x`` — spec / assertion rules
* ``FCSL03x`` — program (DSL) rules
* ``FCSL04x`` — PCM algebra rules (040-044), race/interference rules (045-)
* ``FCSL05x`` — liveness / lock-order rules (fcsl-live)

Selectors (``--select``) are uniform across every tool (lint, race,
live): an exact code (``FCSL050``), a prefix (``FCSL05``), an ``x``
wildcard per digit (``FCSL05x``), or an inclusive range
(``FCSL050-059`` / ``FCSL050-FCSL059``).
"""

from __future__ import annotations

import enum
import inspect
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence


class Severity(enum.IntEnum):
    """Ordered so that ``max`` over diagnostics picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class SourceLoc:
    """Where the offending definition lives (best effort)."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


#: code -> (severity, slug, one-line description)
CODES: dict[str, tuple[Severity, str, str]] = {
    # -- protocol (concurroids) -------------------------------------------------
    "FCSL001": (
        Severity.ERROR,
        "vacuous-coherence",
        "the coherence predicate rejects every modelled state",
    ),
    "FCSL002": (
        Severity.WARNING,
        "dead-transition",
        "a declared transition is enabled in no reachable modelled state",
    ),
    "FCSL003": (
        Severity.ERROR,
        "reserved-idle-name",
        "a transition is explicitly named 'idle' (idle is implicit in correspondence)",
    ),
    "FCSL004": (
        Severity.ERROR,
        "duplicate-transition-name",
        "two transitions of one concurroid share a name",
    ),
    "FCSL005": (
        Severity.ERROR,
        "unmodelled-label",
        "an owned label appears in no modelled state",
    ),
    "FCSL006": (
        Severity.WARNING,
        "inert-entangled-part",
        "an entangled component is never changed by any transition",
    ),
    # -- atomic actions ---------------------------------------------------------
    "FCSL010": (
        Severity.ERROR,
        "footprint-escape",
        "an action's step touches heap cells outside its declared footprint",
    ),
    "FCSL011": (
        Severity.ERROR,
        "undeclared-allocation",
        "an action changes the real heap domain without declaring allocates=True",
    ),
    "FCSL012": (
        Severity.ERROR,
        "no-corresponding-transition",
        "an action's step matches neither idle nor any declared transition",
    ),
    "FCSL013": (
        Severity.WARNING,
        "dead-action",
        "an action is safe in no modelled state (never executable)",
    ),
    "FCSL014": (
        Severity.WARNING,
        "anonymous-action",
        "an action kept the default name; reports will be unreadable",
    ),
    # -- specs / assertions -----------------------------------------------------
    "FCSL020": (
        Severity.WARNING,
        "brute-forced-self-framed",
        "an opaque assertion is observably self-framed; route it through "
        "self_framed() for free stability instead of closure exploration",
    ),
    "FCSL021": (
        Severity.INFO,
        "unread-snapshot",
        "the postcondition binds the pre-state snapshot but never reads it",
    ),
    "FCSL022": (
        Severity.WARNING,
        "vacuous-precondition",
        "the precondition rejects every modelled state; the triple checks nothing",
    ),
    # -- programs (the prog DSL) ------------------------------------------------
    "FCSL030": (
        Severity.ERROR,
        "actless-loop",
        "a recursive (ffix) body performs no atomic action: guaranteed divergence",
    ),
    "FCSL031": (
        Severity.WARNING,
        "aliased-par",
        "both par branches are the same program object (shared self component)",
    ),
    "FCSL032": (
        Severity.ERROR,
        "hide-collision",
        "hide installs a label that is already present in the enclosing scope",
    ),
    "FCSL033": (
        Severity.ERROR,
        "unscoped-action",
        "a program acts on a concurroid whose labels the scope does not provide",
    ),
    # -- PCM algebra ------------------------------------------------------------
    "FCSL040": (
        Severity.ERROR,
        "non-commutative-join",
        "join is observably non-commutative on the sample",
    ),
    "FCSL041": (
        Severity.ERROR,
        "non-associative-join",
        "join is observably non-associative on the sample",
    ),
    "FCSL042": (
        Severity.ERROR,
        "broken-unit",
        "the declared unit is not a (valid) identity for join",
    ),
    "FCSL043": (
        Severity.INFO,
        "degenerate-sample",
        "the PCM sample has fewer than two elements; algebra laws are vacuous",
    ),
    "FCSL044": (
        Severity.ERROR,
        "validity-not-monotone",
        "a valid join has an invalid sub-element (validity must be monotone)",
    ),
    # -- races / interference (fcsl-race) ----------------------------------------
    "FCSL045": (
        Severity.ERROR,
        "non-atomic-rmw",
        "a joint-heap cell is read and later written non-atomically while the "
        "protocol lets the environment change it in between",
    ),
    "FCSL046": (
        Severity.WARNING,
        "stale-read-no-recheck",
        "a value read from an interference-prone cell guards later writes but "
        "no downstream action's guard ever rechecks the cell",
    ),
    "FCSL047": (
        Severity.ERROR,
        "unstable-other-assertion",
        "an assertion sensitive to other-thread state is not closed under the "
        "declared concurroid transitions",
    ),
    "FCSL048": (
        Severity.ERROR,
        "foreign-footprint",
        "an action's observed heap footprint escapes its own concurroid's "
        "labelled components",
    ),
    # -- liveness / lock order (fcsl-live) ----------------------------------------
    "FCSL050": (
        Severity.ERROR,
        "deadlock-cycle",
        "the lock-order graph has a cycle: a schedule exists where each "
        "thread holds one lock of the cycle while acquiring the next",
    ),
    "FCSL051": (
        Severity.WARNING,
        "acquire-without-release",
        "a program path acquires a lock and no sequentially later action "
        "on that path ever releases it",
    ),
    "FCSL052": (
        Severity.ERROR,
        "self-acquire-under-hold",
        "a program path re-acquires a lock it already holds; for a "
        "non-reentrant lock this is guaranteed self-deadlock",
    ),
    "FCSL053": (
        Severity.INFO,
        "unordered-lock-pair",
        "parallel branches acquire two locks with no nesting edge either "
        "way: deadlock-free, but no ordering discipline is established",
    ),
    "FCSL054": (
        Severity.WARNING,
        "non-progressing-loop",
        "a recursive loop spins on cells no environment transition can "
        "change: entered unsatisfied, it can never exit",
    ),
    "FCSL055": (
        Severity.ERROR,
        "livelock-cycle",
        "bounded exploration found a schedule revisiting a configuration "
        "family with threads stepping but none progressing",
    ),
    "FCSL056": (
        Severity.ERROR,
        "fairness-violation",
        "a lock claiming FIFO fairness admits a bounded schedule where a "
        "continuously waiting thread is bypassed arbitrarily often",
    ),
    "FCSL057": (
        Severity.INFO,
        "liveness-analysis-incomplete",
        "instance collection did not complete; lock-order facts for this "
        "program are partial and cycle absence is not established",
    ),
    "FCSL059": (
        Severity.INFO,
        "fairness-confirmed",
        "bounded exploration confirmed the declared fairness claim: no "
        "bypass or livelock cycle exists within the explored bounds",
    ),
    # -- dependency hygiene (fcsl-deps) -------------------------------------------
    "FCSL060": (
        Severity.WARNING,
        "mutable-global-dependency",
        "an obligation reads a mutable module global; its contents are "
        "invisible to content fingerprints, so edits to it cannot "
        "trigger re-verification",
    ),
    "FCSL061": (
        Severity.WARNING,
        "escaped-dependency-closure",
        "an obligation's dependency closure reaches a definition outside "
        "the repro package; its source is not covered by any fingerprint",
    ),
    "FCSL062": (
        Severity.INFO,
        "dynamic-dispatch-fallback",
        "an obligation dispatches dynamically (getattr/exec or an "
        "unindexable definition); a conservative whole-module dependency "
        "edge was recorded in its place",
    ),
    "FCSL063": (
        Severity.INFO,
        "protocol-client-cycle",
        "the definition-level dependency graph has a cycle between "
        "modules (typically a protocol and its client spec); edits to "
        "either side re-verify both",
    ),
    "FCSL064": (
        Severity.INFO,
        "monolithic-dependency-cone",
        "an obligation's dependency cone spans every tracked definition "
        "of its program; incremental re-verification cannot skip it",
    ),
    "FCSL065": (
        Severity.WARNING,
        "ambiguous-obligation-name",
        "two obligations of one program share a name; per-obligation "
        "fingerprints collide and the program falls back to full "
        "re-verification",
    ),
    "FCSL066": (
        Severity.INFO,
        "deps-analysis-incomplete",
        "the dependency walk exhausted its budget (or obligation "
        "collection failed); the obligation conservatively keys on the "
        "whole-program fingerprint",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule on one object."""

    code: str
    message: str
    subject: str = ""  # the program/structure the sweep was linting
    obj: str = ""  # the concrete object (transition name, action name, ...)
    loc: SourceLoc | None = None
    extra: dict[str, Any] = field(default=None, compare=False, hash=False)  # type: ignore[assignment]

    @property
    def severity(self) -> Severity:
        return CODES[self.code][0]

    @property
    def slug(self) -> str:
        return CODES[self.code][1]

    def render(self) -> str:
        where = f" [{self.loc}]" if self.loc else ""
        scope = f"{self.subject}: " if self.subject else ""
        return f"{self.code} {self.severity} ({self.slug}) {scope}{self.message}{where}"

    def to_json(self) -> dict[str, Any]:
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "slug": self.slug,
            "subject": self.subject,
            "object": self.obj,
            "message": self.message,
        }
        if self.loc is not None:
            out["file"] = self.loc.file
            out["line"] = self.loc.line
        return out


def diag(
    code: str,
    message: str,
    *,
    subject: str = "",
    obj: str = "",
    loc: SourceLoc | None = None,
) -> Diagnostic:
    """Build a diagnostic, checking the code exists in the table."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Diagnostic(code, message, subject=subject, obj=obj, loc=loc)


def loc_of(obj: Any) -> SourceLoc | None:
    """Best-effort source location of a callable / class / instance."""
    for candidate in (obj, getattr(obj, "__func__", None), type(obj)):
        if candidate is None:
            continue
        try:
            file = inspect.getsourcefile(candidate)
            __, line = inspect.getsourcelines(candidate)
        except (TypeError, OSError):
            continue
        if file:
            return SourceLoc(file, line)
    code = getattr(obj, "__code__", None)
    if code is not None:
        return SourceLoc(code.co_filename, code.co_firstlineno)
    return None


# -- filtering & rendering ----------------------------------------------------------------------


_CODE_RE = re.compile(r"^FCSL\d+$")


class SelectorError(ValueError):
    """A ``--select`` selector that cannot match any known code.

    Raised instead of silently matching nothing: ``--select FCSL07x``
    after a typo used to produce an empty (deceptively clean) report.
    The CLI maps this to exit code 2 with the message below.
    """


def _known_blocks() -> str:
    """Human summary of the populated code blocks, for error messages."""
    prefixes = sorted({code[:6] for code in CODES})
    return ", ".join(f"{p}x" for p in prefixes)


def _selector_matcher(selector: str) -> Callable[[str], bool]:
    """One selector -> a code predicate.  Forms (shared verbatim by every
    tool that takes ``--select``):

    * exact code: ``FCSL050``
    * prefix: ``FCSL05`` (the whole block)
    * digit wildcard: ``FCSL05x`` (``x`` matches any single digit)
    * inclusive range: ``FCSL050-059`` or ``FCSL050-FCSL059``
    """
    sel = selector.strip().upper()
    lo, dash, hi = sel.partition("-")
    if dash and lo and hi:
        if not hi.startswith("FCSL"):
            hi = "FCSL" + hi
        if _CODE_RE.match(lo) and _CODE_RE.match(hi):
            return lambda code, lo=lo, hi=hi: lo <= code <= hi

    def match(code: str, pat: str = sel) -> bool:
        if len(pat) > len(code):
            return False
        for pc, cc in zip(pat, code):
            if pc == "X":
                if not cc.isdigit():
                    return False
            elif pc != cc:
                return False
        return True

    return match


def select(
    diagnostics: Iterable[Diagnostic],
    codes: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Keep diagnostics matching any selector (see
    :func:`_selector_matcher` for the accepted forms; plain prefixes like
    ``FCSL01`` keep their historical meaning)."""
    diagnostics = list(diagnostics)
    if not codes:
        return diagnostics
    matchers = []
    for selector in codes:
        matcher = _selector_matcher(selector)
        if not any(matcher(code) for code in CODES):
            raise SelectorError(
                f"selector {selector!r} matches no known diagnostic code; "
                f"known blocks: {_known_blocks()}"
            )
        matchers.append(matcher)
    return [d for d in diagnostics if any(m(d.code) for m in matchers)]


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    return max((d.severity for d in diagnostics), default=None)


def render_text(diagnostics: Sequence[Diagnostic], *, tool: str = "fcsl-lint") -> str:
    """The human report: one line per finding plus a summary line."""
    lines = [d.render() for d in diagnostics]
    counts = {sev: 0 for sev in Severity}
    for d in diagnostics:
        counts[d.severity] += 1
    summary = ", ".join(
        f"{n} {sev}(s)" for sev, n in sorted(counts.items(), reverse=True) if n
    )
    lines.append(f"{tool}: {summary or 'clean'}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], *, tool: str = "fcsl-lint") -> str:
    """The machine report: a JSON object with findings and counts."""
    counts = {str(sev): 0 for sev in Severity}
    for d in diagnostics:
        counts[str(d.severity)] += 1
    return json.dumps(
        {
            "tool": tool,
            "diagnostics": [d.to_json() for d in diagnostics],
            "counts": counts,
        },
        indent=2,
        sort_keys=True,
    )

"""Recording operation-level histories from interpreter runs.

:func:`tracked` brackets a program with invoke/respond marks feeding a
:class:`~repro.linearize.history.HistoryRecorder`; the marks are
administrative (they execute in the normalization step right after the
enabling atomic action), so the recorded intervals reflect the actual
interleaving of the run.

Used to validate that the history-PCM specified structures (Treiber
stack, FC-stack, pair snapshot) are linearizable in the classical
operational sense — the bridge between the paper's PCM histories and
Herlihy–Wing linearizability.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.prog import Call, Prog, bind, ret
from .history import HistoryRecorder


def tracked(
    recorder: HistoryRecorder,
    thread_label: int,
    op: str,
    arg: Any,
    prog: Prog,
    result_of: Callable[[Any], Any] | None = None,
) -> Prog:
    """Wrap ``prog`` so its span is recorded as one operation.

    ``thread_label`` is a caller-chosen logical thread id (interpreter
    tids are per-fork and less readable); ``result_of`` post-processes the
    program's return value into the recorded result.
    """

    def begin() -> Prog:
        op_id = recorder.invoke(thread_label, op, arg)
        return bind(prog, lambda v: finish(op_id, v))

    def finish(op_id: int, value: Any) -> Prog:
        recorder.respond(op_id, result_of(value) if result_of else value)
        return ret(value)

    return Call(begin, (), label=f"tracked:{op}")

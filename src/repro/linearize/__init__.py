"""Linearizability: concurrent histories and the Herlihy–Wing checker."""

from .bridge import tracked
from .checker import LinearizationResult, assert_linearizable, linearize
from .history import (
    ConcurrentHistory,
    HistoryRecorder,
    Operation,
    register_model,
    stack_model,
)

__all__ = [
    "tracked",
    "LinearizationResult",
    "assert_linearizable",
    "linearize",
    "ConcurrentHistory",
    "HistoryRecorder",
    "Operation",
    "register_model",
    "stack_model",
]

"""Concurrent operation histories (Herlihy & Wing [21]).

The paper's snapshot and stack specs are given "via a PCM of time-stamped
action histories ... in the spirit of linearizability".  This package
closes the loop: it records *operation-level* concurrent histories
(invocation/response intervals) from executions and checks them
linearizable against a sequential model — validating that the
history-PCM specs indeed enforce linearizable behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator


@dataclass(frozen=True)
class Operation:
    """One completed operation: its name, argument, result and interval.

    ``invoked`` and ``responded`` are logical timestamps: the operation
    was in flight over ``[invoked, responded]``.
    """

    op_id: int
    thread: int
    op: str
    arg: Any
    result: Any
    invoked: int
    responded: int

    def precedes(self, other: "Operation") -> bool:
        """Real-time order: this op responded before the other was invoked."""
        return self.responded < other.invoked

    def overlaps(self, other: "Operation") -> bool:
        return not self.precedes(other) and not other.precedes(self)

    def __str__(self) -> str:
        return (
            f"t{self.thread}:{self.op}({self.arg!r}) = {self.result!r} "
            f"@[{self.invoked},{self.responded}]"
        )


class ConcurrentHistory:
    """A finite, complete concurrent history."""

    def __init__(self, operations: list[Operation] | None = None):
        self._ops = list(operations or [])

    @property
    def operations(self) -> list[Operation]:
        return list(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def sequential_orderings(self) -> bool:
        """Whether per-thread operations are properly nested (sanity)."""
        by_thread: dict[int, list[Operation]] = {}
        for op in self._ops:
            by_thread.setdefault(op.thread, []).append(op)
        for ops in by_thread.values():
            ops.sort(key=lambda o: o.invoked)
            for a, b in zip(ops, ops[1:]):
                if not a.precedes(b):
                    return False
        return True

    def __repr__(self) -> str:
        return "ConcurrentHistory(\n  " + "\n  ".join(str(o) for o in self._ops) + "\n)"


class HistoryRecorder:
    """Builds a :class:`ConcurrentHistory` from invoke/respond callbacks.

    Timestamps come from an internal monotone counter, so the recorded
    order is the actual execution order of the run being observed.
    """

    def __init__(self):
        self._clock = 0
        self._pending: dict[int, tuple[int, str, Any, int]] = {}
        self._done: list[Operation] = []
        self._next_id = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def invoke(self, thread: int, op: str, arg: Any) -> int:
        op_id = self._next_id
        self._next_id += 1
        self._pending[op_id] = (thread, op, arg, self._tick())
        return op_id

    def respond(self, op_id: int, result: Any) -> None:
        thread, op, arg, invoked = self._pending.pop(op_id)
        self._done.append(
            Operation(op_id, thread, op, arg, result, invoked, self._tick())
        )

    def history(self) -> ConcurrentHistory:
        if self._pending:
            raise ValueError(f"{len(self._pending)} operation(s) never responded")
        return ConcurrentHistory(sorted(self._done, key=lambda o: o.invoked))


#: A sequential model: ``apply(state, op, arg) -> (result, new_state)``.
SequentialModel = Callable[[Hashable, str, Any], tuple[Any, Hashable]]


def stack_model(state: tuple, op: str, arg: Any) -> tuple[Any, tuple]:
    """The sequential stack model (for Treiber / FC-stack histories)."""
    if op == "push":
        return None, (arg,) + state
    if op == "pop":
        if not state:
            return None, state
        return state[0], state[1:]
    raise ValueError(f"unknown stack operation {op!r}")


def register_model(state: Hashable, op: str, arg: Any) -> tuple[Any, Hashable]:
    """A sequential read/write register model (for snapshot cells)."""
    if op == "read":
        return state, state
    if op == "write":
        return None, arg
    raise ValueError(f"unknown register operation {op!r}")

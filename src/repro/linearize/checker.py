"""Linearizability checking by exhaustive linearization search.

The classic Wing & Gong / Herlihy & Wing procedure: search for a total
order of the operations that (i) respects real-time precedence (an op that
responded before another was invoked comes first) and (ii) replays
correctly through the sequential model.  Memoization on
(remaining-op-set, abstract state) keeps the search polynomial-ish on the
small histories the interpreter produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .history import ConcurrentHistory, Operation, SequentialModel


@dataclass
class LinearizationResult:
    """Outcome of the search: a witness order, or a refutation."""

    linearizable: bool
    witness: list[Operation] | None = None

    def __bool__(self) -> bool:
        return self.linearizable


def linearize(
    history: ConcurrentHistory,
    model: SequentialModel,
    initial: Hashable,
) -> LinearizationResult:
    """Search for a linearization of ``history`` wrt. ``model``."""
    ops = history.operations
    n = len(ops)
    if n == 0:
        return LinearizationResult(True, [])

    # Precompute real-time predecessors: op i must come after all ops that
    # responded before i was invoked.
    preds: list[frozenset[int]] = []
    for i, op in enumerate(ops):
        preds.append(
            frozenset(j for j, other in enumerate(ops) if other.precedes(op))
        )

    full_mask = (1 << n) - 1
    dead: set[tuple[int, Hashable]] = set()

    def search(done_mask: int, state: Hashable, acc: list[Operation]) -> list[Operation] | None:
        if done_mask == full_mask:
            return acc
        key = (done_mask, state)
        if key in dead:
            return None
        for i in range(n):
            bit = 1 << i
            if done_mask & bit:
                continue
            # i is schedulable if all its real-time predecessors are done.
            if any(not (done_mask & (1 << j)) for j in preds[i]):
                continue
            op = ops[i]
            try:
                result, new_state = model(state, op.op, op.arg)
            except ValueError:
                continue
            if result != op.result:
                continue
            found = search(done_mask | bit, new_state, acc + [op])
            if found is not None:
                return found
        dead.add(key)
        return None

    witness = search(0, initial, [])
    if witness is None:
        return LinearizationResult(False)
    return LinearizationResult(True, witness)


def assert_linearizable(
    history: ConcurrentHistory,
    model: SequentialModel,
    initial: Hashable,
) -> list[Operation]:
    """Return a witness linearization or raise ``AssertionError``."""
    result = linearize(history, model, initial)
    if not result:
        raise AssertionError(f"history is not linearizable:\n{history!r}")
    assert result.witness is not None
    return result.witness

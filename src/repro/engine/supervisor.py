"""Supervised parallel dispatch: the fault-tolerant half of the engine.

PR-2's pool phase was a bare ``pool.map``: the first worker exception
killed the whole sweep, a diverging verifier blocked it forever, and an
OOM-killed worker lost every completed verdict.  The supervisor replaces
it with per-program ``apply_async`` dispatch under active supervision:

* **per-program timeouts** — a task has a deadline from the moment it is
  handed to a worker (submission is windowed to ``jobs`` tasks, so queue
  time never counts against a program's budget);
* **worker-death detection** — workers announce ``(pid, program)`` over
  a fork-inherited queue at task start, and the supervisor polls each
  announced pid for liveness: a dead worker means its task's result will
  *never* arrive, so waiting for it is not an option;
* **bounded retries with exponential backoff** — crashed, timed-out and
  exception-killed tasks are resubmitted up to ``retries`` times,
  backing off ``backoff * 2**(retries_so_far - 1)`` seconds;
* **pool resurrection** — a hung worker can only be removed by tearing
  the pool down (``multiprocessing.Pool`` cannot cancel a running
  task), so on a timeout the pool is terminated and rebuilt and every
  *innocent* in-flight task is resubmitted without consuming its retry
  budget; a crashed worker, by contrast, is replaced by the pool's own
  maintenance thread and only the victim is resubmitted;
* **graceful degradation** — when pool creation (or resurrection) itself
  fails — no ``/dev/shm``, semaphore exhaustion — the remaining tasks
  run serially in-process and the sweep is marked *degraded* rather
  than dead.

The supervisor never raises for a task-level fault: every program ends
in a :class:`TaskResult` whose ``status`` says what happened, and the
sweep always reports all requested programs.  ``KeyboardInterrupt`` is
the one exception it honors: workers are terminated and the tasks still
pending are marked ``interrupted``, preserving completed results.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs.tracer import instant as _trace_instant

#: Final task statuses that denote an infrastructure problem (the sweep
#: could not obtain a verdict), as opposed to a verification verdict.
INFRA_STATUSES = ("error", "timeout", "crashed", "interrupted")


@dataclass
class SupervisorConfig:
    """Supervision knobs (all per-program except ``jobs``)."""

    jobs: int = 2
    #: Wall-clock seconds a single attempt may run; ``None`` disables.
    timeout: float | None = None
    #: Retries after the first attempt for crashed/timed-out/raised tasks.
    retries: int = 1
    #: Base of the exponential retry backoff, in seconds.
    backoff: float = 0.25
    #: Supervision loop granularity, in seconds.
    poll_interval: float = 0.05
    #: Optional dynamic in-flight window (the resource watchdog's
    #: parallelism shedding): polled each loop, result clamped to
    #: ``[1, jobs]``.  ``None`` = the full ``jobs`` width.
    throttle: Callable[[], int] | None = None
    #: Optional checkpoint probe: a non-``None`` reason aborts the batch
    #: like a KeyboardInterrupt (pending tasks marked ``interrupted``,
    #: completed results kept) — the watchdog's checkpoint-and-exit rung.
    should_stop: Callable[[], str | None] | None = None


@dataclass
class TaskResult:
    """What supervision concluded about one program."""

    name: str
    #: ``report`` (a verdict payload), ``error`` (the verifier raised —
    #: captured in-worker), or an infra status from :data:`INFRA_STATUSES`.
    status: str
    #: The worker's payload, when one arrived.
    payload: dict[str, Any] | None = None
    #: Structured ``{type, message, traceback}`` for error-class outcomes.
    error: dict[str, Any] | None = None
    #: Fault-triggered re-dispatches (pool-collateral resubmissions are
    #: not counted: an innocent task killed with a torn-down pool keeps
    #: both its attempt number and its retry budget).
    retries: int = 0
    #: Wall time of the final attempt as seen by the supervisor.
    seconds: float = 0.0


@dataclass
class SupervisionOutcome:
    """The supervisor's answer for a batch of programs."""

    results: dict[str, TaskResult]
    #: True when the pool could not be (re)built and the serial
    #: in-process fallback ran instead.
    degraded: bool = False
    #: True when a KeyboardInterrupt cut the batch short.
    interrupted: bool = False
    warnings: list[str] = field(default_factory=list)


def exc_payload(exc: BaseException, tb: str | None = None) -> dict[str, Any]:
    """The structured error image used for every error-class outcome."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": tb if tb is not None else traceback.format_exc(),
    }


# -- worker-side announcement channel -----------------------------------------
#
# Created by the supervisor in the parent before the pool, inherited by
# fork-started workers as a module global.  Under a spawn start method
# the global is None in the child and announcements are silently skipped
# — crash detection then degrades to timeout-based detection.

_announce_queue = None


def announce(program: str) -> None:
    """Worker-side: report ``(pid, program)`` at task start, best-effort."""
    queue = _announce_queue
    if queue is not None:
        try:
            queue.put((os.getpid(), program))
        except Exception:  # noqa: BLE001 - announcements are advisory only
            pass


class _Task:
    """Mutable supervision state for one task.

    Supervision is duck-typed over its task descriptors: anything with a
    ``name`` attribute works — registry ``ProgramInfo`` rows for sweeps,
    or the parallel explorer's shard descriptors
    (:class:`repro.semantics.parallel._ShardInfo`).
    """

    __slots__ = (
        "info",
        "attempt",
        "retries",
        "async_result",
        "started",
        "deadline",
        "pid",
        "not_before",
        "done",
    )

    def __init__(self, info: Any):
        self.info = info
        self.attempt = 1
        self.retries = 0
        self.async_result = None
        self.started: float | None = None
        self.deadline: float | None = None
        self.pid: int | None = None
        self.not_before = 0.0
        self.done: TaskResult | None = None

    @property
    def name(self) -> str:
        return self.info.name

    def elapsed(self) -> float:
        return 0.0 if self.started is None else time.monotonic() - self.started


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


class Supervisor:
    """Drives one batch of programs to completion, faults and all."""

    def __init__(
        self,
        programs: Sequence[Any],
        *,
        worker: Callable[..., dict[str, Any]],
        config: SupervisorConfig,
        initializer: Callable[[], None] | None = None,
        serial_worker: Callable[..., dict[str, Any]] | None = None,
        on_lease: Callable[[str, int, float | None], None] | None = None,
        on_result: Callable[[TaskResult], None] | None = None,
    ):
        self.programs = list(programs)
        self.worker = worker
        self.config = config
        self.initializer = initializer
        self.serial_worker = serial_worker or worker
        #: Incremental hooks for the durable journal: ``on_lease(name,
        #: attempt, timeout)`` as a task goes in-flight, ``on_result``
        #: the moment a task reaches its final :class:`TaskResult` —
        #: *not* at batch end, so a hard crash of this process loses at
        #: most the in-flight tasks.
        self.on_lease = on_lease
        self.on_result = on_result
        self.warnings: list[str] = []
        self._pool = None
        self._queue = None

    def _notify_lease(self, task: "_Task") -> None:
        if self.on_lease is not None:
            try:
                self.on_lease(task.name, task.attempt, self.config.timeout)
            except Exception:  # noqa: BLE001 - journaling must not kill dispatch
                pass

    def _notify_result(self, result: TaskResult) -> None:
        if self.on_result is not None:
            try:
                self.on_result(result)
            except Exception:  # noqa: BLE001 - journaling must not kill dispatch
                pass

    # -- pool lifecycle --------------------------------------------------------

    def _make_pool(self):
        return multiprocessing.Pool(
            processes=self.config.jobs, initializer=self.initializer
        )

    def _teardown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    def _resurrect_pool(self, reason: str) -> bool:
        """Tear the pool down and build a fresh one; ``False`` means the
        infrastructure is gone and the caller must degrade to serial."""
        self._teardown_pool()
        self.warnings.append(f"worker pool resurrected: {reason}")
        _trace_instant("supervisor:resurrect", "engine", reason=reason)
        try:
            self._pool = self._make_pool()
        except Exception as exc:  # noqa: BLE001 - degrade, don't die
            self.warnings.append(
                f"pool resurrection failed ({type(exc).__name__}: {exc}); "
                "degrading to serial in-process execution"
            )
            return False
        return True

    # -- the supervision loop --------------------------------------------------

    def run(self) -> SupervisionOutcome:
        tasks = [_Task(info) for info in self.programs]
        results: dict[str, TaskResult] = {}
        self._queue = multiprocessing.SimpleQueue()
        global _announce_queue
        _announce_queue = self._queue
        try:
            try:
                self._pool = self._make_pool()
            except Exception as exc:  # noqa: BLE001 - no pool at all: degrade
                self.warnings.append(
                    f"pool creation failed ({type(exc).__name__}: {exc}); "
                    "running serially in-process"
                )
                return self._run_serial(tasks, results)
            try:
                interrupted = self._supervise(tasks, results)
            except _Degraded:
                return self._run_serial(tasks, results)
            return SupervisionOutcome(
                results, interrupted=interrupted, warnings=self.warnings
            )
        finally:
            _announce_queue = None
            self._teardown_pool()
            queue, self._queue = self._queue, None
            if queue is not None:
                queue.close()

    def _window(self) -> int:
        """The current in-flight limit: ``jobs``, shed via ``throttle``."""
        window = self.config.jobs
        if self.config.throttle is not None:
            try:
                window = max(1, min(window, int(self.config.throttle())))
            except Exception:  # noqa: BLE001 - a sick throttle never stalls
                pass
        return window

    def _mark_pending_interrupted(
        self, tasks: list[_Task], results: dict[str, TaskResult], reason: str
    ) -> None:
        for task in tasks:
            if task.done is None:
                task.done = results[task.name] = TaskResult(
                    task.name,
                    "interrupted",
                    retries=task.retries,
                    seconds=task.elapsed(),
                )
                self._notify_result(task.done)
        self.warnings.append(reason)

    def _supervise(self, tasks: list[_Task], results: dict[str, TaskResult]) -> bool:
        waiting = list(tasks)
        active: dict[str, _Task] = {}
        try:
            while waiting or active:
                if self.config.should_stop is not None:
                    try:
                        stop = self.config.should_stop()
                    except Exception:  # noqa: BLE001 - probe bugs never stall
                        stop = None
                    if stop is not None:
                        self._mark_pending_interrupted(
                            tasks,
                            results,
                            f"sweep checkpointed: {stop}; pending programs "
                            "marked 'interrupted', completed verdicts preserved",
                        )
                        return True
                now = time.monotonic()
                while waiting and len(active) < self._window():
                    ready = next((t for t in waiting if t.not_before <= now), None)
                    if ready is None:
                        break
                    waiting.remove(ready)
                    self._submit(ready, active, results)
                self._drain_announcements(active)
                self._collect_ready(active, waiting, results)
                self._check_deadlines(active, waiting, results)
                self._check_worker_deaths(active, waiting, results)
                if waiting or active:
                    time.sleep(self.config.poll_interval)
            return False
        except KeyboardInterrupt:
            self._mark_pending_interrupted(
                tasks,
                results,
                "sweep interrupted: pending programs marked 'interrupted', "
                "completed verdicts preserved",
            )
            return True

    # -- submission ------------------------------------------------------------

    def _submit(
        self,
        task: _Task,
        active: dict[str, _Task],
        results: dict[str, TaskResult],
    ) -> None:
        task.started = time.monotonic()
        task.deadline = (
            task.started + self.config.timeout
            if self.config.timeout is not None
            else None
        )
        task.pid = None
        try:
            task.async_result = self._pool.apply_async(
                self.worker, (task.info, task.attempt)
            )
        except Exception as exc:  # noqa: BLE001 - pool broken at submit time
            if not self._resurrect_pool(
                f"submit of {task.name!r} failed ({type(exc).__name__})"
            ):
                raise _Degraded() from exc
            try:
                task.async_result = self._pool.apply_async(
                    self.worker, (task.info, task.attempt)
                )
            except Exception as again:  # noqa: BLE001 - fresh pool broken too
                raise _Degraded() from again
        active[task.name] = task
        self._notify_lease(task)
        _trace_instant(
            "supervisor:submit", "engine", program=task.name, attempt=task.attempt
        )

    # -- event handling --------------------------------------------------------

    def _drain_announcements(self, active: dict[str, _Task]) -> None:
        queue = self._queue
        try:
            while queue is not None and not queue.empty():
                pid, program = queue.get()
                task = active.get(program)
                if task is not None:
                    task.pid = pid
        except Exception:  # noqa: BLE001 - announcements are advisory only
            pass

    def _collect_ready(
        self,
        active: dict[str, _Task],
        waiting: list[_Task],
        results: dict[str, TaskResult],
    ) -> None:
        for name, task in list(active.items()):
            if not task.async_result.ready():
                continue
            del active[name]
            try:
                payload = task.async_result.get(0)
            except Exception as exc:  # noqa: BLE001 - escaped the worker capture
                self._fault(
                    task,
                    "error",
                    waiting,
                    results,
                    error=exc_payload(exc, tb="".join(
                        traceback.format_exception(exc)
                    )),
                )
                continue
            task.done = results[name] = TaskResult(
                name,
                payload.get("status", "report"),
                payload=payload,
                error=payload.get("error"),
                retries=task.retries,
                seconds=task.elapsed(),
            )
            self._notify_result(task.done)
            _trace_instant(
                "supervisor:collect",
                "engine",
                program=name,
                status=task.done.status,
                seconds=task.done.seconds,
            )

    def _check_deadlines(
        self,
        active: dict[str, _Task],
        waiting: list[_Task],
        results: dict[str, TaskResult],
    ) -> None:
        if self.config.timeout is None:
            return
        now = time.monotonic()
        overdue = [t for t in active.values() if t.deadline and now >= t.deadline]
        for task in overdue:
            if task.name not in active:
                continue  # requeued as pool-teardown collateral this round
            del active[task.name]
            # A hung task cannot be cancelled: kill its worker (pid
            # known) or tear the whole pool down (pid unknown).  Either
            # way the pool self-heals or is rebuilt below.
            if task.pid is not None:
                try:
                    os.kill(task.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
                self._fault(task, "timeout", waiting, results)
            else:
                if not self._resurrect_pool(
                    f"{task.name!r} exceeded its {self.config.timeout:.1f}s "
                    "timeout with no worker attribution"
                ):
                    self._fault(task, "timeout", waiting, results)
                    raise _Degraded()
                self._fault(task, "timeout", waiting, results)
                self._resubmit_innocents(active, waiting)

    def _check_worker_deaths(
        self,
        active: dict[str, _Task],
        waiting: list[_Task],
        results: dict[str, TaskResult],
    ) -> None:
        for name, task in list(active.items()):
            if task.pid is None or _pid_alive(task.pid):
                continue
            # The worker died; its result might still be in flight, so
            # give the pool's result-handler one last look before
            # declaring the task lost.
            if task.async_result.ready():
                continue
            del active[name]
            _trace_instant(
                "supervisor:worker-death", "engine", program=name, pid=task.pid
            )
            self._fault(
                task,
                "crashed",
                waiting,
                results,
                error={
                    "type": "WorkerCrash",
                    "message": f"worker pid {task.pid} died before returning "
                    f"a result for {name!r} (attempt {task.attempt})",
                    "traceback": "",
                },
            )

    def _resubmit_innocents(
        self, active: dict[str, _Task], waiting: list[_Task]
    ) -> None:
        """After a pool teardown, requeue the in-flight tasks that were
        not at fault — same attempt, retry budget untouched."""
        for name, task in list(active.items()):
            del active[name]
            task.not_before = 0.0
            waiting.append(task)

    # -- retry policy ----------------------------------------------------------

    def _fault(
        self,
        task: _Task,
        kind: str,
        waiting: list[_Task],
        results: dict[str, TaskResult],
        error: dict[str, Any] | None = None,
    ) -> None:
        _trace_instant(
            "supervisor:fault",
            "engine",
            program=task.name,
            kind=kind,
            attempt=task.attempt,
            will_retry=task.attempt <= self.config.retries,
        )
        if task.attempt <= self.config.retries:
            task.retries += 1
            task.attempt += 1
            task.not_before = (
                time.monotonic() + self.config.backoff * (2 ** (task.retries - 1))
            )
            waiting.append(task)
            return
        task.done = results[task.name] = TaskResult(
            task.name,
            kind,
            error=error,
            retries=task.retries,
            seconds=task.elapsed(),
        )
        self._notify_result(task.done)

    # -- serial degradation ----------------------------------------------------

    def _run_serial(
        self, tasks: list[_Task], results: dict[str, TaskResult]
    ) -> SupervisionOutcome:
        self._teardown_pool()
        interrupted = False
        for task in tasks:
            if task.done is not None:
                continue
            if not interrupted and self.config.should_stop is not None:
                try:
                    stop = self.config.should_stop()
                except Exception:  # noqa: BLE001 - probe bugs never stall
                    stop = None
                if stop is not None:
                    interrupted = True
                    self.warnings.append(f"sweep checkpointed: {stop}")
            if interrupted:
                task.done = results[task.name] = TaskResult(
                    task.name, "interrupted", retries=task.retries
                )
                self._notify_result(task.done)
                continue
            started = time.monotonic()
            self._notify_lease(task)
            try:
                payload = self.serial_worker(task.info, task.attempt)
            except KeyboardInterrupt:
                interrupted = True
                task.done = results[task.name] = TaskResult(
                    task.name,
                    "interrupted",
                    retries=task.retries,
                    seconds=time.monotonic() - started,
                )
                self._notify_result(task.done)
                continue
            except Exception as exc:  # noqa: BLE001 - report, don't die
                task.done = results[task.name] = TaskResult(
                    task.name,
                    "error",
                    error=exc_payload(exc),
                    retries=task.retries,
                    seconds=time.monotonic() - started,
                )
                self._notify_result(task.done)
                continue
            task.done = results[task.name] = TaskResult(
                task.name,
                payload.get("status", "report"),
                payload=payload,
                error=payload.get("error"),
                retries=task.retries,
                seconds=time.monotonic() - started,
            )
            self._notify_result(task.done)
        return SupervisionOutcome(
            results,
            degraded=True,
            interrupted=interrupted,
            warnings=self.warnings,
        )


class _Degraded(Exception):
    """Internal control flow: the pool is unrecoverable, go serial."""


def supervise(
    programs: Sequence[Any],
    *,
    worker: Callable[..., dict[str, Any]],
    config: SupervisorConfig,
    initializer: Callable[[], None] | None = None,
    serial_worker: Callable[..., dict[str, Any]] | None = None,
    on_lease: Callable[[str, int, float | None], None] | None = None,
    on_result: Callable[[TaskResult], None] | None = None,
) -> SupervisionOutcome:
    """Run ``programs`` under supervision; every program gets a result."""
    return Supervisor(
        programs,
        worker=worker,
        config=config,
        initializer=initializer,
        serial_worker=serial_worker,
        on_lease=on_lease,
        on_result=on_result,
    ).run()

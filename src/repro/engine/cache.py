"""The persistent obligation cache (``.repro-cache/``).

One JSON file per case study, atomically replaced on store::

    .repro-cache/
        cas-lock-d663f1b7.json
        ticketed-lock-0355dc9c.json
        corrupt/                  <- quarantined unreadable entries
        journal/sweep.jsonl       <- the durable sweep journal

The file stem is the slugified program name plus a short digest of the
*exact* name: two distinct registry names that slugify identically
(``"CAS-lock"`` vs ``"CAS lock"``) must never share a file, or one
program's store would evict the other's entry on every run.

Each file holds the cache schema version, the program name, the content
fingerprint it was computed under (see :mod:`repro.engine.fingerprint`),
a creation timestamp, free-form metadata, a **checksum** over the
serialized report, and the serialized
:class:`~repro.core.verify.VerificationReport`.  ``load`` returns the
replayed report only when every one of schema, program, fingerprint and
checksum matches; *any* problem degrades to a cache miss, never to an
error: a corrupted cache must cost a recomputation, not a verdict.

Self-healing: an entry that *exists but cannot be trusted* — torn JSON,
a checksum mismatch (bit rot, injectable via the ``corrupt`` fault
kind), a report that no longer deserializes — is not merely skipped but
**quarantined**: moved into ``corrupt/`` (for forensics) so the slot is
clean for the recomputed verdict, and reported as a warning on the
sweep.  A stale-but-intact entry (old schema, old fingerprint) is a
plain miss and is left in place.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import Any

from ..core.verify import VerificationReport
from ..obs.tracer import instant as _trace_instant
from .faults import maybe_diskfull, maybe_store_fault
from .fingerprint import CACHE_SCHEMA_VERSION

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment override for the cache location.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Quarantine subdirectory for corrupt entries.
CORRUPT_DIRNAME = "corrupt"


def default_cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def _slug(name: str) -> str:
    """Filesystem-safe, *collision-free* file stem for a program name.

    The readable part lossily folds case and punctuation, so it is
    disambiguated with a short digest of the exact name — without it,
    ``"CAS-lock"`` and ``"CAS lock"`` would share one file stem and
    silently evict each other's entries.
    """
    readable = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-") or "program"
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
    return f"{readable}-{digest}"


def report_checksum(report_dict: dict[str, Any]) -> str:
    """Canonical SHA-256 over a serialized report (the entry checksum)."""
    canonical = json.dumps(report_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CorruptEntry(Exception):
    """Internal: the entry exists but cannot be trusted (vs. a clean miss)."""


class ObligationCache:
    """Verdict store keyed by program name + content fingerprint."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, program: str) -> Path:
        return self.root / f"{_slug(program)}.json"

    @property
    def corrupt_dir(self) -> Path:
        return self.root / CORRUPT_DIRNAME

    def _validate(self, program: str, fingerprint: str) -> VerificationReport | None:
        """Parse + verify one entry; ``None`` = clean miss, raises
        :class:`CorruptEntry` when the entry exists but is untrustable."""
        path = self.path_for(program)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CorruptEntry(f"unreadable JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CorruptEntry("entry is not a JSON object")
        if data.get("schema") != CACHE_SCHEMA_VERSION:
            return None  # stale-but-intact: a plain miss
        if "report" not in data or "checksum" not in data:
            raise CorruptEntry("entry is missing report/checksum fields")
        if data.get("checksum") != report_checksum(data["report"]):
            raise CorruptEntry("checksum mismatch (bit rot or torn write)")
        if data.get("program") != program:
            return None
        if data.get("fingerprint") != fingerprint:
            return None
        try:
            report = VerificationReport.from_dict(data["report"])
        except Exception as exc:  # noqa: BLE001 - checksummed yet unparsable
            raise CorruptEntry(f"report does not deserialize: {exc}") from exc
        if report.program != program:
            return None
        return report

    def quarantine(self, program: str, reason: str) -> Path | None:
        """Move ``program``'s entry into ``corrupt/``; the new path."""
        path = self.path_for(program)
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            dest = self.corrupt_dir / (
                f"{path.name}.{int(time.time())}.{os.getpid()}"
            )
            os.replace(path, dest)
        except OSError:
            # Even quarantine may hit a sick disk: degrade to deletion,
            # and failing that leave the entry (load still misses).
            try:
                path.unlink(missing_ok=True)
            except OSError:
                return None
            return None
        _trace_instant(
            "cache:quarantine", "cache", program=program, reason=reason
        )
        return dest

    def load_verified(
        self, program: str, fingerprint: str
    ) -> tuple[VerificationReport | None, str | None]:
        """``(report, warning)``: the cached report or ``None``, plus a
        warning when a corrupt entry was quarantined on the way.

        Corruption degrades to a recomputation with a warning — never an
        exception, never a stale verdict.
        """
        try:
            return self._validate(program, fingerprint), None
        except CorruptEntry as exc:
            dest = self.quarantine(program, str(exc))
            where = f" (quarantined to {dest})" if dest is not None else ""
            return None, (
                f"corrupt cache entry for {program!r}: {exc}{where}; recomputing"
            )
        except Exception:  # noqa: BLE001 - never let the cache fail a sweep
            return None, None

    def load(self, program: str, fingerprint: str) -> VerificationReport | None:
        """The cached report, or ``None`` on any miss/mismatch/corruption
        (corrupt entries are quarantined as a side effect)."""
        return self.load_verified(program, fingerprint)[0]

    def load_incremental(
        self, program: str
    ) -> tuple[VerificationReport, dict[str, str]] | None:
        """The entry's report plus its per-obligation fingerprint map,
        *ignoring* the top-level program fingerprint.

        This is the incremental-reverification read path (fcsl-deps):
        after an edit the whole-program fingerprint misses by design, but
        obligations whose dependency cone excludes the edit still carry
        matching per-obligation fingerprints and may be replayed.  Schema,
        program name and checksum are still required — only the
        fingerprint comparison is deferred to the caller.  Entries from
        schema v3 and earlier carry no ``obligations`` map and miss.
        """
        path = self.path_for(program)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                return None
            if data.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            if data.get("program") != program:
                return None
            if data.get("checksum") != report_checksum(data.get("report")):
                return None
            obligations = data.get("obligations")
            if not isinstance(obligations, dict) or not obligations:
                return None
            if not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in obligations.items()
            ):
                return None
            report = VerificationReport.from_dict(data["report"])
        except Exception:  # noqa: BLE001 - any trouble is a plain miss;
            # the verified load path owns quarantining.
            return None
        if report.program != program:
            return None
        return report, dict(obligations)

    def store(
        self,
        program: str,
        fingerprint: str,
        report: VerificationReport,
        meta: dict[str, Any] | None = None,
        obligations: dict[str, str] | None = None,
    ) -> Path:
        """Write (atomically: temp file + ``os.replace``) and return the path.

        Atomic replacement means a concurrent reader sees either the old
        entry or the new one, never a torn file — required once workers
        and warm reruns overlap.  A write that raises midway cleans up
        its temp file instead of littering the cache directory with
        orphaned ``*.tmp.<pid>`` files.
        """
        maybe_diskfull(program, "cache")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(program)
        report_dict = report.to_dict()
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "program": program,
            "fingerprint": fingerprint,
            "created": time.time(),
            "meta": meta or {},
            "obligations": obligations or {},
            "checksum": report_checksum(report_dict),
            "report": report_dict,
        }
        text = json.dumps(payload, indent=2) + "\n"
        fault = maybe_store_fault(program)
        if fault == "torn":
            # Chaos harness: simulate a crash mid-write — the entry on
            # disk is cut short and must read back as a miss, never as
            # a verdict (see docs/ROBUSTNESS.md).
            text = text[: max(1, len(text) // 2)]
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        if fault == "corrupt":
            # Chaos harness: flip bytes in the stored entry *after* the
            # atomic replace — silent bit rot the checksum must catch.
            self._flip_bytes(path)
        _trace_instant(
            "cache:store", "cache", program=program, bytes=len(text)
        )
        return path

    @staticmethod
    def _flip_bytes(path: Path) -> None:
        """Silently alter the stored entry's *report* content.

        Flips digit bytes inside the ``report`` subtree so the file
        stays valid UTF-8/JSON — the tampering is detectable only by
        the checksum, which is exactly the self-healing path under
        test.  Falls back to raw byte-smashing (unreadable JSON, also
        quarantined) if no digit exists to flip.
        """
        raw = bytearray(path.read_bytes())
        start = raw.find(b'"report"')
        start = start if start >= 0 else len(raw) // 2
        flipped = 0
        for offset in range(start, len(raw)):
            if 0x30 <= raw[offset] <= 0x39:  # ASCII digit: stays a digit
                raw[offset] ^= 0x01
                flipped += 1
                if flipped >= 8:
                    break
        if not flipped:
            mid = len(raw) // 2
            for offset in range(mid, min(mid + 8, len(raw))):
                raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))

    def _is_entry(self, path: Path) -> bool:
        """Whether ``path`` parses as a schema-versioned cache entry."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except Exception:  # noqa: BLE001 - unreadable => not ours to delete
            return False
        return (
            isinstance(data, dict)
            and "schema" in data
            and "program" in data
            and "report" in data
        )

    def clear(self) -> int:
        """Delete every cache *entry*; returns the number removed.

        Only files that parse as schema-versioned entries are touched:
        a user pointing ``--cache-dir`` at a directory that also holds
        unrelated ``*.json`` files must not lose them.  The cache's own
        bookkeeping directories — the ``corrupt/`` quarantine and the
        sweep ``journal/`` — *are* ours and are removed too (previously
        they survived a clear and kept resurrecting stale state); each
        quarantined entry and journal file counts toward the total.
        """
        import shutil

        from .journal import JOURNAL_DIRNAME

        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*.json"):
            if self._is_entry(path):
                path.unlink(missing_ok=True)
                removed += 1
        for subdir in (self.corrupt_dir, self.root / JOURNAL_DIRNAME):
            if not subdir.is_dir():
                continue
            removed += sum(1 for p in subdir.rglob("*") if p.is_file())
            shutil.rmtree(subdir, ignore_errors=True)
        return removed

"""The persistent obligation cache (``.repro-cache/``).

One JSON file per case study, atomically replaced on store::

    .repro-cache/
        cas-lock-d663f1b7.json
        ticketed-lock-0355dc9c.json
        ...

The file stem is the slugified program name plus a short digest of the
*exact* name: two distinct registry names that slugify identically
(``"CAS-lock"`` vs ``"CAS lock"``) must never share a file, or one
program's store would evict the other's entry on every run.

Each file holds the cache schema version, the program name, the content
fingerprint it was computed under (see :mod:`repro.engine.fingerprint`),
a creation timestamp, free-form metadata, and the serialized
:class:`~repro.core.verify.VerificationReport`.  ``load`` returns the
replayed report only when every one of schema, program and fingerprint
matches; *any* problem — missing file, truncated JSON, wrong shape,
stale fingerprint — degrades to a cache miss, never to an error: a
corrupted cache must cost a recomputation, not a verdict.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from pathlib import Path
from typing import Any

from ..core.verify import VerificationReport
from ..obs.tracer import instant as _trace_instant
from .faults import maybe_torn_write
from .fingerprint import CACHE_SCHEMA_VERSION

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment override for the cache location.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def _slug(name: str) -> str:
    """Filesystem-safe, *collision-free* file stem for a program name.

    The readable part lossily folds case and punctuation, so it is
    disambiguated with a short digest of the exact name — without it,
    ``"CAS-lock"`` and ``"CAS lock"`` would share one file stem and
    silently evict each other's entries.
    """
    readable = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-") or "program"
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
    return f"{readable}-{digest}"


class ObligationCache:
    """Verdict store keyed by program name + content fingerprint."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, program: str) -> Path:
        return self.root / f"{_slug(program)}.json"

    def load(self, program: str, fingerprint: str) -> VerificationReport | None:
        """The cached report, or ``None`` on any miss/mismatch/corruption."""
        try:
            data = json.loads(self.path_for(program).read_text(encoding="utf-8"))
            if data.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            if data.get("program") != program:
                return None
            if data.get("fingerprint") != fingerprint:
                return None
            report = VerificationReport.from_dict(data["report"])
            if report.program != program:
                return None
            return report
        except Exception:  # noqa: BLE001 - corruption degrades to a miss
            return None

    def store(
        self,
        program: str,
        fingerprint: str,
        report: VerificationReport,
        meta: dict[str, Any] | None = None,
    ) -> Path:
        """Write (atomically: temp file + ``os.replace``) and return the path.

        Atomic replacement means a concurrent reader sees either the old
        entry or the new one, never a torn file — required once workers
        and warm reruns overlap.  A write that raises midway cleans up
        its temp file instead of littering the cache directory with
        orphaned ``*.tmp.<pid>`` files.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(program)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "program": program,
            "fingerprint": fingerprint,
            "created": time.time(),
            "meta": meta or {},
            "report": report.to_dict(),
        }
        text = json.dumps(payload, indent=2) + "\n"
        if maybe_torn_write(program):
            # Chaos harness: simulate a crash mid-write — the entry on
            # disk is cut short and must read back as a miss, never as
            # a verdict (see docs/ROBUSTNESS.md).
            text = text[: max(1, len(text) // 2)]
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _trace_instant(
            "cache:store", "cache", program=program, bytes=len(text)
        )
        return path

    def _is_entry(self, path: Path) -> bool:
        """Whether ``path`` parses as a schema-versioned cache entry."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except Exception:  # noqa: BLE001 - unreadable => not ours to delete
            return False
        return (
            isinstance(data, dict)
            and "schema" in data
            and "program" in data
            and "report" in data
        )

    def clear(self) -> int:
        """Delete every cache *entry*; returns the number removed.

        Only files that parse as schema-versioned entries are touched:
        a user pointing ``--cache-dir`` at a directory that also holds
        unrelated ``*.json`` files must not lose them.
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                if self._is_entry(path):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed

"""The durable sweep journal (``.repro-cache/journal/sweep.jsonl``).

A sweep killed hard — kill -9, the OOM-killer, power loss — used to lose
every in-flight verdict: the obligation cache persists only *completed*
program stores, and the ``SweepResult`` lives in the dying process.  The
journal closes that gap with an append-only, fsync'd record of every
work unit's lifecycle:

* ``sweep:start`` — the unit decomposition, per-program content
  fingerprints and verdict-relevant flags of a fresh sweep (the file is
  truncated first: one journal per cache directory, covering the most
  recent sweep);
* ``sweep:resume`` — a resumed sweep appends instead of truncating, so
  a resume that itself crashes remains resumable;
* ``unit:leased`` — a unit was handed to a worker, with its attempt
  number and lease length (the supervisor's per-attempt deadline); a
  lease that never reaches ``unit:done`` is exactly what resume
  re-executes;
* ``unit:done`` — a unit finished with a verdict payload (the
  serialized partial/full :class:`~repro.core.verify.VerificationReport`),
  or was replayed from the obligation cache (``via="cache"``);
* ``unit:failed`` — a unit ended in an infrastructure status
  (``error``/``timeout``/``crashed``): recorded for forensics, but
  *re-executed* on resume — a quarantine is not a verdict;
* ``sweep:end`` / ``sweep:interrupted`` — the terminal record with the
  exit code; its absence is how ``--resume`` knows the previous sweep
  died mid-flight.

Durability and self-healing
---------------------------

Every line is ``<crc32> <json>\\n``; the CRC is verified on read and the
payload is fsync'd before the append returns, so the journal survives
the very crash it exists to describe.  A crash mid-append leaves a torn
final line (or a line whose CRC does not match): :func:`read_journal`
drops such lines instead of failing — a torn tail costs one unit's
re-execution, never the journal.

A journal write that raises (full disk — injectable via the ``diskfull``
fault kind) flips the journal into a *broken* state: subsequent appends
become no-ops, the sweep completes without durability, and the engine
surfaces one warning.  Losing the journal must never lose the sweep.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..obs.tracer import instant as _trace_instant
from .faults import maybe_diskfull, maybe_sigkill

#: Bump when the record layout changes; a journal with a different
#: schema is ignored by ``--resume`` (full re-run, never a misparse).
JOURNAL_SCHEMA_VERSION = 1

#: Journal location inside a cache directory.
JOURNAL_DIRNAME = "journal"
JOURNAL_FILENAME = "sweep.jsonl"


def journal_path(cache_root: Path | str) -> Path:
    """Where the sweep journal lives for a given cache directory."""
    return Path(cache_root) / JOURNAL_DIRNAME / JOURNAL_FILENAME


def _encode(record: dict[str, Any]) -> str:
    text = json.dumps(record, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}\n"


def _decode(line: str) -> dict[str, Any] | None:
    """One parsed record, or ``None`` for a torn/corrupt line."""
    head, sep, text = line.rstrip("\n").partition(" ")
    if not sep:
        return None
    try:
        if int(head, 16) != (zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF):
            return None
        record = json.loads(text)
    except (ValueError, OverflowError):
        return None
    return record if isinstance(record, dict) else None


def read_journal(path: Path | str) -> list[dict[str, Any]]:
    """All intact records of ``path`` (missing file: ``[]``).

    Torn or corrupt lines are dropped, not fatal: the journal's job is
    to survive crashes, including crashes of its own writer.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return []
    records = []
    for line in raw.splitlines():
        if not line.strip():
            continue
        record = _decode(line)
        if record is not None and record.get("schema") == JOURNAL_SCHEMA_VERSION:
            records.append(record)
    return records


class SweepJournal:
    """Append-side handle: one instance per sweep, owned by the parent.

    All methods are crash-safe *for the sweep*: an append that raises
    marks the journal broken (``broken`` carries the reason) and every
    later call no-ops.  The engine turns ``broken`` into one warning.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self.broken: str | None = None
        self._fh = None

    # -- plumbing --------------------------------------------------------------

    def _append(self, record: dict[str, Any], *, truncate: bool = False) -> None:
        if self.broken is not None:
            return
        record = {"schema": JOURNAL_SCHEMA_VERSION, **record}
        try:
            maybe_diskfull(str(record.get("program", "")), "journal")
            if self._fh is None or truncate:
                if self._fh is not None:
                    self._fh.close()
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(
                    self.path, "w" if truncate else "a", encoding="utf-8"
                )
            self._fh.write(_encode(record))
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self.broken = f"{type(exc).__name__}: {exc}"
            try:
                if self._fh is not None:
                    self._fh.close()
            except OSError:
                pass
            self._fh = None
            _trace_instant("journal:broken", "journal", reason=self.broken)
            return
        _trace_instant("journal:append", "journal", event=record.get("event"))

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    # -- lifecycle records -----------------------------------------------------

    def begin(
        self,
        fingerprints: dict[str, str],
        units: list[str],
        *,
        mode: str,
        resume: bool = False,
        flags: dict[str, Any] | None = None,
    ) -> None:
        """Open the sweep: truncating ``sweep:start``, or an appended
        ``sweep:resume`` that updates fingerprints without discarding
        the previous sweep's unit records."""
        self._append(
            {
                "event": "sweep:resume" if resume else "sweep:start",
                "mode": mode,
                "fingerprints": fingerprints,
                "units": units,
                "flags": flags or {},
            },
            truncate=not resume,
        )

    def unit_leased(
        self,
        unit_id: str,
        program: str,
        *,
        attempt: int,
        lease_seconds: float | None,
    ) -> None:
        """A unit went in-flight.  Leases are advisory forensics: resume
        re-executes any unit whose lease never reached ``unit:done``,
        and the supervisor enforces expiry (its per-attempt deadline)
        by killing and re-dispatching the worker."""
        self._append(
            {
                "event": "unit:leased",
                "unit": unit_id,
                "program": program,
                "attempt": attempt,
                "lease_seconds": lease_seconds,
            }
        )

    def unit_done(
        self,
        unit_id: str,
        program: str,
        group: str | None,
        status: str,
        *,
        payload: dict[str, Any] | None = None,
        error: dict[str, Any] | None = None,
        retries: int = 0,
        seconds: float = 0.0,
        via: str = "run",
    ) -> None:
        """One unit reached a terminal state.  ``status`` ``report`` /
        ``failed-verdict``-bearing payloads are replayable; infra
        statuses are recorded with ``event=unit:failed`` and re-executed
        on resume.  After a verdict-bearing append the ``sigkill`` fault
        point fires — the deterministic stand-in for a hard crash."""
        verdict = status == "report"
        self._append(
            {
                "event": "unit:done" if verdict else "unit:failed",
                "unit": unit_id,
                "program": program,
                "group": group,
                "status": status,
                "payload": payload if verdict else None,
                "error": error,
                "retries": retries,
                "seconds": seconds,
                "via": via,
            }
        )
        if verdict:
            maybe_sigkill(program)

    def finish(self, exit_code: int, *, interrupted: bool = False) -> None:
        self._append(
            {
                "event": "sweep:interrupted" if interrupted else "sweep:end",
                "exit_code": exit_code,
            }
        )
        self.close()


# -- the replay side -----------------------------------------------------------


@dataclass
class JournalImage:
    """What ``--resume`` reconstructs from the on-disk journal."""

    #: Last-seen fingerprint per program (``sweep:start`` + resumes).
    fingerprints: dict[str, str] = field(default_factory=dict)
    #: Unit decomposition mode of the journaled sweep.
    mode: str = "program"
    #: Last verdict-bearing record per unit id.
    done: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: True when a terminal ``sweep:end`` record exists (clean finish).
    completed: bool = False
    #: True when any sweep-level record was found at all.
    exists: bool = False

    def replayable(self, unit_id: str, program: str, fingerprint: str):
        """The journaled record for ``unit_id``, iff its program's
        fingerprint still matches (an edited program re-runs fresh)."""
        if self.fingerprints.get(program) != fingerprint:
            return None
        return self.done.get(unit_id)


def load_image(path: Path | str) -> JournalImage:
    """Fold the journal into the latest-wins :class:`JournalImage`."""
    image = JournalImage()
    for record in read_journal(path):
        event = record.get("event")
        if event in ("sweep:start", "sweep:resume"):
            image.exists = True
            image.completed = False
            image.mode = record.get("mode", image.mode)
            fingerprints = record.get("fingerprints")
            if isinstance(fingerprints, dict):
                image.fingerprints.update(fingerprints)
            if event == "sweep:start":
                image.done.clear()
        elif event == "unit:done":
            unit = record.get("unit")
            if isinstance(unit, str) and record.get("payload") is not None:
                image.done[unit] = record
        elif event == "unit:failed":
            unit = record.get("unit")
            if isinstance(unit, str):
                # A quarantine is not a verdict: forget any earlier
                # payload so the unit re-executes on resume.
                image.done.pop(unit, None)
        elif event == "sweep:end":
            image.completed = True
    return image


def iter_events(path: Path | str) -> Iterator[dict[str, Any]]:
    """Raw intact records in order — forensics/test helper."""
    yield from read_journal(path)

"""Content fingerprints keying the persistent obligation cache.

A cache entry may be replayed only while its verdict is provably the one
a fresh run would produce.  The fingerprint therefore covers everything
a verdict depends on:

* the **source text** of every module listed in the program's
  :class:`~repro.structures.registry.ProgramInfo` (editing a case study
  invalidates exactly that case study);
* the **verifier kwargs** (the same modules verified under a different
  interference budget must never share an entry), canonicalized with
  :func:`repro.semantics.interp.stable_digest` — *not* with
  :func:`~repro.semantics.interp.fingerprint`/``position_key``, whose
  components embed ``id()``s and differ between processes;
* a **framework digest** over the checker itself (``repro`` minus the
  case studies, the evaluation harness and this engine), so changing the
  semantics or a proof rule invalidates every entry;
* the cache **schema version**.

Sources are read from module *files* (``importlib.util.find_spec``), not
``inspect.getsource``, so fingerprinting neither imports the case study
nor trips over ``linecache`` staleness after an edit.
"""

from __future__ import annotations

import hashlib
import importlib.util
from functools import lru_cache
from pathlib import Path

from ..semantics.interp import stable_digest
from ..structures.registry import ProgramInfo

#: Bump to invalidate every existing cache entry (layout changes).
#: 2: ObligationResult gained ``witnesses``/``traceback`` fields.
#: 3: entries gained a per-entry ``checksum`` (self-healing cache).
#: 4: entries gained per-obligation dependency fingerprints
#:    (``obligations`` map, fcsl-deps incremental re-verification).
CACHE_SCHEMA_VERSION = 4

#: Top-level ``repro`` subpackages excluded from the framework digest:
#: case studies are fingerprinted per program, and the evaluation /
#: engine layers only orchestrate (they cannot change a verdict).
_NON_FRAMEWORK = ("structures", "eval", "engine")


def module_source(dotted: str) -> str:
    """The source text of one module, read from its file without
    importing it."""
    spec = importlib.util.find_spec(dotted)
    if spec is None or spec.origin is None or not Path(spec.origin).is_file():
        raise ModuleNotFoundError(f"cannot locate source for {dotted!r}")
    return Path(spec.origin).read_text(encoding="utf-8")


@lru_cache(maxsize=1)
def framework_digest() -> str:
    """Hex SHA-256 over every framework source file (sorted walk)."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] in _NON_FRAMEWORK:
            continue
        digest.update(str(rel).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def program_fingerprint(
    info: ProgramInfo, extra_kwargs: dict | None = None
) -> str:
    """The cache key for one registry program (hex SHA-256)."""
    kwargs = dict(info.verifier_kwargs)
    if extra_kwargs:
        kwargs.update(extra_kwargs)
    digest = hashlib.sha256()
    digest.update(f"schema:{CACHE_SCHEMA_VERSION}\n".encode())
    digest.update(f"framework:{framework_digest()}\n".encode())
    digest.update(f"kwargs:{stable_digest(tuple(sorted(kwargs.items())))}\n".encode())
    for dotted in info.modules:
        source = module_source(dotted)
        digest.update(f"module:{dotted}\n".encode())
        digest.update(source.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()

"""The sweep work queue: (program, obligation-group) units.

The supervisor's timeout/retry/backoff/quarantine machinery is generic
over "anything with a ``name``" — ROADMAP's verification-as-a-service
item asks that it supervise a *work queue of (program, obligation)
units* rather than whole programs.  This module provides that
decomposition:

* In the default ``program`` mode a unit is one whole case study —
  exactly the pre-existing behaviour, unit id == program name.
* In ``group`` mode (``repro verify --split-obligations``) each program
  fans out into one unit per obligation category (Libs/Conc/Acts/Stab/
  Main).  A unit re-runs the verifier under the process-global
  obligation filter (:func:`repro.core.verify.set_obligation_filter`),
  so only its group's obligations execute; the engine merges the
  partial reports back and the merged verdicts are gated for equality
  with the monolithic run.  The payoff is fault granularity: a
  pathological ``Main`` obligation times out and retries *alone*, its
  program's ``Libs`` lemmas keep their verdicts (and their retry
  budget).

Units are also the journal's replay granularity: each carries a stable
``unit_id`` (``program`` or ``program::Group``) under which its terminal
record is journaled and replayed on ``--resume``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.verify import CATEGORIES, VerificationReport
from ..structures.registry import ProgramInfo

#: Separator between program name and group in a unit id.  Registry
#: names never contain it (they are Table 1 row labels).
UNIT_SEP = "::"

#: Order infra statuses win a program's merged status (worst first).
_INFRA_PRIORITY = ("crashed", "timeout", "error", "interrupted")


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable/journalable/retryable slice of a sweep.

    Duck-type-compatible with the supervisor's task descriptors (it
    exposes ``name``) and picklable (``ProgramInfo`` already crosses the
    pool boundary for whole-program dispatch).
    """

    info: ProgramInfo
    #: Obligation-category group, or ``None`` for the whole program.
    group: str | None = None
    #: Incremental mode (fcsl-deps): the exact obligation *names* this
    #: unit re-executes — every other obligation of the program replays
    #: from its cached per-obligation fingerprint.  Mutually exclusive
    #: with ``group``.
    names: frozenset[str] | None = None
    #: Collect-while-verifying (fcsl-deps, cold incremental entries):
    #: the worker records the obligation plan as it executes and ships
    #: the per-obligation fingerprint map home in its payload, so the
    #: verifier's setup runs once instead of once per phase.  Only
    #: meaningful on whole-program units.
    collect_deps: bool = False

    @property
    def program(self) -> str:
        return self.info.name

    @property
    def name(self) -> str:
        """The unit id (supervisor key + journal key).

        Incremental units key on a digest of their sorted stale-name
        set: deterministic for a given edit, so ``--resume`` after a
        crash recomputes the same stale set and replays the same unit.
        """
        if self.names is not None:
            digest = hashlib.sha256(
                "\x1f".join(sorted(self.names)).encode("utf-8")
            ).hexdigest()[:8]
            return f"{self.info.name}{UNIT_SEP}inc-{digest}"
        if self.group is None:
            return self.info.name
        return f"{self.info.name}{UNIT_SEP}{self.group}"


def unit_mode(split: bool) -> str:
    return "group" if split else "program"


def decompose(
    programs: Sequence[ProgramInfo], *, split: bool = False
) -> list[WorkUnit]:
    """The work queue for ``programs``: one unit per program, or one per
    (program, obligation-category) when ``split``.

    Group units are emitted in ``CATEGORIES`` order so the merged
    report's obligations are deterministically ordered.
    """
    if not split:
        return [WorkUnit(info) for info in programs]
    return [
        WorkUnit(info, group)
        for info in programs
        for group in CATEGORIES
    ]


def units_for(info: ProgramInfo, *, split: bool = False) -> list[WorkUnit]:
    return decompose([info], split=split)


@dataclass
class UnitRecord:
    """One unit's terminal state, from live execution or journal replay."""

    unit: WorkUnit
    #: ``report`` (verdict payload exists) or an infra status.
    status: str
    payload: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    retries: int = 0
    seconds: float = 0.0
    #: True iff this record was replayed from the sweep journal.
    replayed: bool = False


@dataclass
class ProgramMerge:
    """A program's outcome folded back together from its units."""

    report: VerificationReport | None
    #: ``ok``/``failed`` (verdict) or the worst infra status.
    status: str
    retries: int = 0
    seconds: float = 0.0
    error: dict[str, Any] | None = None
    units: int = 0
    replayed_units: int = 0


def merge_program(
    info: ProgramInfo, records: Iterable[UnitRecord]
) -> ProgramMerge:
    """Fold a program's unit records into one outcome.

    Every unit must carry a verdict payload for the program to have a
    report; any infra unit quarantines the whole program (report
    ``None`` — a partial verdict is not a verdict), keeping the
    engine's pre-unit contract.  Retries and wall seconds are summed
    across units.
    """
    records = list(records)
    retries = sum(r.retries for r in records)
    seconds = sum(r.seconds for r in records)
    replayed = sum(1 for r in records if r.replayed)
    infra = [r for r in records if r.status != "report"]
    if infra:
        worst = min(
            infra,
            key=lambda r: (
                _INFRA_PRIORITY.index(r.status)
                if r.status in _INFRA_PRIORITY
                else len(_INFRA_PRIORITY)
            ),
        )
        return ProgramMerge(
            report=None,
            status=worst.status,
            retries=retries,
            seconds=seconds,
            error=worst.error,
            units=len(records),
            replayed_units=replayed,
        )
    merged = VerificationReport(info.name)
    for record in records:
        partial = VerificationReport.from_dict(record.payload["report"])
        merged.obligations.extend(partial.obligations)
    return ProgramMerge(
        report=merged,
        status="ok" if merged.ok else "failed",
        retries=retries,
        seconds=seconds,
        units=len(records),
        replayed_units=replayed,
    )

"""Resource watchdog: soft ``--max-rss`` / ``--max-disk`` budgets with a
graceful degradation ladder.

Without budgets, a sweep that outgrows the machine ends at the kernel
OOM-killer's discretion (SIGKILL, no checkpoint, exit code from the
shell) or at ``ENOSPC`` somewhere inside a cache write.  The watchdog
replaces that cliff with a ladder — each rung trades throughput or
completeness for staying alive, and every rung is journaled/warned, so
it never happens silently:

=====  ==========================  ==========================================
rung   trigger (fraction of        action (wired by the engine)
       the tightest budget)
=====  ==========================  ==========================================
1      usage ≥ ``SHED_AT`` (70%)   shed parallelism: the supervisor's
                                   in-flight window halves
2      usage ≥ ``SHRINK_AT``       shrink explorer caps
       (85%)                       (``set_explore_cap_scale``), stop new
                                   cache stores, mark the sweep degraded
3      usage ≥ ``STOP_AT``         checkpoint-and-exit 3: pending units are
       (100%)                      marked interrupted, the journal keeps
                                   every completed verdict, ``--resume``
                                   picks the sweep back up
=====  ==========================  ==========================================

The ladder is a ratchet — levels never de-escalate within a sweep;
memory freed after a breach does not un-shrink caps, because verdicts
computed under shrunk caps are already in flight.

Measurement is dependency-free: RSS is read from ``/proc/<pid>/statm``
for the sweep process and every live child (pool workers), falling back
to ``resource.getrusage`` peaks off Linux; disk usage walks the cache
directory (entries + journal + corrupt quarantine).  Sampling runs on a
daemon thread, but every decision is exposed through pull-style
callables (``throttle``/``stop_reason``) so the supervisor stays
single-threaded and tests can drive :meth:`ResourceWatchdog.sample_once`
synchronously.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Callable

from ..obs.tracer import instant as _trace_instant

#: Ladder thresholds, as fractions of the budget.
SHED_AT = 0.70
SHRINK_AT = 0.85
STOP_AT = 1.00

#: Rung names for warnings and trace instants.
LEVEL_NAMES = {0: "nominal", 1: "shed", 2: "shrink", 3: "checkpoint"}


def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):
        return 4096


def process_rss_bytes(pid: int | None = None) -> int | None:
    """Resident set of one process via ``/proc``; ``None`` off Linux."""
    try:
        fields = Path(f"/proc/{pid or os.getpid()}/statm").read_text().split()
        return int(fields[1]) * _page_size()
    except (OSError, ValueError, IndexError):
        return None


def _child_pids(parent: int) -> list[int]:
    """Live direct children of ``parent`` via ``/proc`` (Linux only)."""
    pids = []
    try:
        entries = os.listdir("/proc")
    except OSError:
        return pids
    for entry in entries:
        if not entry.isdigit():
            continue
        try:
            stat = Path(f"/proc/{entry}/stat").read_text()
            # Field 4 (after the parenthesised comm, which may contain
            # spaces) is ppid.
            ppid = int(stat.rpartition(")")[2].split()[1])
        except (OSError, ValueError, IndexError):
            continue
        if ppid == parent:
            pids.append(int(entry))
    return pids


def tree_rss_bytes() -> int:
    """RSS of this process plus all direct children (pool workers).

    Off Linux degrades to the ``getrusage`` self+children peaks — an
    overestimate that errs on the safe side of a soft budget.
    """
    own = process_rss_bytes()
    if own is None:  # pragma: no cover - non-Linux fallback
        import resource

        scale = 1024  # ru_maxrss is KiB on Linux, bytes on macOS
        return (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        ) * scale
    total = own
    for pid in _child_pids(os.getpid()):
        child = process_rss_bytes(pid)
        if child is not None:
            total += child
    return total


def dir_bytes(root: Path | str) -> int:
    """Recursive size of ``root`` (cache entries + journal + quarantine)."""
    total = 0
    root = Path(root)
    if not root.exists():
        return 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            try:
                total += os.stat(os.path.join(dirpath, name)).st_size
            except OSError:
                continue
    return total


class ResourceWatchdog:
    """Samples resource usage and exposes the degradation ladder.

    ``on_level(level, reason)`` fires once per rung reached (ratchet):
    the engine hooks cap-shrinking, cache disabling and warnings there.
    ``throttle(jobs)`` and ``stop_reason()`` are the pull-side the
    supervisor consumes.
    """

    def __init__(
        self,
        *,
        max_rss_bytes: int | None = None,
        max_disk_bytes: int | None = None,
        disk_root: Path | str | None = None,
        interval: float = 0.25,
        on_level: Callable[[int, str], None] | None = None,
    ):
        self.max_rss_bytes = max_rss_bytes
        self.max_disk_bytes = max_disk_bytes
        self.disk_root = Path(disk_root) if disk_root is not None else None
        self.interval = interval
        self.on_level = on_level
        self.level = 0
        self.reason = ""
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling --------------------------------------------------------------

    def _usage_fraction(self) -> tuple[float, str]:
        """The worst budget fraction and a human reason for it."""
        worst, why = 0.0, ""
        if self.max_rss_bytes:
            rss = tree_rss_bytes()
            frac = rss / self.max_rss_bytes
            if frac > worst:
                worst, why = frac, (
                    f"rss {rss / 1e6:.0f}MB of {self.max_rss_bytes / 1e6:.0f}MB budget"
                )
        if self.max_disk_bytes and self.disk_root is not None:
            used = dir_bytes(self.disk_root)
            frac = used / self.max_disk_bytes
            if frac > worst:
                worst, why = frac, (
                    f"disk {used / 1e6:.1f}MB of "
                    f"{self.max_disk_bytes / 1e6:.1f}MB budget under {self.disk_root}"
                )
        return worst, why

    def sample_once(self) -> int:
        """Take one sample, escalate the ratchet if warranted; the new
        level.  Public so tests (and the serial path) can pump the
        watchdog without the thread."""
        frac, why = self._usage_fraction()
        if frac >= STOP_AT:
            target = 3
        elif frac >= SHRINK_AT:
            target = 2
        elif frac >= SHED_AT:
            target = 1
        else:
            target = 0
        fired: list[tuple[int, str]] = []
        with self._lock:
            while self.level < target:
                self.level += 1
                self.reason = why
                fired.append((self.level, why))
        for level, reason in fired:
            _trace_instant(
                "watchdog:level", "watchdog",
                level=level, rung=LEVEL_NAMES[level], reason=reason,
            )
            if self.on_level is not None:
                try:
                    self.on_level(level, reason)
                except Exception:  # noqa: BLE001 - the ladder must not die
                    pass
        return self.level

    # -- the supervisor-facing pull side ---------------------------------------

    def throttle(self, jobs: int) -> Callable[[], int]:
        """A callable the supervisor polls for its in-flight window:
        full width at rung 0, half (min 1) from rung 1 up."""

        def _window() -> int:
            return jobs if self.level < 1 else max(1, jobs // 2)

        return _window

    def stop_reason(self) -> str | None:
        """Non-``None`` once rung 3 is reached: checkpoint and exit 3."""
        if self.level >= 3:
            return f"resource budget exhausted ({self.reason})"
        return None

    @property
    def degraded(self) -> bool:
        """Rung 2+ reached: verdicts may have run under shrunk caps."""
        return self.level >= 2

    # -- thread lifecycle ------------------------------------------------------

    def start(self) -> "ResourceWatchdog":
        if self.max_rss_bytes or self.max_disk_bytes:
            self._thread = threading.Thread(
                target=self._run, name="repro-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()
            if self.level >= 3:
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

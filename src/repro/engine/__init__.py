"""repro.engine — the parallel, cached, supervised verification engine.

``python -m repro verify`` and the evaluation's Table 1 sweep both run
through :func:`run_sweep`: registry case studies fan out across a
process pool (one worker per case study, fcsl-lint pre-pass installed
per worker) under a fault-tolerant supervisor, and verdicts are
replayed from a persistent on-disk obligation cache keyed by content
fingerprint.  See :mod:`repro.engine.engine` for the orchestration,
:mod:`repro.engine.supervisor` for timeouts/retries/worker isolation,
:mod:`repro.engine.faults` for the deterministic fault-injection
(chaos) layer, :mod:`repro.engine.cache` for the self-healing cache
layout and :mod:`repro.engine.fingerprint` for the invalidation rules.

Durability (``--resume`` after a hard crash) is provided by
:mod:`repro.engine.journal` (the fsync'd sweep journal),
:mod:`repro.engine.queue` (the (program, obligation-group) work-unit
decomposition) and :mod:`repro.engine.watchdog` (soft resource budgets
with graceful degradation).
"""

from .cache import (
    CORRUPT_DIRNAME,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ObligationCache,
    default_cache_dir,
    report_checksum,
)
from .engine import (
    EXIT_INFRA,
    ProgramOutcome,
    SweepResult,
    default_jobs,
    resolve_programs,
    run_sweep,
    sweep,
)
from .faults import (
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
)
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    framework_digest,
    module_source,
    program_fingerprint,
)
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalImage,
    SweepJournal,
    iter_events,
    journal_path,
    load_image,
    read_journal,
)
from .queue import (
    UNIT_SEP,
    ProgramMerge,
    UnitRecord,
    WorkUnit,
    decompose,
    merge_program,
    unit_mode,
    units_for,
)
from .supervisor import (
    INFRA_STATUSES,
    SupervisionOutcome,
    Supervisor,
    SupervisorConfig,
    TaskResult,
    supervise,
)
from .watchdog import (
    LEVEL_NAMES,
    SHED_AT,
    SHRINK_AT,
    STOP_AT,
    ResourceWatchdog,
    dir_bytes,
    tree_rss_bytes,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CORRUPT_DIRNAME",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_FAULTS",
    "EXIT_INFRA",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "INFRA_STATUSES",
    "InjectedFault",
    "JOURNAL_SCHEMA_VERSION",
    "JournalImage",
    "LEVEL_NAMES",
    "ObligationCache",
    "ProgramMerge",
    "ProgramOutcome",
    "ResourceWatchdog",
    "SHED_AT",
    "SHRINK_AT",
    "STOP_AT",
    "SupervisionOutcome",
    "Supervisor",
    "SupervisorConfig",
    "SweepJournal",
    "SweepResult",
    "TaskResult",
    "UNIT_SEP",
    "UnitRecord",
    "WorkUnit",
    "decompose",
    "default_cache_dir",
    "default_jobs",
    "dir_bytes",
    "framework_digest",
    "iter_events",
    "journal_path",
    "load_image",
    "merge_program",
    "module_source",
    "program_fingerprint",
    "read_journal",
    "report_checksum",
    "resolve_programs",
    "run_sweep",
    "supervise",
    "sweep",
    "tree_rss_bytes",
    "unit_mode",
    "units_for",
]

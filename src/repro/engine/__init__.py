"""repro.engine — the parallel, cached verification engine.

``python -m repro verify`` and the evaluation's Table 1 sweep both run
through :func:`run_sweep`: registry case studies fan out across a
process pool (one worker per case study, fcsl-lint pre-pass installed
per worker) and verdicts are replayed from a persistent on-disk
obligation cache keyed by content fingerprint.  See
:mod:`repro.engine.engine` for the orchestration,
:mod:`repro.engine.cache` for the cache layout and
:mod:`repro.engine.fingerprint` for the invalidation rules.
"""

from .cache import DEFAULT_CACHE_DIR, ENV_CACHE_DIR, ObligationCache, default_cache_dir
from .engine import (
    ProgramOutcome,
    SweepResult,
    default_jobs,
    resolve_programs,
    run_sweep,
    sweep,
)
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    framework_digest,
    module_source,
    program_fingerprint,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ObligationCache",
    "ProgramOutcome",
    "SweepResult",
    "default_cache_dir",
    "default_jobs",
    "framework_digest",
    "module_source",
    "program_fingerprint",
    "resolve_programs",
    "run_sweep",
    "sweep",
]

"""repro.engine — the parallel, cached, supervised verification engine.

``python -m repro verify`` and the evaluation's Table 1 sweep both run
through :func:`run_sweep`: registry case studies fan out across a
process pool (one worker per case study, fcsl-lint pre-pass installed
per worker) under a fault-tolerant supervisor, and verdicts are
replayed from a persistent on-disk obligation cache keyed by content
fingerprint.  See :mod:`repro.engine.engine` for the orchestration,
:mod:`repro.engine.supervisor` for timeouts/retries/worker isolation,
:mod:`repro.engine.faults` for the deterministic fault-injection
(chaos) layer, :mod:`repro.engine.cache` for the cache layout and
:mod:`repro.engine.fingerprint` for the invalidation rules.
"""

from .cache import DEFAULT_CACHE_DIR, ENV_CACHE_DIR, ObligationCache, default_cache_dir
from .engine import (
    EXIT_INFRA,
    ProgramOutcome,
    SweepResult,
    default_jobs,
    resolve_programs,
    run_sweep,
    sweep,
)
from .faults import (
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
)
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    framework_digest,
    module_source,
    program_fingerprint,
)
from .supervisor import (
    INFRA_STATUSES,
    SupervisionOutcome,
    Supervisor,
    SupervisorConfig,
    TaskResult,
    supervise,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_FAULTS",
    "EXIT_INFRA",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "INFRA_STATUSES",
    "InjectedFault",
    "ObligationCache",
    "ProgramOutcome",
    "SupervisionOutcome",
    "Supervisor",
    "SupervisorConfig",
    "SweepResult",
    "TaskResult",
    "default_cache_dir",
    "default_jobs",
    "framework_digest",
    "module_source",
    "program_fingerprint",
    "resolve_programs",
    "run_sweep",
    "supervise",
    "sweep",
]
